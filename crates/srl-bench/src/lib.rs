//! # srl-bench — the experiment harness
//!
//! One experiment per constructive claim of the paper (see `DESIGN.md` for
//! the index E1–E9). The Criterion benches under `benches/` measure wall
//! clock; the functions here produce the *semantic* measurements (agreement
//! with the native baselines, growth of iteration counts, accumulator sizes)
//! that the `report` binary prints and that `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]


use srl_core::eval::run_program;
use srl_core::limits::{EvalLimits, EvalStats};
use srl_core::program::Env;
use srl_core::value::Value;

/// One measured row of an experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment id (e.g. "E1").
    pub experiment: &'static str,
    /// Workload description.
    pub workload: String,
    /// The size parameter swept.
    pub n: usize,
    /// Did the SRL construction agree with the native baseline?
    pub agrees_with_baseline: bool,
    /// Reduce iterations performed by the SRL evaluation.
    pub reduce_iterations: u64,
    /// Largest accumulator weight observed (the logspace signature).
    pub max_accumulator_weight: usize,
    /// Total value leaves allocated (the blow-up signature).
    pub allocated_leaves: usize,
    /// Extra, experiment-specific note.
    pub note: String,
}

impl Row {
    fn new(experiment: &'static str, workload: impl Into<String>, n: usize) -> Self {
        Row {
            experiment,
            workload: workload.into(),
            n,
            agrees_with_baseline: true,
            reduce_iterations: 0,
            max_accumulator_weight: 0,
            allocated_leaves: 0,
            note: String::new(),
        }
    }

    fn with_stats(mut self, stats: &EvalStats) -> Self {
        self.reduce_iterations = stats.reduce_iterations;
        self.max_accumulator_weight = stats.max_accumulator_weight;
        self.allocated_leaves = stats.max_value_weight;
        self
    }
}

/// Renders rows as a pretty-printed JSON array (hand-rolled: the build runs
/// offline, without serde; the schema is the `Row` struct field-for-field).
pub fn to_json(rows: &[Row]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\n    \"experiment\": \"{}\",\n    \"workload\": \"{}\",\n    \"n\": {},\n    \"agrees_with_baseline\": {},\n    \"reduce_iterations\": {},\n    \"max_accumulator_weight\": {},\n    \"allocated_leaves\": {},\n    \"note\": \"{}\"\n  }}",
            escape(r.experiment),
            escape(&r.workload),
            r.n,
            r.agrees_with_baseline,
            r.reduce_iterations,
            r.max_accumulator_weight,
            r.allocated_leaves,
            escape(&r.note)
        ));
    }
    out.push_str("\n]");
    out
}

/// Renders rows as a markdown table.
pub fn to_markdown(rows: &[Row]) -> String {
    let mut out = String::from(
        "| exp | workload | n | agrees | reduce iters | max acc weight | allocated leaves | note |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.experiment,
            r.workload,
            r.n,
            if r.agrees_with_baseline { "yes" } else { "NO" },
            r.reduce_iterations,
            r.max_accumulator_weight,
            r.allocated_leaves,
            r.note
        ));
    }
    out
}

/// E1 — Lemma 3.6 / Theorem 3.10: APATH in SRL vs. the native alternating
/// reachability solver and the FO+LFP baseline.
pub fn experiment_e1(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    let program = apath_program();
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = AlternatingGraph::random(n, 0.25, 7 + n as u64);
        let native = graph.apath_all();
        let lfp_structure = fo_logic::Structure::from_alternating_graph(
            graph.n,
            &graph.edges,
            &graph.universal,
        );
        let lfp_agrees = fo_logic::formula::eval_sentence(
            &lfp_structure,
            &fo_logic::formula::library::agap_sentence(),
        ) == graph.agap();
        let (value, stats) = run_program(
            &program,
            names::APATH,
            &[graph.nodes_value(), graph.edges_value(), graph.ands_value()],
            EvalLimits::benchmark(),
        )
        .expect("APATH evaluates");
        let srl = AlternatingGraph::apath_from_value(&value, graph.n).expect("relation shape");
        let mut row = Row::new("E1", "random alternating graph (p=0.25)", n).with_stats(&stats);
        row.agrees_with_baseline = srl == native && lfp_agrees;
        row.note = format!("AGAP = {}", graph.agap());
        rows.push(row);
    }
    rows
}

/// E2 — Example 3.12: powerset blow-up at set-height 2.
pub fn experiment_e2(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::blowup::{names, powerset_program};

    let program = powerset_program();
    let mut rows = Vec::new();
    for &n in sizes {
        let input = Value::set((0..n as u64).map(Value::atom));
        let result = run_program(&program, names::POWERSET, &[input], EvalLimits::default());
        let mut row = Row::new("E2", "powerset of {0..n}", n);
        match result {
            Ok((value, stats)) => {
                row = row.with_stats(&stats);
                row.agrees_with_baseline = value.len() == Some(1 << n);
                row.note = format!("|P(S)| = {}", value.len().unwrap_or(0));
            }
            Err(e) => {
                row.agrees_with_baseline = true;
                row.note = format!("resource wall: {e}");
            }
        }
        rows.push(row);
    }
    rows
}

/// E3 — Proposition 4.5 / Lemma 4.6: BASRL arithmetic vs. native arithmetic,
/// with the accumulator-size evidence for Theorem 4.13.
pub fn experiment_e3(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let program = arithmetic_program();
    let mut rows = Vec::new();
    for &n in sizes {
        let d = domain(n as u64);
        let a = (n as u64 / 3).max(1);
        let b = (n as u64 / 4).max(1);
        let mut agrees = true;
        let mut total_stats = EvalStats::default();
        for (name, args, expected) in [
            (names::ADD, vec![a, b], (a + b).min(n as u64 - 1)),
            (names::MULT, vec![3, b], (3 * b).min(n as u64 - 1)),
            (names::BIT, vec![1, a], u64::MAX), // checked separately below
        ] {
            let mut call_args = vec![d.clone()];
            call_args.extend(args.iter().map(|&x| Value::atom(x)));
            let (value, stats) =
                run_program(&program, name, &call_args, EvalLimits::benchmark()).expect("arith");
            total_stats.absorb(&stats);
            if name == names::BIT {
                agrees &= value == Value::bool((a >> 1) & 1 == 1);
            } else {
                agrees &= value == Value::atom(expected);
            }
        }
        let mut row = Row::new("E3", "BASRL add/mult/bit over |D| = n", n).with_stats(&total_stats);
        row.agrees_with_baseline = agrees;
        rows.push(row);
    }
    rows
}

/// E4 — Lemma 4.10 / Theorem 4.13: iterated permutation product in BASRL.
pub fn experiment_e4(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    let program = perm_program();
    let mut rows = Vec::new();
    for &n in sizes {
        let instance = IteratedProductInstance::random(n, n, 11 + n as u64);
        let product = instance.product();
        let mut agrees = true;
        let mut total_stats = EvalStats::default();
        for point in 0..n.min(4) {
            let (value, stats) = run_program(
                &program,
                names::IP,
                &[
                    padded_domain(&instance),
                    instance.to_srl_value(),
                    Value::atom(point as u64),
                ],
                EvalLimits::benchmark(),
            )
            .expect("IP evaluates");
            total_stats.absorb(&stats);
            let image = value.as_tuple().unwrap()[1].as_atom().unwrap().index;
            agrees &= image == product.apply(point) as u64;
        }
        let mut row = Row::new("E4", "IMₛₙ: n permutations of degree n", n).with_stats(&total_stats);
        row.agrees_with_baseline = agrees;
        rows.push(row);
    }
    rows
}

/// E5 — Corollaries 4.2 / 4.4: TC and DTC in SRL vs. native closures and the
/// FO+TC / FO+DTC formulas.
pub fn experiment_e5(sizes: &[usize]) -> Vec<Row> {
    use srl_core::eval::eval_expr_with_stats;
    use srl_stdlib::tc;
    use workloads::digraph::Digraph;

    let mut rows = Vec::new();
    for &n in sizes {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let (tc_value, tc_stats) = eval_expr_with_stats(
            &tc::transitive_closure(srl_core::dsl::var("D"), srl_core::dsl::var("E")),
            &env,
            EvalLimits::benchmark(),
        )
        .expect("TC evaluates");
        let (dtc_value, dtc_stats) = eval_expr_with_stats(
            &tc::deterministic_transitive_closure(
                srl_core::dsl::var("D"),
                srl_core::dsl::var("E"),
            ),
            &env,
            EvalLimits::benchmark(),
        )
        .expect("DTC evaluates");
        let tc_ok = Digraph::closure_from_value(&tc_value, n) == Some(g.transitive_closure());
        let dtc_ok = Digraph::closure_from_value(&dtc_value, n)
            == Some(g.deterministic_transitive_closure());
        let mut stats = tc_stats;
        stats.absorb(&dtc_stats);
        let mut row = Row::new("E5", "random digraph, ~2 edges per vertex", n).with_stats(&stats);
        row.agrees_with_baseline = tc_ok && dtc_ok;
        rows.push(row);
    }
    rows
}

/// E6 — Theorem 5.2 / Corollary 5.5: primitive recursion compiled to SRL+new,
/// and the LRL blow-up.
pub fn experiment_e6(sizes: &[usize]) -> Vec<Row> {
    use machines::primrec::library;
    use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
    use srl_stdlib::primrec_compile::{compile, eval_compiled};

    let mut rows = Vec::new();
    let add = compile(&library::add()).expect("add compiles");
    let mul = compile(&library::mul()).expect("mul compiles");
    for &n in sizes {
        let a = n as u64;
        let b = (n as u64 / 2).max(1);
        let add_ok = eval_compiled(&add, &[a, b], EvalLimits::benchmark()) == Ok(a + b);
        let mul_ok = eval_compiled(&mul, &[a.min(8), b.min(8)], EvalLimits::benchmark())
            == Ok(a.min(8) * b.min(8));
        let doubling = lrl_doubling_program();
        let input = Value::list((0..n as u64).map(Value::atom));
        let result = run_program(
            &doubling,
            blow_names::DOUBLING,
            &[input],
            EvalLimits::default(),
        );
        let mut row = Row::new("E6", "PR add/mul via SRL+new; LRL 2ⁿ blow-up", n);
        match result {
            Ok((v, stats)) => {
                row = row.with_stats(&stats);
                row.agrees_with_baseline =
                    add_ok && mul_ok && v.as_list().map(|l| l.len()) == Some(1 << n);
                row.note = format!("LRL list length = {}", v.len().unwrap_or(0));
            }
            Err(e) => {
                row.agrees_with_baseline = add_ok && mul_ok;
                row.note = format!("LRL resource wall: {e}");
            }
        }
        rows.push(row);
    }
    rows
}

/// E7 — Proposition 6.2 / Corollary 6.3: the compiled Turing-machine
/// simulation vs. the native runner.
pub fn experiment_e7(sizes: &[usize]) -> Vec<Row> {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    let machine = even_parity();
    let program = compile(&machine);
    let mut rows = Vec::new();
    for &n in sizes {
        let input: Vec<u8> = (0..n).map(|i| if i % 3 == 0 { SYM_A } else { SYM_B }).collect();
        let native = machine.accepts(&input, 10_000);
        let (value, stats) = run_program(
            &program,
            names::ACCEPTS,
            &[position_domain(n), encode_input(&input)],
            EvalLimits::benchmark(),
        )
        .expect("simulation evaluates");
        let mut row = Row::new("E7", "even-parity DTM, input length n", n).with_stats(&stats);
        row.agrees_with_baseline = value == Value::bool(native);
        row.note = format!("native accept = {native}");
        rows.push(row);
    }
    rows
}

/// E8 — Section 7: order-dependence of `Purple(First(S))`, order-independence
/// of count/EVEN, and the CFI pairs' WL-indistinguishability.
pub fn experiment_e8(sizes: &[usize]) -> Vec<Row> {
    use srl_analysis::{analyze_order_dependence, OrderVerdict};
    use srl_core::dsl::var;
    use srl_stdlib::hom;
    use workloads::cfi::{cfi_pair, BaseGraph};
    use workloads::wl::wl1_equivalent;

    let mut rows = Vec::new();
    for &n in sizes {
        let program = srl_core::program::Program::srl();
        let s = Value::set((0..n as u64).map(|i| Value::atom(i * 2)));
        let purple = Value::set([Value::atom((n as u64 - 1) * 2)]);
        let env = Env::new().bind("S", s).bind("P", purple);
        let dependent = analyze_order_dependence(
            &program,
            &hom::purple_first(var("S"), var("P")),
            &env,
            2 * n,
            16,
        );
        let independent = analyze_order_dependence(
            &program,
            &hom::even(var("S")),
            &env,
            2 * n,
            8,
        );
        let (g, h) = cfi_pair(&BaseGraph::cycle(n.max(3)));
        let wl_blind = wl1_equivalent(&g.graph, &h.graph);
        let components_differ = g.connected_components() != h.connected_components();
        let mut row = Row::new("E8", "Purple(First) vs EVEN; CFI over Cₙ", n);
        row.agrees_with_baseline = matches!(dependent, OrderVerdict::ProvedDependent { .. })
            && independent == OrderVerdict::ProvedIndependent
            && wl_blind
            && components_differ;
        row.note = format!(
            "CFI: 1-WL equivalent = {wl_blind}, component counts differ = {components_differ}"
        );
        rows.push(row);
    }
    rows
}

/// E9 — Fact 2.4 / Proposition 3.3: relational operators in SRL on the
/// company workload, and closure under a first-order interpretation.
pub fn experiment_e9(sizes: &[usize]) -> Vec<Row> {
    use fo_logic::interpretation::library::graph_square;
    use srl_core::dsl::{atom, sel, var};
    use srl_core::eval::eval_expr_with_stats;
    use srl_stdlib::derived::{join, project, select};
    use workloads::tables::CompanyDatabase;

    let mut rows = Vec::new();
    for &n in sizes {
        let db = CompanyDatabase::generate(n, (n / 4).max(1), 4, 31 + n as u64);
        let env = Env::new()
            .bind("EMP", db.employees_value())
            .bind("DEPT", db.departments_value());
        // Join employees with their department's manager and project the ids.
        let joined = join(
            var("EMP"),
            var("DEPT"),
            srl_core::dsl::lam("e", "d", srl_core::dsl::eq(sel(var("e"), 2), sel(var("d"), 1))),
            srl_core::dsl::lam("e", "d", srl_core::dsl::tuple([sel(var("e"), 1), sel(var("d"), 2)])),
        );
        let (value, stats) =
            eval_expr_with_stats(&joined, &env, EvalLimits::benchmark()).expect("join evaluates");
        let native: std::collections::BTreeSet<(u64, u64)> =
            db.employee_manager_join().into_iter().collect();
        let srl_pairs: std::collections::BTreeSet<(u64, u64)> = value
            .as_set()
            .unwrap()
            .iter()
            .map(|t| {
                let tt = t.as_tuple().unwrap();
                (tt[0].as_atom().unwrap().index, tt[1].as_atom().unwrap().index)
            })
            .collect();
        // A select/project query for good measure.
        let dept0 = db.departments[0].id;
        let in_dept0 = project(
            select(
                var("EMP"),
                srl_core::dsl::lam("e", "x", srl_core::dsl::eq(sel(var("e"), 2), atom(dept0))),
                srl_core::dsl::empty_set(),
            ),
            1,
        );
        let (sel_value, _) =
            eval_expr_with_stats(&in_dept0, &env, EvalLimits::benchmark()).expect("select");
        let native_dept: Vec<u64> = db.employees_in_department(dept0);
        let srl_dept: Vec<u64> = sel_value
            .as_set()
            .unwrap()
            .iter()
            .map(|a| a.as_atom().unwrap().index)
            .collect();
        // Closure under FO interpretations: squaring a path keeps reachability
        // answers consistent (checked via the interpretation library).
        let path = fo_logic::Structure::from_digraph(n.max(2), &(1..n.max(2)).map(|i| (i - 1, i)).collect::<Vec<_>>());
        let squared = graph_square().apply(&path);
        let interp_ok = squared.relation_size("E") == n.max(2).saturating_sub(2);

        let mut row = Row::new("E9", "company join/select/project; FO interpretation", n)
            .with_stats(&stats);
        row.agrees_with_baseline = srl_pairs == native && srl_dept == native_dept && interp_ok;
        rows.push(row);
    }
    rows
}
