//! `srl serve` — the serving front end as a subcommand.
//!
//! Binds the configured address, prints one `listening on HOST:PORT` line
//! to stdout (scripts and the smoke test read the real port from it — bind
//! `:0` to let the OS pick), and serves until killed. All serving logic
//! lives in `srl-serve`; this module only parses flags and the optional
//! tenant-configuration file.

use std::process::ExitCode;

use srl_serve::{ServeConfig, Server};

/// Parses `srl serve` flags into a [`ServeConfig`].
fn parse_serve_options(rest: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--max-inflight" => {
                let word = it.next().ok_or("--max-inflight needs a query count")?;
                let n: usize = word
                    .parse()
                    .map_err(|_| format!("--max-inflight expects a number, got `{word}`"))?;
                if n == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
                config.max_inflight = n;
            }
            "--cache-cap" => {
                let word = it.next().ok_or("--cache-cap needs an entry count")?;
                let n: usize = word
                    .parse()
                    .map_err(|_| format!("--cache-cap expects a number, got `{word}`"))?;
                if n == 0 {
                    return Err("--cache-cap must be at least 1".to_string());
                }
                config.cache_cap = n;
            }
            "--session-threads" => {
                let word = it.next().ok_or("--session-threads needs a thread count")?;
                let n: usize = word
                    .parse()
                    .map_err(|_| format!("--session-threads expects a number, got `{word}`"))?;
                if n == 0 {
                    return Err("--session-threads must be at least 1".to_string());
                }
                config.session_threads = n;
            }
            "--tenant-config" => {
                let path = it.next().ok_or("--tenant-config needs a file path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                config = config
                    .with_tenant_document(&text)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            other => return Err(format!("unexpected argument `{other}` to `srl serve`")),
        }
    }
    Ok(config)
}

/// The `srl serve` entry point.
pub fn serve(rest: &[String]) -> ExitCode {
    let config = match parse_serve_options(rest) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    // The port line must be visible before the first client connects.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let config = parse_serve_options(&[]).unwrap();
        assert_eq!(config.addr, "127.0.0.1:7878");
        assert_eq!(config.max_inflight, 64);
        assert_eq!(config.cache_cap, 128);
        let config = parse_serve_options(&words(&[
            "--addr",
            "127.0.0.1:0",
            "--max-inflight",
            "2",
            "--cache-cap",
            "16",
            "--session-threads",
            "3",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.max_inflight, 2);
        assert_eq!(config.cache_cap, 16);
        assert_eq!(config.session_threads, 3);
    }

    #[test]
    fn bad_flags_are_rejected() {
        for bad in [
            vec!["--max-inflight", "0"],
            vec!["--max-inflight", "many"],
            vec!["--cache-cap", "0"],
            vec!["--session-threads", "0"],
            vec!["--tenant-config"],
            vec!["--tenant-config", "/no/such/file.json"],
            vec!["--wat"],
        ] {
            assert!(parse_serve_options(&words(&bad)).is_err(), "{bad:?}");
        }
    }
}
