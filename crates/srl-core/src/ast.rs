//! Abstract syntax of the set-reduce language.
//!
//! The constructors follow the grammar of Section 2 of the paper, rules 1–10,
//! plus the extensions the paper studies:
//!
//! * `choose` / `rest` — the primitives the formal specification ([35] in the
//!   paper) uses to give `set-reduce` its semantics;
//! * `new` — invented values (Section 5);
//! * lists with `cons` / `list-reduce` — the LRL variant (Sections 3 and 5);
//! * natural numbers with `succ`, `+`, `*` — the arithmetic extension
//!   discussed after Theorem 3.10;
//! * `≤` — the order predicate on the domain that the paper makes available
//!   ("we have made available to us an ordering relation (denoted by ≤)");
//! * `let` and named function calls — convenience forms for composition,
//!   which Definition 2.1 closes the function class under.
//!
//! Expressions are plain data; programs are built either with these
//! constructors directly, with the combinators in [`crate::dsl`], or by
//! parsing the surface syntax in the `srl-syntax` crate.
//!
//! This name-based AST is the *construction* surface only: before evaluation
//! it is lowered once by [`crate::lower`] into a slot-indexed IR with
//! interned symbols ([`crate::intern`]), so no string is compared and no
//! body is cloned on the evaluator's hot path. Whole-value constants embed
//! [`Value`]s, whose collection payloads are `Arc`-shared — cloning an
//! `Expr::Const` is O(1).

use crate::bignat::BigNat;
use crate::value::Value;

/// A two-parameter lambda abstraction, written `lambda(x, y) body` in the
/// paper (rule 9). Both the `app` and `acc` arguments of `set-reduce` have
/// this shape; only the two parameters may occur free in the body (everything
/// else must be routed through the `extra` argument — the paper's mechanism
/// for keeping "all reference local").
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lambda {
    /// First parameter name (the element / the value of `app`).
    pub x: String,
    /// Second parameter name (the extra argument / the recursive result).
    pub y: String,
    /// Body expression.
    pub body: Box<Expr>,
}

impl Lambda {
    /// Builds a lambda.
    pub fn new(x: impl Into<String>, y: impl Into<String>, body: Expr) -> Self {
        Lambda {
            x: x.into(),
            y: y.into(),
            body: Box::new(body),
        }
    }

    /// The identity on the first parameter, `λ(x, y). x` — used throughout
    /// the paper as the `app` function when no per-element transformation is
    /// needed.
    pub fn identity() -> Self {
        Lambda::new("x", "y", Expr::Var("x".into()))
    }

    /// `λ(x, y). y`: projects the second parameter.
    pub fn second() -> Self {
        Lambda::new("x", "y", Expr::Var("y".into()))
    }
}

/// An expression of the set-reduce language.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Rule 1: `true` / `false`.
    Bool(bool),
    /// Rule 3: a constant of an equality type (atoms, naturals, tuples
    /// thereof; also whole input sets injected as constants by harnesses).
    Const(Value),
    /// A variable (a lambda parameter, a `let` binding, a definition
    /// parameter, or a free input name bound by the evaluation environment).
    Var(String),
    /// Rule 2: `if b then e1 else e2`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Rule 4: tuple construction `[e1, …, en]`.
    Tuple(Vec<Expr>),
    /// Rule 5: component selection `sel_i(e)`, 1-based as in the paper
    /// (`t.1`, `t.2`, …).
    Sel(usize, Box<Expr>),
    /// Rule 6: equality on an equality type.
    Eq(Box<Expr>, Box<Expr>),
    /// The domain order `e1 ≤ e2` (available per Section 2's closing remark).
    Leq(Box<Expr>, Box<Expr>),
    /// Rule 7: `emptyset`.
    EmptySet,
    /// Rule 8: `insert(e, s)`.
    Insert(Box<Expr>, Box<Expr>),
    /// Rule 9: `set-reduce(s, app, acc, base, extra)`.
    SetReduce {
        /// The set to traverse.
        set: Box<Expr>,
        /// Applied to `(element, extra)` for each element.
        app: Lambda,
        /// Combines `(app result, recursive result)`.
        acc: Lambda,
        /// Value for the empty set.
        base: Box<Expr>,
        /// Extra value threaded to every `app` application.
        extra: Box<Expr>,
    },
    /// `choose(s)`: the minimal element of a non-empty set (from the formal
    /// specification of finite sets the paper builds on).
    Choose(Box<Expr>),
    /// `rest(s)`: the set minus its minimal element.
    Rest(Box<Expr>),
    /// A call to a named, previously defined function (composition).
    Call(String, Vec<Expr>),
    /// `let name = value in body` — sugar for composition, convenient when
    /// building the paper's larger programs.
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: Box<Expr>,
        /// Body in which the name is visible.
        body: Box<Expr>,
    },
    /// `new(s)`: an element not occurring in `s` (Section 5). Our
    /// implementation returns the atom whose rank is one larger than the
    /// largest atom rank occurring anywhere in `s` (so `new` is deterministic
    /// and `insert(new(S), S)` implements the unbounded successor).
    New(Box<Expr>),
    /// A natural-number constant (ℕ extension).
    NatConst(BigNat),
    /// `succ(e)` on naturals.
    Succ(Box<Expr>),
    /// `e1 + e2` on naturals.
    NatAdd(Box<Expr>, Box<Expr>),
    /// `e1 * e2` on naturals.
    NatMul(Box<Expr>, Box<Expr>),
    /// The empty list (LRL extension).
    EmptyList,
    /// `cons(e, l)`: prepend an element to a list.
    Cons(Box<Expr>, Box<Expr>),
    /// `head(l)` of a non-empty list.
    Head(Box<Expr>),
    /// `tail(l)` of a non-empty list.
    Tail(Box<Expr>),
    /// `list-reduce(l, app, acc, base, extra)` — identical to `set-reduce`
    /// except that it traverses a list in its stored order (Section 3).
    ListReduce {
        /// The list to traverse.
        list: Box<Expr>,
        /// Applied to `(element, extra)` for each element.
        app: Lambda,
        /// Combines `(app result, recursive result)`.
        acc: Lambda,
        /// Value for the empty list.
        base: Box<Expr>,
        /// Extra value threaded to every `app` application.
        extra: Box<Expr>,
    },
}

impl Expr {
    /// Short name of the operator at the root of this expression, used in
    /// error messages, dialect checks, and the syntactic analyses.
    pub fn operator_name(&self) -> &'static str {
        match self {
            Expr::Bool(_) => "bool",
            Expr::Const(_) => "const",
            Expr::Var(_) => "var",
            Expr::If(..) => "if",
            Expr::Tuple(_) => "tuple",
            Expr::Sel(..) => "sel",
            Expr::Eq(..) => "eq",
            Expr::Leq(..) => "leq",
            Expr::EmptySet => "emptyset",
            Expr::Insert(..) => "insert",
            Expr::SetReduce { .. } => "set-reduce",
            Expr::Choose(_) => "choose",
            Expr::Rest(_) => "rest",
            Expr::Call(..) => "call",
            Expr::Let { .. } => "let",
            Expr::New(_) => "new",
            Expr::NatConst(_) => "nat-const",
            Expr::Succ(_) => "succ",
            Expr::NatAdd(..) => "nat-add",
            Expr::NatMul(..) => "nat-mul",
            Expr::EmptyList => "emptylist",
            Expr::Cons(..) => "cons",
            Expr::Head(_) => "head",
            Expr::Tail(_) => "tail",
            Expr::ListReduce { .. } => "list-reduce",
        }
    }

    /// Immediate sub-expressions, *excluding* lambda bodies.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Bool(_)
            | Expr::Const(_)
            | Expr::Var(_)
            | Expr::EmptySet
            | Expr::EmptyList
            | Expr::NatConst(_) => vec![],
            Expr::If(a, b, c) => vec![a, b, c],
            Expr::Tuple(items) => items.iter().collect(),
            Expr::Sel(_, e)
            | Expr::Choose(e)
            | Expr::Rest(e)
            | Expr::New(e)
            | Expr::Succ(e)
            | Expr::Head(e)
            | Expr::Tail(e) => vec![e],
            Expr::Eq(a, b)
            | Expr::Leq(a, b)
            | Expr::Insert(a, b)
            | Expr::NatAdd(a, b)
            | Expr::NatMul(a, b)
            | Expr::Cons(a, b) => vec![a, b],
            Expr::SetReduce {
                set, base, extra, ..
            } => vec![set, base, extra],
            Expr::ListReduce {
                list, base, extra, ..
            } => vec![list, base, extra],
            Expr::Call(_, args) => args.iter().collect(),
            Expr::Let { value, body, .. } => vec![value, body],
        }
    }

    /// The lambdas directly attached to this node (the `app` and `acc` of a
    /// reduce), if any.
    pub fn lambdas(&self) -> Vec<&Lambda> {
        match self {
            Expr::SetReduce { app, acc, .. } | Expr::ListReduce { app, acc, .. } => {
                vec![app, acc]
            }
            _ => vec![],
        }
    }

    /// Calls `f` on this expression and every sub-expression, including
    /// lambda bodies, in pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
        for l in self.lambdas() {
            l.body.walk(f);
        }
    }

    /// Total number of AST nodes (including lambda bodies).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Names of all functions called anywhere in the expression.
    pub fn called_functions(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call(name, _) = e {
                out.push(name.clone());
            }
        });
        out.sort();
        out.dedup();
        out
    }

    /// Free variables of the expression (variables not bound by an enclosing
    /// lambda or `let` within the expression itself).
    pub fn free_variables(&self) -> Vec<String> {
        fn go(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            match e {
                Expr::Var(v) => {
                    if !bound.iter().any(|b| b == v) && !out.iter().any(|o| o == v) {
                        out.push(v.clone());
                    }
                }
                Expr::Let { name, value, body } => {
                    go(value, bound, out);
                    bound.push(name.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::SetReduce {
                    set,
                    app,
                    acc,
                    base,
                    extra,
                }
                | Expr::ListReduce {
                    list: set,
                    app,
                    acc,
                    base,
                    extra,
                } => {
                    go(set, bound, out);
                    go(base, bound, out);
                    go(extra, bound, out);
                    for lam in [app, acc] {
                        bound.push(lam.x.clone());
                        bound.push(lam.y.clone());
                        go(&lam.body, bound, out);
                        bound.pop();
                        bound.pop();
                    }
                }
                _ => {
                    for c in e.children() {
                        go(c, bound, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// The paper's `depth` measure (Lemma 3.9 / Proposition 6.1): base
    /// functions have depth 0; a `set-reduce` has depth
    /// `1 + max(depth of set, app, acc, base, extra)`; all other composite
    /// forms take the maximum over their parts.
    pub fn reduce_depth(&self) -> usize {
        let child_max = self
            .children()
            .iter()
            .map(|c| c.reduce_depth())
            .chain(self.lambdas().iter().map(|l| l.body.reduce_depth()))
            .max()
            .unwrap_or(0);
        match self {
            Expr::SetReduce { .. } | Expr::ListReduce { .. } => 1 + child_max,
            _ => child_max,
        }
    }

    /// True if the expression contains a `set-reduce` or `list-reduce`.
    pub fn contains_reduce(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::SetReduce { .. } | Expr::ListReduce { .. }) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn operator_names() {
        assert_eq!(Expr::Bool(true).operator_name(), "bool");
        assert_eq!(Expr::EmptySet.operator_name(), "emptyset");
        assert_eq!(var("x").operator_name(), "var");
        assert_eq!(eq(var("x"), var("y")).operator_name(), "eq");
    }

    #[test]
    fn children_and_lambdas() {
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            Lambda::second(),
            EmptySetExpr(),
            var("R"),
        );
        assert_eq!(e.children().len(), 3);
        assert_eq!(e.lambdas().len(), 2);
        assert_eq!(e.node_count(), 1 + 3 + 2); // root + S, {}, R + two lambda bodies
    }

    #[test]
    fn free_variables_respect_binders() {
        let e = set_reduce(
            var("S"),
            Lambda::new("x", "y", eq(var("x"), var("y"))),
            Lambda::new("t", "acc", insert(var("t"), var("acc"))),
            EmptySetExpr(),
            var("extra_in"),
        );
        let fv = e.free_variables();
        assert!(fv.contains(&"S".to_string()));
        assert!(fv.contains(&"extra_in".to_string()));
        assert!(!fv.contains(&"x".to_string()));
        assert!(!fv.contains(&"t".to_string()));
        assert!(!fv.contains(&"acc".to_string()));
    }

    #[test]
    fn let_binds_its_name() {
        let e = let_in("a", var("input"), tuple([var("a"), var("b")]));
        let fv = e.free_variables();
        assert_eq!(fv, vec!["input".to_string(), "b".to_string()]);
    }

    #[test]
    fn reduce_depth_matches_lemma_3_9() {
        // Base functions have depth 0.
        assert_eq!(var("x").reduce_depth(), 0);
        assert_eq!(insert(var("x"), var("S")).reduce_depth(), 0);
        // One reduce: depth 1.
        let inner = set_reduce(
            var("S"),
            Lambda::identity(),
            Lambda::second(),
            EmptySetExpr(),
            EmptySetExpr(),
        );
        assert_eq!(inner.reduce_depth(), 1);
        // A reduce whose acc body contains another reduce: depth 2.
        let outer = set_reduce(
            var("S"),
            Lambda::identity(),
            Lambda::new("x", "y", inner.clone()),
            EmptySetExpr(),
            EmptySetExpr(),
        );
        assert_eq!(outer.reduce_depth(), 2);
        // Depth of an `if` is the max of its parts.
        assert_eq!(if_(Expr::Bool(true), inner, var("x")).reduce_depth(), 1);
    }

    #[test]
    fn called_functions_collects_and_dedups() {
        let e = call(
            "union",
            [call("project", [var("R")]), call("union", [var("S")])],
        );
        assert_eq!(
            e.called_functions(),
            vec!["project".to_string(), "union".to_string()]
        );
    }

    #[test]
    fn contains_reduce() {
        assert!(!var("x").contains_reduce());
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            Lambda::second(),
            EmptySetExpr(),
            EmptySetExpr(),
        );
        assert!(e.contains_reduce());
        assert!(if_(Expr::Bool(true), e, var("x")).contains_reduce());
    }

    #[allow(non_snake_case)]
    fn EmptySetExpr() -> Expr {
        Expr::EmptySet
    }
}
