//! Transitive closure and deterministic transitive closure in SRL
//! (Section 4, Corollaries 4.2 and 4.4).
//!
//! Fact 4.1 states `NL = (FO + TC)` and Fact 4.3 `L = (FO + DTC)`; the paper
//! defines the `TC` operator *inside* SRL by pivot iteration:
//!
//! ```text
//! bothsides(v, E) = join(D, D, …)   — the pairs [x, y] with [x, v], [v, y] ∈ E
//! add(v, E)       = E ∪ bothsides(v, E)
//! TC(E)           = set-reduce over the vertices, applying add per pivot
//! ```
//!
//! and `DTC(φ) = TC(φ_d)` where `φ_d(x, y)` additionally requires `y` to be
//! the unique successor of `x`. The builders here produce those expressions
//! over a domain `D` and an edge relation `EDGES` (both free variables or
//! arbitrary sub-expressions); `SRFO + TC` / `SRFO + DTC` programs are then
//! just first-order combinations of these closures, which the E5 experiment
//! compares against the native closures of `workloads::digraph` and the
//! formula-level `TC`/`DTC` of `fo-logic`.

use srl_core::ast::Expr;
use srl_core::dsl::*;

use crate::derived::{forall, join, map_set, member, select, union};

/// `reflexive(D)`: the identity relation `{[d, d] | d ∈ D}`.
pub fn reflexive(domain: Expr) -> Expr {
    map_set(
        domain,
        lam("__r_d", "__r_unused", tuple([var("__r_d"), var("__r_d")])),
        empty_set(),
    )
}

/// The paper's `bothsides(v, E)`: pairs at distance two through the pivot
/// `v`, i.e. `{[x, y] | [x, v] ∈ E ∧ [v, y] ∈ E}`.
pub fn bothsides(pivot: Expr, edges: Expr) -> Expr {
    let_in(
        "__b_v",
        pivot,
        join(
            edges.clone(),
            edges,
            lam(
                "__b_t1",
                "__b_t2",
                and(
                    eq(sel(var("__b_t1"), 2), var("__b_v")),
                    eq(sel(var("__b_t2"), 1), var("__b_v")),
                ),
            ),
            lam(
                "__b_s1",
                "__b_s2",
                tuple([sel(var("__b_s1"), 1), sel(var("__b_s2"), 2)]),
            ),
        ),
    )
}

/// The paper's `add(v, E) = union(E, bothsides(v, E))`.
pub fn add_pivot(pivot: Expr, edges: Expr) -> Expr {
    union(edges.clone(), bothsides(pivot, edges))
}

/// `TC(D, EDGES)`: the reflexive-transitive closure, by iterating `add` over
/// every vertex as a pivot (one sweep of pivots suffices, exactly as in
/// Floyd–Warshall).
pub fn transitive_closure(domain: Expr, edges: Expr) -> Expr {
    set_reduce(
        domain.clone(),
        lam("__tc_v", "__tc_unused", var("__tc_v")),
        lam(
            "__tc_pivot",
            "__tc_edges",
            add_pivot(var("__tc_pivot"), var("__tc_edges")),
        ),
        union(edges, reflexive(domain)),
        empty_set(),
    )
}

/// The paper's `φ_d`: the subset of `EDGES` consisting of the pairs `[x, y]`
/// such that `y` is the unique successor of `x`.
pub fn deterministic_edges(edges: Expr) -> Expr {
    select(
        edges.clone(),
        lam(
            "__dd_t",
            "__dd_all",
            forall(
                var("__dd_all"),
                lam(
                    "__dd_e",
                    "__dd_t2",
                    or(
                        not(eq(sel(var("__dd_e"), 1), sel(var("__dd_t2"), 1))),
                        eq(sel(var("__dd_e"), 2), sel(var("__dd_t2"), 2)),
                    ),
                ),
                var("__dd_t"),
            ),
        ),
        edges,
    )
}

/// `DTC(D, EDGES) = TC(D, φ_d(EDGES))` (Section 4).
pub fn deterministic_transitive_closure(domain: Expr, edges: Expr) -> Expr {
    transitive_closure(domain, deterministic_edges(edges))
}

/// The SRFO+TC reachability query: `[s, t] ∈ TC(D, EDGES)`.
pub fn reachable(domain: Expr, edges: Expr, source: Expr, target: Expr) -> Expr {
    member(tuple([source, target]), transitive_closure(domain, edges))
}

/// The SRFO+DTC reachability query: `[s, t] ∈ DTC(D, EDGES)`.
pub fn deterministically_reachable(domain: Expr, edges: Expr, source: Expr, target: Expr) -> Expr {
    member(
        tuple([source, target]),
        deterministic_transitive_closure(domain, edges),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::eval::eval_expr;
    use srl_core::limits::EvalLimits;
    use srl_core::program::Env;
    use srl_core::value::Value;
    use workloads::digraph::Digraph;

    fn closure_matrix(expr: &Expr, g: &Digraph) -> Vec<Vec<bool>> {
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let v = eval_expr(expr, &env, EvalLimits::benchmark()).expect("closure evaluates");
        Digraph::closure_from_value(&v, g.n).expect("closure has relation shape")
    }

    #[test]
    fn reflexive_relation() {
        let g = Digraph::empty(3);
        let env = Env::new().bind("D", g.vertices_value());
        let v = eval_expr(&reflexive(var("D")), &env, EvalLimits::default()).unwrap();
        assert_eq!(v.len(), Some(3));
        assert!(v
            .as_set()
            .unwrap()
            .contains(&Value::tuple([Value::atom(2), Value::atom(2)])));
    }

    #[test]
    fn bothsides_finds_two_step_pairs() {
        let g = Digraph::new(4, [(0, 1), (1, 2), (1, 3)]);
        let env = Env::new().bind("E", g.edges_value());
        let v = eval_expr(&bothsides(atom(1), var("E")), &env, EvalLimits::default()).unwrap();
        let expected = Value::set([
            Value::tuple([Value::atom(0), Value::atom(2)]),
            Value::tuple([Value::atom(0), Value::atom(3)]),
        ]);
        assert_eq!(v, expected);
    }

    #[test]
    fn tc_matches_native_on_paths_and_cycles() {
        for g in [Digraph::path(5), Digraph::cycle(5)] {
            let srl = closure_matrix(&transitive_closure(var("D"), var("E")), &g);
            assert_eq!(srl, g.transitive_closure());
        }
    }

    #[test]
    fn tc_matches_native_on_random_graphs() {
        for seed in 0..4u64 {
            let g = Digraph::random(6, 0.25, seed);
            let srl = closure_matrix(&transitive_closure(var("D"), var("E")), &g);
            assert_eq!(srl, g.transitive_closure(), "seed {seed}");
        }
    }

    #[test]
    fn dtc_matches_native() {
        // Branching vertex: DTC must not pass through it.
        let g = Digraph::new(4, [(0, 1), (1, 2), (1, 3)]);
        let srl = closure_matrix(&deterministic_transitive_closure(var("D"), var("E")), &g);
        assert_eq!(srl, g.deterministic_transitive_closure());
        // Functional graphs: DTC equals TC.
        let g = Digraph::random_functional(6, 5);
        let dtc = closure_matrix(&deterministic_transitive_closure(var("D"), var("E")), &g);
        let tc = closure_matrix(&transitive_closure(var("D"), var("E")), &g);
        assert_eq!(dtc, tc);
        assert_eq!(dtc, g.deterministic_transitive_closure());
    }

    #[test]
    fn dtc_matches_native_on_random_graphs() {
        for seed in 0..4u64 {
            let g = Digraph::random(6, 0.3, seed + 100);
            let srl = closure_matrix(&deterministic_transitive_closure(var("D"), var("E")), &g);
            assert_eq!(srl, g.deterministic_transitive_closure(), "seed {seed}");
        }
    }

    #[test]
    fn reachability_queries() {
        let g = Digraph::new(4, [(0, 1), (1, 2), (1, 3)]);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let tc_probe = reachable(var("D"), var("E"), atom(0), atom(3));
        assert_eq!(
            eval_expr(&tc_probe, &env, EvalLimits::benchmark()).unwrap(),
            Value::bool(true)
        );
        let dtc_probe = deterministically_reachable(var("D"), var("E"), atom(0), atom(3));
        assert_eq!(
            eval_expr(&dtc_probe, &env, EvalLimits::benchmark()).unwrap(),
            Value::bool(false)
        );
        // Reflexivity through either closure.
        let self_probe = deterministically_reachable(var("D"), var("E"), atom(2), atom(2));
        assert_eq!(
            eval_expr(&self_probe, &env, EvalLimits::benchmark()).unwrap(),
            Value::bool(true)
        );
    }

    #[test]
    fn deterministic_edges_filters_branches() {
        let g = Digraph::new(4, [(0, 1), (1, 2), (1, 3), (2, 3)]);
        let env = Env::new().bind("E", g.edges_value());
        let v = eval_expr(&deterministic_edges(var("E")), &env, EvalLimits::default()).unwrap();
        let set = v.as_set().unwrap();
        assert!(set.contains(&Value::tuple([Value::atom(0), Value::atom(1)])));
        assert!(set.contains(&Value::tuple([Value::atom(2), Value::atom(3)])));
        assert!(!set.contains(&Value::tuple([Value::atom(1), Value::atom(2)])));
        assert!(!set.contains(&Value::tuple([Value::atom(1), Value::atom(3)])));
    }
}
