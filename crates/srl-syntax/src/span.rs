//! Byte spans into a source text, and line/column resolution for rendering
//! caret-underlined diagnostics.
//!
//! Every token the lexer produces and every error the parser reports carries
//! a [`Span`]: a half-open byte range `[start, end)` into the original source
//! string. Spans are deliberately tiny (two `u32`s, `Copy`) so carrying them
//! everywhere costs nothing; they resolve to human line/column positions only
//! when a diagnostic is actually rendered.

use std::fmt;

/// A half-open byte range `[start, end)` into a source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: u32,
    /// Byte offset one past the last byte covered.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// An empty span at a single position (used for end-of-input errors).
    pub fn point(at: usize) -> Self {
        Span::new(at, at)
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True for zero-length (point) spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The source text the span covers.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start as usize..(self.end as usize).min(source.len())]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A span resolved to 1-based line and column numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes; the sources here are ASCII).
    pub col: usize,
}

/// Resolves a byte offset to its 1-based line and column in `source`.
pub fn line_col(source: &str, offset: usize) -> LineCol {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = offset - before.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
    LineCol { line, col }
}

/// Renders the source line containing `span` with a caret underline:
///
/// ```text
///   |
/// 3 | insert(x, emptyset
///   |       ^
/// ```
///
/// The underline covers the span (clamped to the line), with a minimum width
/// of one caret so point spans (end-of-input) still show a position.
pub fn caret_excerpt(source: &str, span: Span) -> String {
    let at = (span.start as usize).min(source.len());
    let line_start = source[..at].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[at..]
        .find('\n')
        .map(|i| at + i)
        .unwrap_or(source.len());
    let line_text = &source[line_start..line_end];
    let lc = line_col(source, at);
    let gutter = lc.line.to_string();
    let pad = " ".repeat(gutter.len());
    let underline_start = at - line_start;
    let underline_len = (span.len()).max(1).min(line_end.saturating_sub(at).max(1));
    let mut out = String::new();
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{gutter} | {line_text}\n"));
    out.push_str(&format!(
        "{pad} | {}{}\n",
        " ".repeat(underline_start),
        "^".repeat(underline_len)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_slice() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(4).is_empty());
        assert_eq!(a.slice("0123456789"), "234");
    }

    #[test]
    fn line_col_resolution() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 5), LineCol { line: 2, col: 3 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 1 });
        // Past the end clamps to the end.
        assert_eq!(line_col(src, 99), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn caret_excerpt_underlines_the_span() {
        let src = "f(x) =\n  insert(x)\n";
        let span = Span::new(9, 18); // `insert(x)`
        let rendered = caret_excerpt(src, span);
        assert!(rendered.contains("2 |   insert(x)"), "{rendered}");
        assert!(rendered.contains("^^^^^^^^^"), "{rendered}");
    }

    #[test]
    fn caret_excerpt_point_span_shows_one_caret() {
        let src = "abc";
        let rendered = caret_excerpt(src, Span::point(3));
        assert!(rendered.contains('^'), "{rendered}");
    }
}
