//! First-order logic over finite structures, with the extensions the paper
//! discusses: the built-in order `≤`, `BIT`, counting quantifiers, and the
//! fixpoint operators `LFP`, `TC` and `DTC`.
//!
//! The evaluator is deliberately naive (it enumerates assignments), because
//! its role is to be an *obviously correct* baseline:
//!
//! * `(FO + LFP)` evaluation is the ground truth for the Lemma 3.6 / E1
//!   experiment (the paper's monotone operator `F` with `LFP(F) = APATH`);
//! * `(FO + TC)` / `(FO + DTC)` evaluation is the ground truth for the
//!   Section 4 experiments (Facts 4.1 and 4.3);
//! * counting quantifiers give the `(FO(wo≤) + count)` baseline of Section 7.

use std::collections::{BTreeMap, BTreeSet};

use crate::structure::Structure;

/// A first-order term: a variable or one of the constants the paper's
/// language `L(τ)` provides (`0` and `n − 1`), or an explicit element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A variable.
    Var(String),
    /// The constant `0` (the least element).
    Zero,
    /// The constant `n − 1` (the greatest element).
    Max,
    /// An explicit universe element (used when instantiating queries).
    Const(usize),
}

/// Convenience constructor for a term variable.
pub fn tvar(name: impl Into<String>) -> Term {
    Term::Var(name.into())
}

/// A formula of first-order logic with order, BIT, counting and fixpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic relation `R(t₁, …, t_k)`. The relation may be an input
    /// relation of the structure or the bound relation variable of an
    /// enclosing `Lfp`.
    Rel(String, Vec<Term>),
    /// `t₁ = t₂`.
    Eq(Term, Term),
    /// `t₁ ≤ t₂` (the built-in order on the universe).
    Leq(Term, Term),
    /// `BIT(i, x)`: bit `i` of the binary representation of `x` is 1.
    Bit(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(String, Box<Formula>),
    /// Universal quantification.
    Forall(String, Box<Formula>),
    /// The counting quantifier `∃^{≥ t} x. φ`: at least `t` elements satisfy
    /// φ, where the threshold is itself a term (a "number variable" in the
    /// two-sorted view of Section 7; here numbers are identified with
    /// universe ranks).
    CountAtLeast(Term, String, Box<Formula>),
    /// `LFP(λ R, x̄. φ)(t̄)`: the least fixed point of the (assumed monotone)
    /// operator φ in the relation variable `relation` of arity `vars.len()`,
    /// applied to the argument terms.
    Lfp {
        /// Name of the bound relation variable.
        relation: String,
        /// The tuple of bound element variables.
        vars: Vec<String>,
        /// The body φ, which may mention `relation`.
        body: Box<Formula>,
        /// The arguments the fixpoint is applied to.
        args: Vec<Term>,
    },
    /// `TC(λ x̄, ȳ. φ)(s̄, t̄)`: reflexive-transitive closure of the binary
    /// relation on k-tuples defined by φ.
    Tc {
        /// The source tuple of bound variables x̄.
        from_vars: Vec<String>,
        /// The target tuple of bound variables ȳ.
        to_vars: Vec<String>,
        /// The body φ(x̄, ȳ).
        body: Box<Formula>,
        /// Source argument terms.
        from: Vec<Term>,
        /// Target argument terms.
        to: Vec<Term>,
    },
    /// `DTC(λ x̄, ȳ. φ)(s̄, t̄)`: deterministic transitive closure — like `Tc`
    /// but an edge x̄ → ȳ only counts when ȳ is the *unique* φ-successor of
    /// x̄ (the paper's φ_d, Section 4).
    Dtc {
        /// The source tuple of bound variables x̄.
        from_vars: Vec<String>,
        /// The target tuple of bound variables ȳ.
        to_vars: Vec<String>,
        /// The body φ(x̄, ȳ).
        body: Box<Formula>,
        /// Source argument terms.
        from: Vec<Term>,
        /// Target argument terms.
        to: Vec<Term>,
    },
}

impl Formula {
    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }
    /// `φ ∧ ψ`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }
    /// `φ ∨ ψ`.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }
    /// `φ → ψ`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }
    /// `∃x. φ`.
    pub fn exists(x: impl Into<String>, f: Formula) -> Formula {
        Formula::Exists(x.into(), Box::new(f))
    }
    /// `∀x. φ`.
    pub fn forall(x: impl Into<String>, f: Formula) -> Formula {
        Formula::Forall(x.into(), Box::new(f))
    }
}

/// A variable assignment.
pub type Assignment = BTreeMap<String, usize>;

/// Auxiliary relation environment used while evaluating fixpoints.
type RelEnv = BTreeMap<String, BTreeSet<Vec<usize>>>;

/// Evaluates a sentence (formula with no free variables) on a structure.
pub fn eval_sentence(structure: &Structure, formula: &Formula) -> bool {
    eval(structure, formula, &Assignment::new())
}

/// Evaluates a formula under an assignment of its free variables.
pub fn eval(structure: &Structure, formula: &Formula, assignment: &Assignment) -> bool {
    let mut rel_env = RelEnv::new();
    eval_inner(structure, formula, &mut assignment.clone(), &mut rel_env)
}

/// The set of elements satisfying a formula in one free variable — used by
/// the harness to materialise unary queries.
pub fn satisfying_elements(structure: &Structure, variable: &str, formula: &Formula) -> Vec<usize> {
    let mut out = Vec::new();
    let mut assignment = Assignment::new();
    for x in 0..structure.universe {
        assignment.insert(variable.to_string(), x);
        if eval(structure, formula, &assignment) {
            out.push(x);
        }
    }
    out
}

/// The set of pairs satisfying a formula in two free variables.
pub fn satisfying_pairs(
    structure: &Structure,
    var_x: &str,
    var_y: &str,
    formula: &Formula,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut assignment = Assignment::new();
    for x in 0..structure.universe {
        for y in 0..structure.universe {
            assignment.insert(var_x.to_string(), x);
            assignment.insert(var_y.to_string(), y);
            if eval(structure, formula, &assignment) {
                out.push((x, y));
            }
        }
    }
    out
}

fn term_value(structure: &Structure, term: &Term, assignment: &Assignment) -> Option<usize> {
    match term {
        Term::Var(v) => assignment.get(v).copied(),
        Term::Zero => Some(0),
        Term::Max => Some(structure.universe.saturating_sub(1)),
        Term::Const(c) => Some(*c),
    }
}

fn eval_inner(
    structure: &Structure,
    formula: &Formula,
    assignment: &mut Assignment,
    rel_env: &mut RelEnv,
) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Rel(name, terms) => {
            let tuple: Option<Vec<usize>> = terms
                .iter()
                .map(|t| term_value(structure, t, assignment))
                .collect();
            match tuple {
                None => false,
                Some(tuple) => {
                    if let Some(aux) = rel_env.get(name) {
                        aux.contains(&tuple)
                    } else {
                        structure.holds(name, &tuple)
                    }
                }
            }
        }
        Formula::Eq(a, b) => {
            term_value(structure, a, assignment) == term_value(structure, b, assignment)
                && term_value(structure, a, assignment).is_some()
        }
        Formula::Leq(a, b) => match (
            term_value(structure, a, assignment),
            term_value(structure, b, assignment),
        ) {
            (Some(x), Some(y)) => x <= y,
            _ => false,
        },
        Formula::Bit(i, x) => match (
            term_value(structure, i, assignment),
            term_value(structure, x, assignment),
        ) {
            (Some(i), Some(x)) => (x >> i) & 1 == 1,
            _ => false,
        },
        Formula::Not(f) => !eval_inner(structure, f, assignment, rel_env),
        Formula::And(a, b) => {
            eval_inner(structure, a, assignment, rel_env)
                && eval_inner(structure, b, assignment, rel_env)
        }
        Formula::Or(a, b) => {
            eval_inner(structure, a, assignment, rel_env)
                || eval_inner(structure, b, assignment, rel_env)
        }
        Formula::Implies(a, b) => {
            !eval_inner(structure, a, assignment, rel_env)
                || eval_inner(structure, b, assignment, rel_env)
        }
        Formula::Exists(x, f) => {
            let saved = assignment.get(x).copied();
            let mut found = false;
            for v in 0..structure.universe {
                assignment.insert(x.clone(), v);
                if eval_inner(structure, f, assignment, rel_env) {
                    found = true;
                    break;
                }
            }
            restore(assignment, x, saved);
            found
        }
        Formula::Forall(x, f) => {
            let saved = assignment.get(x).copied();
            let mut all = true;
            for v in 0..structure.universe {
                assignment.insert(x.clone(), v);
                if !eval_inner(structure, f, assignment, rel_env) {
                    all = false;
                    break;
                }
            }
            restore(assignment, x, saved);
            all
        }
        Formula::CountAtLeast(threshold, x, f) => {
            let needed = match term_value(structure, threshold, assignment) {
                Some(t) => t,
                None => return false,
            };
            let saved = assignment.get(x).copied();
            let mut count = 0;
            for v in 0..structure.universe {
                assignment.insert(x.clone(), v);
                if eval_inner(structure, f, assignment, rel_env) {
                    count += 1;
                    if count >= needed {
                        break;
                    }
                }
            }
            restore(assignment, x, saved);
            count >= needed
        }
        Formula::Lfp {
            relation,
            vars,
            body,
            args,
        } => {
            let arity = vars.len();
            let fixpoint = compute_lfp(structure, relation, vars, body, rel_env, arity);
            let tuple: Option<Vec<usize>> = args
                .iter()
                .map(|t| term_value(structure, t, assignment))
                .collect();
            tuple.is_some_and(|t| fixpoint.contains(&t))
        }
        Formula::Tc {
            from_vars,
            to_vars,
            body,
            from,
            to,
        } => eval_closure(
            structure, from_vars, to_vars, body, from, to, assignment, rel_env, false,
        ),
        Formula::Dtc {
            from_vars,
            to_vars,
            body,
            from,
            to,
        } => eval_closure(
            structure, from_vars, to_vars, body, from, to, assignment, rel_env, true,
        ),
    }
}

fn restore(assignment: &mut Assignment, var: &str, saved: Option<usize>) {
    match saved {
        Some(v) => {
            assignment.insert(var.to_string(), v);
        }
        None => {
            assignment.remove(var);
        }
    }
}

/// Enumerates all k-tuples over the universe.
fn all_tuples(universe: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * universe);
        for t in &out {
            for v in 0..universe {
                let mut t2 = t.clone();
                t2.push(v);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

fn compute_lfp(
    structure: &Structure,
    relation: &str,
    vars: &[String],
    body: &Formula,
    rel_env: &mut RelEnv,
    arity: usize,
) -> BTreeSet<Vec<usize>> {
    let candidates = all_tuples(structure.universe, arity);
    let mut current: BTreeSet<Vec<usize>> = BTreeSet::new();
    loop {
        let previous = rel_env.insert(relation.to_string(), current.clone());
        let mut next = BTreeSet::new();
        for tuple in &candidates {
            let mut assignment = Assignment::new();
            for (v, &x) in vars.iter().zip(tuple) {
                assignment.insert(v.clone(), x);
            }
            if eval_inner(structure, body, &mut assignment, rel_env) {
                next.insert(tuple.clone());
            }
        }
        // Inflationary union keeps the iteration monotone even if the body
        // is not syntactically positive; for monotone bodies (all the paper's
        // uses) this coincides with the least fixed point.
        let merged: BTreeSet<Vec<usize>> = current.union(&next).cloned().collect();
        match previous {
            Some(p) => {
                rel_env.insert(relation.to_string(), p);
            }
            None => {
                rel_env.remove(relation);
            }
        }
        if merged == current {
            return current;
        }
        current = merged;
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_closure(
    structure: &Structure,
    from_vars: &[String],
    to_vars: &[String],
    body: &Formula,
    from: &[Term],
    to: &[Term],
    assignment: &mut Assignment,
    rel_env: &mut RelEnv,
    deterministic: bool,
) -> bool {
    let k = from_vars.len();
    let tuples = all_tuples(structure.universe, k);
    // Build the edge relation defined by the body.
    let mut successors: BTreeMap<Vec<usize>, Vec<Vec<usize>>> = BTreeMap::new();
    for a in &tuples {
        for b in &tuples {
            let mut inner = assignment.clone();
            for (v, &x) in from_vars.iter().zip(a) {
                inner.insert(v.clone(), x);
            }
            for (v, &x) in to_vars.iter().zip(b) {
                inner.insert(v.clone(), x);
            }
            if eval_inner(structure, body, &mut inner, rel_env) {
                successors.entry(a.clone()).or_default().push(b.clone());
            }
        }
    }
    let source: Option<Vec<usize>> = from
        .iter()
        .map(|t| term_value(structure, t, assignment))
        .collect();
    let target: Option<Vec<usize>> = to
        .iter()
        .map(|t| term_value(structure, t, assignment))
        .collect();
    let (source, target) = match (source, target) {
        (Some(s), Some(t)) => (s, t),
        _ => return false,
    };
    // BFS from the source over the (possibly determinised) edge relation.
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut queue = std::collections::VecDeque::from([source.clone()]);
    seen.insert(source);
    while let Some(cur) = queue.pop_front() {
        if cur == target {
            return true;
        }
        let nexts = successors.get(&cur).cloned().unwrap_or_default();
        let usable: Vec<Vec<usize>> = if deterministic {
            if nexts.len() == 1 {
                nexts
            } else {
                Vec::new()
            }
        } else {
            nexts
        };
        for nxt in usable {
            if seen.insert(nxt.clone()) {
                queue.push_back(nxt);
            }
        }
    }
    seen.contains(&target)
}

/// Library of formulas used by the experiments.
pub mod library {
    use super::*;

    /// The paper's monotone operator for alternating reachability
    /// (Section 3):
    ///
    /// ```text
    /// F(R)[x, y] ≡ x = y ∨ [ (∃z)(E(x,z) ∧ R(z,y))
    ///                        ∧ (A(x) → (∀z)(E(x,z) → R(z,y))) ]
    /// ```
    ///
    /// `LFP(F) = APATH`; the returned formula is `LFP(F)(x, y)` with free
    /// variables `x` and `y`.
    pub fn apath_lfp() -> Formula {
        let body = Formula::or(
            Formula::Eq(tvar("x"), tvar("y")),
            Formula::and(
                Formula::exists(
                    "z",
                    Formula::and(
                        Formula::Rel("E".into(), vec![tvar("x"), tvar("z")]),
                        Formula::Rel("R".into(), vec![tvar("z"), tvar("y")]),
                    ),
                ),
                Formula::implies(
                    Formula::Rel("A".into(), vec![tvar("x")]),
                    Formula::forall(
                        "z",
                        Formula::implies(
                            Formula::Rel("E".into(), vec![tvar("x"), tvar("z")]),
                            Formula::Rel("R".into(), vec![tvar("z"), tvar("y")]),
                        ),
                    ),
                ),
            ),
        );
        Formula::Lfp {
            relation: "R".into(),
            vars: vec!["x".into(), "y".into()],
            body: Box::new(body),
            args: vec![tvar("x"), tvar("y")],
        }
    }

    /// `AGAP`: `APATH(0, n−1)` as a sentence (Fact 3.5's P-complete problem).
    pub fn agap_sentence() -> Formula {
        let Formula::Lfp {
            relation,
            vars,
            body,
            ..
        } = apath_lfp()
        else {
            unreachable!("apath_lfp always returns an Lfp formula")
        };
        Formula::Lfp {
            relation,
            vars,
            body,
            args: vec![Term::Zero, Term::Max],
        }
    }

    /// Plain graph reachability `TC(E)(s, t)` with `s`, `t` free.
    pub fn reachability_tc() -> Formula {
        Formula::Tc {
            from_vars: vec!["u".into()],
            to_vars: vec!["v".into()],
            body: Box::new(Formula::Rel("E".into(), vec![tvar("u"), tvar("v")])),
            from: vec![tvar("s")],
            to: vec![tvar("t")],
        }
    }

    /// Deterministic reachability `DTC(E)(s, t)` with `s`, `t` free.
    pub fn reachability_dtc() -> Formula {
        Formula::Dtc {
            from_vars: vec!["u".into()],
            to_vars: vec!["v".into()],
            body: Box::new(Formula::Rel("E".into(), vec![tvar("u"), tvar("v")])),
            from: vec![tvar("s")],
            to: vec![tvar("t")],
        }
    }

    /// The sentence "the universe has at least `k` elements", via the
    /// counting quantifier.
    pub fn at_least_k_elements(k: usize) -> Formula {
        Formula::CountAtLeast(Term::Const(k), "x".into(), Box::new(Formula::True))
    }

    /// EVEN with the help of the order and BIT: "the maximum element's rank
    /// is odd" (i.e. `BIT(0, max)` — ranks start at 0, so a universe of even
    /// size has an odd maximum rank). Expressible because the order is
    /// available; Fact 7.5 says no such sentence exists without it.
    pub fn even_with_order() -> Formula {
        Formula::Bit(Term::Zero, Term::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;
    use crate::structure::{Structure, Vocabulary};

    fn path_structure(n: usize) -> Structure {
        Structure::from_digraph(n, &(1..n).map(|i| (i - 1, i)).collect::<Vec<_>>())
    }

    #[test]
    fn atoms_and_connectives() {
        let s = path_structure(3);
        assert!(eval_sentence(
            &s,
            &Formula::Rel("E".into(), vec![Term::Const(0), Term::Const(1)])
        ));
        assert!(!eval_sentence(
            &s,
            &Formula::Rel("E".into(), vec![Term::Const(1), Term::Const(0)])
        ));
        assert!(eval_sentence(
            &s,
            &Formula::and(Formula::True, Formula::not(Formula::False))
        ));
        assert!(eval_sentence(
            &s,
            &Formula::or(Formula::False, Formula::True)
        ));
        assert!(eval_sentence(
            &s,
            &Formula::implies(Formula::False, Formula::False)
        ));
        assert!(eval_sentence(&s, &Formula::Leq(Term::Zero, Term::Max)));
        assert!(eval_sentence(&s, &Formula::Eq(Term::Const(2), Term::Max)));
    }

    #[test]
    fn quantifiers() {
        let s = path_structure(4);
        // Every vertex except the last has a successor.
        let has_succ = Formula::exists("y", Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]));
        let all_have_succ = Formula::forall("x", has_succ.clone());
        assert!(!eval_sentence(&s, &all_have_succ));
        let all_but_last = Formula::forall(
            "x",
            Formula::or(Formula::Eq(tvar("x"), Term::Max), has_succ),
        );
        assert!(eval_sentence(&s, &all_but_last));
    }

    #[test]
    fn bit_predicate() {
        let s = path_structure(8);
        // BIT(1, 6): 6 = 0b110 has bit 1 set.
        assert!(eval_sentence(
            &s,
            &Formula::Bit(Term::Const(1), Term::Const(6))
        ));
        assert!(!eval_sentence(
            &s,
            &Formula::Bit(Term::Const(0), Term::Const(6))
        ));
    }

    #[test]
    fn counting_quantifier() {
        let s = path_structure(5);
        assert!(eval_sentence(&s, &at_least_k_elements(5)));
        assert!(!eval_sentence(&s, &at_least_k_elements(6)));
        // At least 2 vertices have a successor (actually 4 do).
        let f = Formula::CountAtLeast(
            Term::Const(2),
            "x".into(),
            Box::new(Formula::exists(
                "y",
                Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]),
            )),
        );
        assert!(eval_sentence(&s, &f));
    }

    #[test]
    fn even_with_order_matches_parity() {
        for n in 1..10 {
            let s = path_structure(n);
            assert_eq!(eval_sentence(&s, &even_with_order()), n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn lfp_reachability_on_a_path() {
        // On a plain digraph (no A relation in the vocabulary the formula
        // expects), use the alternating vocabulary with A empty: APATH then
        // degenerates to reachability.
        let s = Structure::from_alternating_graph(4, &[(0, 1), (1, 2), (2, 3)], &[false; 4]);
        let apath = apath_lfp();
        let mut assignment = Assignment::new();
        assignment.insert("x".into(), 0);
        assignment.insert("y".into(), 3);
        assert!(eval(&s, &apath, &assignment));
        assignment.insert("x".into(), 3);
        assignment.insert("y".into(), 0);
        assert!(!eval(&s, &apath, &assignment));
        assert!(eval_sentence(&s, &agap_sentence()));
    }

    #[test]
    fn lfp_apath_respects_universal_vertices() {
        // Vertex 0 is universal with successors 1 and 2; only 1 reaches 3.
        let s = Structure::from_alternating_graph(
            4,
            &[(0, 1), (0, 2), (1, 3)],
            &[true, false, false, false],
        );
        assert!(!eval_sentence(&s, &agap_sentence()));
        // Add the missing edge 2 → 3 and it becomes true.
        let s2 = Structure::from_alternating_graph(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[true, false, false, false],
        );
        assert!(eval_sentence(&s2, &agap_sentence()));
    }

    #[test]
    fn tc_and_dtc_reachability() {
        // 0 → 1, 1 → 2, 1 → 3: TC reaches 3 from 0; DTC does not (vertex 1
        // branches).
        let s = Structure::from_digraph(4, &[(0, 1), (1, 2), (1, 3)]);
        let mut a = Assignment::new();
        a.insert("s".into(), 0);
        a.insert("t".into(), 3);
        assert!(eval(&s, &reachability_tc(), &a));
        assert!(!eval(&s, &reachability_dtc(), &a));
        // On a simple path DTC and TC agree.
        let p = path_structure(5);
        let mut a = Assignment::new();
        a.insert("s".into(), 0);
        a.insert("t".into(), 4);
        assert!(eval(&p, &reachability_tc(), &a));
        assert!(eval(&p, &reachability_dtc(), &a));
        // Reflexivity.
        let mut a = Assignment::new();
        a.insert("s".into(), 2);
        a.insert("t".into(), 2);
        assert!(eval(&p, &reachability_tc(), &a));
        assert!(eval(&p, &reachability_dtc(), &a));
    }

    #[test]
    fn satisfying_helpers() {
        let s = path_structure(4);
        let has_succ = Formula::exists("y", Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]));
        assert_eq!(satisfying_elements(&s, "x", &has_succ), vec![0, 1, 2]);
        let edges = satisfying_pairs(
            &s,
            "x",
            "y",
            &Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]),
        );
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn unknown_relation_is_false() {
        let s = Structure::new(3, Vocabulary::new());
        assert!(!eval_sentence(
            &s,
            &Formula::Rel("R".into(), vec![Term::Const(0)])
        ));
    }

    #[test]
    fn unbound_variable_is_false_not_panic() {
        let s = path_structure(3);
        assert!(!eval_sentence(
            &s,
            &Formula::Rel("E".into(), vec![tvar("loose"), Term::Zero])
        ));
        assert!(!eval_sentence(&s, &Formula::Leq(tvar("loose"), Term::Max)));
    }
}
