//! # srl-syntax — a concrete syntax for SRL
//!
//! A pretty-printer that renders [`srl_core::Expr`] / [`srl_core::Program`]
//! values in the paper's notation (`set-reduce(…, lambda(x, y) …, …)`,
//! `if … then … else …`, selectors `e.1`). The examples use it to show the
//! generated paper programs in readable form; a parser for the same notation
//! is future work (the builders in `srl-core::dsl` and `srl-stdlib` are the
//! supported way to construct programs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod printer;

pub use printer::{print_expr, print_lambda, print_program};
