//! Sharded execution of proper-hom `set-reduce` folds across a scoped
//! worker pool.
//!
//! The paper's expressiveness results hinge on folds whose combiners are
//! **proper homomorphisms** (Section 7): commutative-associative accumulator
//! steps for which the traversal order is provably unobservable. That same
//! algebraic condition is exactly what makes a fold *splittable*: for a
//! proper hom, folding contiguous shards of the input independently and
//! merging the partial accumulators in shard order computes the same value
//! as the sequential left fold. The compile-time side of this analysis lives
//! in [`FoldClass`](crate::bytecode::FoldClass) — the lowered-IR descendant
//! of `srl-analysis`'s `combiner_is_proper` — which codegen records on every
//! fused `Reduce` instruction; this module is the runtime side.
//!
//! ## Execution model
//!
//! A work-stealing-free, scoped-thread pool: when [`try_run`] accepts a
//! fold, the input `SetRepr`'s element sequence is partitioned into `k =
//! min(threads, n)` contiguous windows whose sizes differ by at most one;
//! each worker walks its window through [`SetRepr::iter_range`], so a
//! columnar (atoms/bits tier) input is decoded shard-locally and never
//! materialized whole. Shards `1..k` are spawned as [`std::thread::scope`]
//! workers (so they may borrow the chunk, the compiled program and the
//! input set — no `Arc` restructuring, no `unsafe`); shard `0` runs on the
//! calling thread while
//! the workers are in flight; joins happen in shard order. Each worker gets
//! its own [`EvalCore`]: a clone of the current frame (O(frame) `Arc`
//! bumps), zeroed statistics, and the *remaining* step/allocation budget at
//! fold entry. Workers execute the **same per-element helpers** as the
//! sequential loops (`vm::boolacc_element` and friends), so one element
//! charges one identical stat sequence on either path. Nested folds inside
//! a sharded lambda run sequentially (`VmCtx::sequential`) — shard workers
//! never spawn again, so the pool width bounds total thread count.
//!
//! ## The stats-determinism contract
//!
//! `EvalStats` are **byte-identical across thread counts** on every
//! successful evaluation — the thread axis extends the backend axis's
//! contract. This falls out of three properties:
//!
//! 1. every additive counter (`steps`, `reduce_iterations`, `inserts`,
//!    `new_values`, allocation totals) is a sum of identical per-element
//!    charges, and sums are partition-invariant — the merge absorbs worker
//!    statistics **in shard order**, re-basing the allocation high-water on
//!    the cumulative total so `max_value_weight` matches the sequential
//!    running count;
//! 2. the high-water marks (`max_depth`, nested folds'
//!    `max_accumulator_weight`) are maxima of per-element observations,
//!    also partition-invariant;
//! 3. the sharded fold's *own* accumulator-weight trajectory is monotone
//!    (set accumulators only grow; bool accumulators flip once), so its
//!    maximum is reconstructed exactly from the shard results: the merge
//!    walks the shard accumulators in order, adds the weights of the
//!    globally-novel elements (recomputed against the merged prefix, since
//!    in-shard novelty is relative) with the same saturating cap the
//!    sequential loop applies, and records the final weight.
//!
//! Limit errors stay faithful too: a worker runs against the budget that
//! remained at fold entry (so a shard that alone exhausts it fails with the
//! right error), and the ordered merge re-checks the cumulative totals
//! shard by shard (so a crossing that only the *sum* of shards produces is
//! still reported, with the step error taking precedence over the size
//! error within one shard's batch — the same precedence
//! [`EvalCore::bump_batch`] documents). On error paths the error kind
//! matches sequential execution while partial counters may differ, exactly
//! as on the backend axis.
//!
//! ## Panic isolation
//!
//! Each worker body runs inside `catch_unwind` (the per-element helpers are
//! the only code that executes there, so the unwind boundary is one
//! closure). A panicking shard is converted into
//! [`EvalError::Internal`] instead of poisoning the join, and the worker
//! flips the fold's shared [`CancelToken`](crate::cancel::CancelToken) so
//! sibling shards stop at their next poll (best-effort — they may also run
//! to completion). The merge reports the `Internal` error in preference to
//! the `Cancelled` errors it induced in siblings, so the root cause is
//! never masked by its own fallout. The process, the pool and the
//! evaluator all survive: the caller's stats roll back at the root frame
//! and the next query runs clean.
//!
//! ## What is sharded
//!
//! Only folds whose [`FoldClass`](crate::bytecode::FoldClass) is
//! `ProperHom` *and* whose fused kind has real per-element lambda work:
//! `InsertApp`, `Filter`, `BoolAcc`, `Monotone`. `Member` and `Union` are
//! proper homs too, but their data path is already one binary search / one
//! bulk merge — there is nothing left to fan out. Set-building folds are
//! sharded only when the base is a set (any other base is an error or
//! degenerate case the sequential path reproduces exactly). The handoff is
//! gated by [`PAR_WORK_THRESHOLD`]: input cardinality times the fold's
//! static [`unit_cost`](crate::bytecode::ReduceInsn::unit_cost) must make
//! the spawn worth it. Declining never changes results or statistics —
//! gating is pure strategy.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use crate::bytecode::{Chunk, FoldClass, ReduceInsn, ReduceKind, SetTier};
use crate::error::EvalError;
use crate::eval::{weight_capped, EvalCore, TierEngagements, ACCUMULATOR_WEIGHT_CAP, POLL_STRIDE};
use crate::faultpoint;
use crate::limits::{EvalLimits, EvalStats};
use crate::setrepr::SetRepr;
use crate::value::Value;
use crate::vm::{
    boolacc_element, cap_add, capped, filter_element, generic_element, insertapp_element,
    monotone_element, VmCtx,
};

/// Minimum estimated fold work (input cardinality × static per-element
/// cost, see [`crate::bytecode::ReduceInsn::unit_cost`]) before a fold is
/// handed to the worker pool. Below it, the scoped-thread spawn and merge
/// overhead would outweigh the per-shard work; above it, the shards
/// amortize the handoff. Gating is pure execution strategy — results and
/// statistics are identical either way.
pub const PAR_WORK_THRESHOLD: u64 = 4096;

/// What one shard hands back to the merge.
struct ShardRun {
    /// The worker's statistics (zero-based; absorbed in shard order).
    stats: EvalStats,
    /// The worker's total allocated leaves (zero-based; summed into the
    /// caller's running allocation count).
    allocated: usize,
    /// The worker's per-tier columnar engagement counts (diagnostic, see
    /// [`EvalCore::tier_engagements`]; summed in shard order).
    tier_engagements: TierEngagements,
    /// The shard's data outcome, or the error its earliest element raised.
    outcome: Result<ShardData, EvalError>,
}

/// The kind-specific payload of a completed shard.
enum ShardData {
    /// `BoolAcc`: index (within the shard) of the first accumulator flip —
    /// the first `or`-hit / `and`-miss — if any.
    Flip(Option<usize>),
    /// Set-building kinds: the shard-local accumulator, folded from the
    /// empty set over the shard's elements in order.
    Set(SetRepr),
}

/// Attempts sharded execution of a fused set fold. Returns `None` when the
/// fold should run sequentially (wrong class or kind, too little work, a
/// non-set base for a set-building kind, or a sequential context); the
/// caller falls through to the sequential arms with all operands untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    r: &ReduceInsn,
    d: usize,
    items: &Arc<SetRepr>,
    base_v: &Value,
    extra_v: &Value,
) -> Option<Result<Value, EvalError>> {
    let n = items.len();
    if ctx.threads <= 1 || r.is_list || r.class != FoldClass::ProperHom || n < 2 {
        return None;
    }
    if (n as u64).saturating_mul(r.unit_cost as u64) < PAR_WORK_THRESHOLD {
        return None;
    }
    let base_is_set = matches!(base_v, Value::Set(_));
    match &r.kind {
        // Already closed-form single-pass operations: nothing to fan out.
        ReduceKind::Member | ReduceKind::Union => None,
        ReduceKind::BoolAcc { .. } => {
            Some(run_sharded(core, ctx, chunk, r, d, items, base_v, extra_v))
        }
        // `Generic` reaches here only as `ProperHom` (the class gate above),
        // i.e. when the interprocedural summary proved a call-threaded
        // monotone spine — it then shards exactly like `Monotone`, with the
        // merge reconstructing the weight trajectory.
        ReduceKind::InsertApp { .. }
        | ReduceKind::Filter { .. }
        | ReduceKind::Monotone { .. }
        | ReduceKind::Generic { .. }
            if base_is_set =>
        {
            Some(run_sharded(core, ctx, chunk, r, d, items, base_v, extra_v))
        }
        _ => None,
    }
}

/// Contiguous shard windows over `n` elements: `k` ranges whose lengths
/// differ by at most one (the first `n % k` get the extra element).
fn shard_bounds(n: usize, k: usize) -> Vec<Range<usize>> {
    let base = n / k;
    let extra = n % k;
    let mut bounds = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        bounds.push(start..start + len);
        start += len;
    }
    bounds
}

/// The accepted path: spawn the shard workers, run shard 0 locally, then
/// merge in shard order.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    r: &ReduceInsn,
    d: usize,
    items: &Arc<SetRepr>,
    base_v: &Value,
    extra_v: &Value,
) -> Result<Value, EvalError> {
    let n = items.len();
    let k = ctx.threads.min(n);
    let bounds = shard_bounds(n, k);
    // Each worker frame is a clone of the caller's current frame: the lambda
    // blocks may read any enclosing lexical slot (always via `Copy` — takes
    // never reach below the fold's floor), and cloning is O(frame) Arc
    // bumps. Registers at and above the lambda parameters are written before
    // they are read, so the clone's stale temporaries are never observed.
    let frame: Vec<Value> = core.locals[core.frame_base..].to_vec();
    // Workers check against the budget that remains at fold entry; the
    // ordered merge below re-checks the cumulative totals.
    let worker_limits = EvalLimits {
        max_steps: core.limits.max_steps.saturating_sub(core.stats.steps),
        max_value_weight: core
            .limits
            .max_value_weight
            .saturating_sub(core.allocated_leaves),
        max_depth: core.limits.max_depth,
        max_nat_bits: core.limits.max_nat_bits,
        deadline: core.limits.deadline,
    };
    // Workers share the fold's stop flag and armed deadline: a cancel (or a
    // panic, below) in any shard reaches every sibling at its next poll.
    let cancel = core.cancel.clone();
    let deadline_at = core.deadline_at;
    // The columnar-tier toggle is thread-local; scoped workers start from
    // its default, so the caller's setting is captured here and re-applied
    // in every shard (a differential run with the tier disabled must stay
    // disabled inside the pool).
    let tier_on = crate::setrepr::atom_tier_enabled();
    let worker = |shard: usize, range: Range<usize>| -> ShardRun {
        // The unwind boundary: everything a shard executes — including the
        // injected `worker_panic` fault — is caught here, converted into a
        // structured `Internal` error, and the shared token is flipped so
        // sibling shards stop early (best-effort). The join below can then
        // never see a poisoned handle.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if faultpoint::armed(faultpoint::WORKER_PANIC) == Some(shard as u64) {
                panic!("fault injection: worker_panic@shard_{shard}");
            }
            crate::setrepr::set_atom_tier_enabled(tier_on);
            let mut wcore = EvalCore {
                limits: worker_limits,
                stats: EvalStats::default(),
                allocated_leaves: 0,
                locals: frame.clone(),
                frame_base: 0,
                spine_delta: 0,
                parallel_folds: 0,
                tier_engagements: TierEngagements::default(),
                cancel: cancel.clone(),
                deadline_at,
                next_poll: POLL_STRIDE,
                last_error_stats: None,
            };
            let wctx = ctx.sequential();
            let outcome = run_shard(
                &mut wcore,
                &wctx,
                chunk,
                r,
                d,
                items.iter_range(range),
                extra_v,
            );
            ShardRun {
                stats: wcore.stats,
                allocated: wcore.allocated_leaves,
                tier_engagements: wcore.tier_engagements,
                outcome,
            }
        }));
        caught.unwrap_or_else(|payload| {
            cancel.cancel();
            ShardRun {
                stats: EvalStats::default(),
                allocated: 0,
                tier_engagements: TierEngagements::default(),
                outcome: Err(EvalError::Internal {
                    detail: format!(
                        "shard {shard} worker panicked: {}",
                        panic_detail(payload.as_ref())
                    ),
                }),
            }
        })
    };
    let runs: Vec<ShardRun> = thread::scope(|scope| {
        let handles: Vec<_> = bounds[1..]
            .iter()
            .enumerate()
            .map(|(i, range)| {
                let range = range.clone();
                scope.spawn(move || worker(i + 1, range))
            })
            .collect();
        let mut runs = Vec::with_capacity(k);
        runs.push(worker(0, bounds[0].clone()));
        for handle in handles {
            runs.push(
                handle
                    .join()
                    .expect("unreachable: worker bodies are unwind-caught"),
            );
        }
        runs
    });
    core.parallel_folds += 1;
    // Post-fold frame hygiene, as in the sequential loops: the lambda
    // parameter slots must not pin the last element's payload.
    core.clear_lambda_slots(r.x_slot);
    merge(core, r, &bounds, runs, base_v)
}

/// The empty accumulator a shard starts from: the columnar atoms tier when
/// codegen proved the fold result is a `set(atom)`, the struct-of-arrays
/// row tier when it proved a fixed-arity atom-tuple set, the generic tier
/// otherwise. Stats-neutral (every empty set weighs zero), mirroring
/// `run_reduce`'s static pre-promotion of the sequential base.
fn shard_seed(r: &ReduceInsn) -> Value {
    match r.acc_tier {
        SetTier::Atom => Value::Set(Arc::new(SetRepr::new_atoms())),
        SetTier::Tuple { arity } => Value::Set(Arc::new(SetRepr::new_rows(arity as usize))),
        SetTier::Generic => Value::empty_set(),
    }
}

/// Folds one contiguous shard on a worker core, charging exactly what the
/// sequential loop charges for the same elements.
fn run_shard(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    r: &ReduceInsn,
    d: usize,
    shard: impl Iterator<Item = Value>,
    extra_v: &Value,
) -> Result<ShardData, EvalError> {
    let x = r.x_slot;
    // Lambda bodies run two levels below the reduce node, exactly as in
    // `run_reduce`: apply() at d+1, the body at d+2.
    let lb = d + 2;
    match &r.kind {
        ReduceKind::BoolAcc { app, is_or } => {
            let mut first_flip = None;
            for (i, elem) in shard.enumerate() {
                let hit = boolacc_element(core, ctx, chunk, *app, x, elem, extra_v, lb, d)?;
                let flips = if *is_or { hit } else { !hit };
                if flips && first_flip.is_none() {
                    first_flip = Some(i);
                }
            }
            Ok(ShardData::Flip(first_flip))
        }
        ReduceKind::InsertApp { app } => {
            let mut acc = shard_seed(r);
            for elem in shard {
                let applied = insertapp_element(core, ctx, chunk, *app, x, elem, extra_v, lb, d)?;
                let (grown, _, _) = core.insert_value(applied, acc)?;
                acc = grown;
            }
            Ok(ShardData::Set(into_set(acc)))
        }
        ReduceKind::Filter {
            app,
            keep_on_true,
            cond_index,
            value_index,
        } => {
            let mut acc = shard_seed(r);
            for elem in shard {
                let kept = filter_element(
                    core,
                    ctx,
                    chunk,
                    *app,
                    *keep_on_true,
                    *cond_index,
                    *value_index,
                    x,
                    elem,
                    extra_v,
                    lb,
                    d,
                )?;
                if let Some(v) = kept {
                    let (grown, _, _) = core.insert_value(v, acc)?;
                    acc = grown;
                }
            }
            Ok(ShardData::Set(into_set(acc)))
        }
        ReduceKind::Monotone { app, acc } => {
            let mut accumulator = shard_seed(r);
            for elem in shard {
                // The in-shard spine delta measures novelty against the
                // shard-local accumulator; the merge recomputes global
                // novelty, so it is discarded here.
                let (grown, _delta) = monotone_element(
                    core,
                    ctx,
                    chunk,
                    *app,
                    *acc,
                    x,
                    elem,
                    extra_v,
                    lb,
                    accumulator,
                )?;
                accumulator = grown;
            }
            Ok(ShardData::Set(into_set(accumulator)))
        }
        ReduceKind::Generic { app, acc } => {
            // Only summary-proved spine folds arrive here (see `try_run`):
            // the combiner never inspects its accumulator, so the shard can
            // fold from the empty set, and the sequential loop's
            // per-iteration weight walk (monotone for a spine) collapses to
            // the final weight the merge reconstructs from novel weights.
            let mut accumulator = shard_seed(r);
            for elem in shard {
                accumulator = generic_element(
                    core,
                    ctx,
                    chunk,
                    *app,
                    *acc,
                    x,
                    elem,
                    extra_v,
                    lb,
                    accumulator,
                )?;
            }
            Ok(ShardData::Set(into_set(accumulator)))
        }
        other => unreachable!("try_run only accepts shardable kinds, got {other:?}"),
    }
}

/// Unwraps a set accumulator. Shard accumulators start from the empty set
/// and only ever grow by inserts (or pass through a monotone spine), so
/// they stay sets by construction.
fn into_set(v: Value) -> SetRepr {
    match v {
        Value::Set(s) => Arc::try_unwrap(s).unwrap_or_else(|shared| (*shared).clone()),
        other => unreachable!("shard accumulator left the set domain: {other}"),
    }
}

/// Absorbs the shard runs into the caller's core in shard order, re-checking
/// the cumulative budgets, then reconstructs the fold's value and its
/// accumulator-weight observation.
fn merge(
    core: &mut EvalCore,
    r: &ReduceInsn,
    bounds: &[Range<usize>],
    runs: Vec<ShardRun>,
    base_v: &Value,
) -> Result<Value, EvalError> {
    if let Some(ms) = faultpoint::armed(faultpoint::MERGE_DELAY) {
        thread::sleep(std::time::Duration::from_millis(ms));
    }
    // A worker panic outranks every sibling error: the panicking shard
    // cancelled the others through the shared token, so an earlier shard
    // may well report `Cancelled` — the fallout must not mask the cause.
    if let Some(detail) = runs.iter().find_map(|run| match &run.outcome {
        Err(EvalError::Internal { detail }) => Some(detail.clone()),
        _ => None,
    }) {
        return Err(EvalError::Internal { detail });
    }
    let mut datas: Vec<ShardData> = Vec::with_capacity(runs.len());
    for run in runs {
        // Additive counters first, with the sequential loop's limit checks
        // re-applied against the cumulative totals (batch semantics: the
        // step error wins over the size error within one shard, mirroring
        // `bump_batch`'s documented precedence).
        core.stats.steps += run.stats.steps;
        if core.stats.steps > core.limits.max_steps {
            return Err(EvalError::StepLimitExceeded {
                limit: core.limits.max_steps,
            });
        }
        core.stats.max_depth = core.stats.max_depth.max(run.stats.max_depth);
        core.allocated_leaves = core.allocated_leaves.saturating_add(run.allocated);
        core.stats.max_value_weight = core.stats.max_value_weight.max(core.allocated_leaves);
        if core.allocated_leaves > core.limits.max_value_weight {
            return Err(EvalError::SizeLimitExceeded {
                limit: core.limits.max_value_weight,
            });
        }
        core.stats.reduce_iterations += run.stats.reduce_iterations;
        core.stats.inserts += run.stats.inserts;
        core.stats.new_values += run.stats.new_values;
        core.tier_engagements += run.tier_engagements;
        // Nested folds' accumulator observations are per-element maxima:
        // partition-invariant, absorbed directly.
        core.stats.max_accumulator_weight = core
            .stats
            .max_accumulator_weight
            .max(run.stats.max_accumulator_weight);
        // The earliest shard's error is the fold's error (its partial
        // charges were just absorbed; later shards ran but — like the
        // elements sequential execution never reached — leave no trace).
        datas.push(run.outcome?);
    }

    let w0 = weight_capped(base_v, ACCUMULATOR_WEIGHT_CAP);
    match &r.kind {
        ReduceKind::BoolAcc { is_or, .. } => {
            // The sequential trajectory notes w0 until the first flip and 1
            // from it on; its maximum is 1 only when the very first element
            // flips (weights are ≥ 1, so w0 dominates otherwise).
            let mut first_flip = None;
            for (data, range) in datas.iter().zip(bounds) {
                if let ShardData::Flip(Some(i)) = data {
                    first_flip = Some(range.start + i);
                    break;
                }
            }
            core.note_accumulator_weight(if first_flip == Some(0) { 1 } else { w0 });
            Ok(match (first_flip.is_some(), is_or) {
                (true, true) => Value::Bool(true),
                (true, false) => Value::Bool(false),
                (false, _) => base_v.clone(),
            })
        }
        _ => {
            // Set-building kinds: base ∪ shard₀ ∪ shard₁ ∪ … with the
            // leftmost copy kept on ties — shard order is element order, so
            // this is exactly the sequential first-wins rule. The weights of
            // globally-novel elements grow the running accumulator weight
            // under the same saturating cap the sequential loop applies
            // per element (saturation depends only on the running total).
            let base_set = match base_v {
                Value::Set(s) => s,
                other => unreachable!("set-building fold sharded over non-set base {other}"),
            };
            let mut merged: Option<SetRepr> = None;
            let mut acc_w = w0;
            for data in &datas {
                let shard_set = match data {
                    ShardData::Set(s) => s,
                    ShardData::Flip(_) => unreachable!("set fold produced a flip payload"),
                };
                let so_far = merged.as_ref().unwrap_or(base_set);
                acc_w = cap_add(acc_w, novel_weight(so_far, shard_set));
                merged = Some(so_far.merge_union(shard_set));
            }
            core.note_accumulator_weight(capped(acc_w));
            let merged = merged.expect("at least two shards were run");
            Ok(Value::Set(Arc::new(merged)))
        }
    }
}

/// Renders a panic payload for the `Internal` error detail (panics carry a
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Total weight of the elements of `incoming` that are **not** members of
/// `acc` — the weights the sequential loop's novel inserts would have
/// charged to the running accumulator weight. Delegates to the tier-aware
/// [`SetRepr::for_each_novelty`] sweep (two-pointer on generic storage,
/// word-parallel when both sides sit in the columnar tiers).
fn novel_weight(acc: &SetRepr, incoming: &SetRepr) -> usize {
    let mut sum = 0usize;
    acc.for_each_novelty(incoming, |w, novel| {
        if novel {
            sum = sum.saturating_add(w);
        }
    });
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_partition_contiguously() {
        for (n, k) in [(10, 4), (4, 4), (5, 2), (7, 3), (100, 7), (2, 2)] {
            let bounds = shard_bounds(n, k);
            assert_eq!(bounds.len(), k);
            assert_eq!(bounds[0].start, 0);
            assert_eq!(bounds[k - 1].end, n);
            for w in bounds.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous at {n}/{k}");
            }
            let (min, max) = bounds
                .iter()
                .map(|r| r.len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "balanced at {n}/{k}: {bounds:?}");
        }
    }

    #[test]
    fn novel_weight_counts_only_new_elements() {
        let acc: SetRepr = [Value::atom(1), Value::atom(3)].into_iter().collect();
        let incoming: SetRepr = [
            Value::atom(1),
            Value::atom(2),
            Value::tuple([Value::atom(4), Value::atom(5)]),
        ]
        .into_iter()
        .collect();
        // atom(2) weighs 1; the pair weighs 3 (tuple node + two atoms).
        assert_eq!(novel_weight(&acc, &incoming), 1 + 3);
        assert_eq!(novel_weight(&incoming, &incoming), 0);
        assert_eq!(novel_weight(&SetRepr::new(), &acc), 2);
    }
}
