//! Cooperative cancellation for in-flight evaluations.
//!
//! Every [`Evaluator`](crate::eval::Evaluator) carries a [`CancelToken`] — a
//! shared tri-state flag (`Running` / `Cancelled` / `DeadlineExpired`) that
//! the evaluation loops poll amortized at the step-accounting sites (every
//! [`POLL_STRIDE`](crate::eval) steps), so the hot loop stays free of atomic
//! traffic and syscalls. Cancellation is *cooperative*: setting the flag does
//! not interrupt anything; the next poll observes it and unwinds with a
//! structured [`EvalError::Cancelled`](crate::error::EvalError::Cancelled) or
//! [`EvalError::DeadlineExceeded`](crate::error::EvalError::DeadlineExceeded).
//!
//! The same token is cloned into every shard worker of a parallel fold, which
//! gives best-effort sibling cancellation for free: the first shard to hit a
//! deadline (or to panic — see `parallel`) flips the flag and the remaining
//! shards stop at their next poll.
//!
//! Tokens are *per-evaluation*: the evaluator resets its token to `Running`
//! when a new root evaluation starts, so a consumed cancellation never
//! poisons the next query on the same (reusable) evaluator.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const RUNNING: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// Why an evaluation is being asked to stop (or isn't).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelState {
    /// No stop requested.
    Running,
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline armed via
    /// [`EvalLimits::deadline`](crate::limits::EvalLimits::deadline) expired.
    DeadlineExpired,
}

/// A shared, cloneable stop flag for one evaluation.
///
/// Obtain one from [`Evaluator::cancel_token`](crate::eval::Evaluator::cancel_token)
/// and call [`cancel`](CancelToken::cancel) from any thread to abort the
/// in-flight query at its next cancellation point.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh token in the `Running` state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cooperative cancellation. Idempotent; loses to an already
    /// recorded deadline expiry (the earlier, more specific verdict wins).
    pub fn cancel(&self) {
        let _ =
            self.state
                .compare_exchange(RUNNING, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Records that the wall-clock deadline expired. Loses to an already
    /// recorded user cancellation.
    pub(crate) fn mark_deadline(&self) {
        let _ =
            self.state
                .compare_exchange(RUNNING, DEADLINE, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The current state.
    pub fn state(&self) -> CancelState {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => CancelState::Cancelled,
            DEADLINE => CancelState::DeadlineExpired,
            _ => CancelState::Running,
        }
    }

    /// Whether a stop has been requested (either kind).
    pub fn is_stopped(&self) -> bool {
        self.state.load(Ordering::Relaxed) != RUNNING
    }

    /// Rearms the token for the next evaluation.
    pub(crate) fn reset(&self) {
        self.state.store(RUNNING, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_resettable() {
        let t = CancelToken::new();
        assert_eq!(t.state(), CancelState::Running);
        assert!(!t.is_stopped());
        t.cancel();
        assert_eq!(t.state(), CancelState::Cancelled);
        assert!(t.is_stopped());
        // A later deadline does not overwrite the explicit cancel.
        t.mark_deadline();
        assert_eq!(t.state(), CancelState::Cancelled);
        t.reset();
        assert_eq!(t.state(), CancelState::Running);
    }

    #[test]
    fn deadline_wins_when_first() {
        let t = CancelToken::new();
        t.mark_deadline();
        t.cancel();
        assert_eq!(t.state(), CancelState::DeadlineExpired);
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_stopped());
    }
}
