//! E9 — Fact 2.4 / Proposition 3.3: relational operators in SRL on the
//! company workload, vs. native nested-loop evaluation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_bench::queries;
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::program::{Env, Program};
use workloads::tables::CompanyDatabase;

fn bench(c: &mut Criterion) {
    // Compiled once; the queries are lowered once per size (the selection
    // embeds a per-size constant) and only evaluation is measured.
    let program = Program::new(srl_core::Dialect::full());
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e9_relational");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [16usize, 32, 64] {
        let db = CompanyDatabase::generate(n, (n / 4).max(1), 4, 31 + n as u64);
        let env = Env::new()
            .bind("EMP", db.employees_value())
            .bind("DEPT", db.departments_value());
        let joined = queries::company_join();
        let selection = queries::employees_in_department(db.departments[0].id);
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        let joined_lowered = ev.lower(&joined, &env);
        let selection_lowered = ev.lower(&selection, &env);
        group.bench_with_input(BenchmarkId::new("srl_join", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.eval_lowered(&joined_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srl_select_project", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.eval_lowered(&selection_lowered, &env).unwrap()
            })
        });
        // Backend axis: the unsuffixed variants above run the default
        // backend (the bytecode VM); these pin the reference tree-walk.
        let mut tree =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::TreeWalk);
        group.bench_with_input(BenchmarkId::new("srl_join_tree", n), &n, |b, _| {
            b.iter(|| {
                tree.reset_stats();
                tree.eval_lowered(&joined_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("srl_select_project_tree", n),
            &n,
            |b, _| {
                b.iter(|| {
                    tree.reset_stats();
                    tree.eval_lowered(&selection_lowered, &env).unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("native_join", n), &n, |b, _| {
            b.iter(|| db.employee_manager_join())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
