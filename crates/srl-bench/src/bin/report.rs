//! Prints the experiment tables (E1–E9) recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p srl-bench --release --bin report [--json]
//! [--backend vm|tree] [--threads N]`
//!
//! Runs on the default backend (the sequential bytecode VM) unless
//! `--backend` pins one; `--threads N` runs the VM with an `N`-worker pool
//! for proper-hom folds. The semantic rows are invariant along both axes:
//! every engine configuration produces byte-identical `EvalStats`, so
//! `--backend tree` and `--threads 4` must each print exactly the same
//! report (CI diffs all three against `BENCH_1.json`).

use srl_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    // Both flags are resolved before either takes effect, so the
    // contradictory `--backend tree --threads N` is rejected (in either
    // flag order) instead of one flag silently overriding the other.
    let backend_word = args
        .iter()
        .position(|a| a == "--backend")
        .map(|i| args.get(i + 1).map(String::as_str));
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|w| w.parse::<usize>().ok()) {
            Some(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--threads expects a worker count ≥ 1");
                std::process::exit(2);
            }
        },
        None => None,
    };
    match (backend_word, threads) {
        (None, None) => {}
        (None | Some(Some("vm")), Some(n)) => {
            set_backend(srl_core::ExecBackend::vm_with_threads(n))
        }
        (Some(Some("vm")), None) => set_backend(srl_core::ExecBackend::vm()),
        (Some(Some("tree")) | Some(Some("tree-walk")), None) => {
            set_backend(srl_core::ExecBackend::TreeWalk)
        }
        (Some(Some("tree")) | Some(Some("tree-walk")), Some(_)) => {
            eprintln!("--threads requires the vm backend (the tree-walk has no worker pool)");
            std::process::exit(2);
        }
        (Some(other), _) => {
            eprintln!("unknown --backend {other:?} (expected vm|tree)");
            std::process::exit(2);
        }
    }
    let mut all = Vec::new();
    all.extend(experiment_e1(&[4, 6, 8]));
    all.extend(experiment_e2(&[2, 4, 8, 12]));
    all.extend(experiment_e3(&[8, 16, 32]));
    all.extend(experiment_e4(&[4, 6, 8]));
    all.extend(experiment_e5(&[6, 10, 14]));
    all.extend(experiment_e6(&[2, 4, 8]));
    all.extend(experiment_e7(&[4, 8, 16, 32]));
    all.extend(experiment_e8(&[4, 5, 6]));
    all.extend(experiment_e9(&[8, 16, 32]));
    if json {
        println!("{}", to_json(&all));
    } else {
        println!("{}", to_markdown(&all));
        let disagreements = all.iter().filter(|r| !r.agrees_with_baseline).count();
        println!(
            "\n{} rows, {} disagreement(s) with the native baselines.",
            all.len(),
            disagreements
        );
    }
}
