//! Hand-written lexer for the SRL surface syntax.
//!
//! Produces the full token stream up front (source programs are small —
//! the largest paper program is a few kilobytes), with every token carrying
//! its byte [`Span`]. `//` starts a line comment; whitespace is free-form.
//!
//! Identifier syntax: a letter or `_`, followed by letters, digits, `_` or
//! `-` — the hyphen makes `set-reduce` / `list-reduce` single words, exactly
//! as the printer spells them. Two identifier shapes are reclassified into
//! constants, matching how the printer renders atom values:
//!
//! * `d<digits>` is an unnamed atom constant (`d7` = the atom of rank 7);
//! * `<word>#<digits>` is a named atom constant (`alice#5`).
//!
//! Consequently `d7`-shaped words are not available as variable names; no
//! program in the repository uses one.

use crate::parser::{ParseError, ParseErrorKind};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` into a token vector terminated by a [`TokenKind::Eof`]
/// token (whose span is a point at the end of input).
pub fn lex(source: &str) -> Result<Vec<Token<'_>>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        // Whitespace.
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Line comments.
        if b == b'/' && bytes.get(pos + 1) == Some(&b'/') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        let kind = match b {
            b'(' => one(&mut pos, TokenKind::LParen),
            b')' => one(&mut pos, TokenKind::RParen),
            b'[' => one(&mut pos, TokenKind::LBracket),
            b']' => one(&mut pos, TokenKind::RBracket),
            b'{' => one(&mut pos, TokenKind::LBrace),
            b'}' => one(&mut pos, TokenKind::RBrace),
            b',' => one(&mut pos, TokenKind::Comma),
            b'.' => one(&mut pos, TokenKind::Dot),
            b'=' => one(&mut pos, TokenKind::Eq),
            b'+' => one(&mut pos, TokenKind::Plus),
            b'*' => one(&mut pos, TokenKind::Star),
            b'>' => one(&mut pos, TokenKind::Gt),
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    TokenKind::Leq
                } else {
                    one(&mut pos, TokenKind::Lt)
                }
            }
            b'0'..=b'9' => {
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                TokenKind::Number(&source[start..pos])
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                pos += 1;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let word = &source[start..pos];
                // `name#digits` — a named atom constant.
                if bytes.get(pos) == Some(&b'#') {
                    let digits_start = pos + 1;
                    let mut p = digits_start;
                    while p < bytes.len() && bytes[p].is_ascii_digit() {
                        p += 1;
                    }
                    if p == digits_start {
                        return Err(ParseError {
                            kind: ParseErrorKind::UnexpectedChar { found: '#' },
                            span: Span::new(pos, pos + 1),
                        });
                    }
                    let rank = parse_rank(&source[digits_start..p], Span::new(digits_start, p))?;
                    pos = p;
                    TokenKind::NamedAtom(word, rank)
                } else if let Some(rank) = atom_rank(word) {
                    TokenKind::Atom(parse_rank(rank, Span::new(start + 1, pos))?)
                } else {
                    TokenKind::Ident(word)
                }
            }
            other => {
                let ch = source[pos..].chars().next().unwrap_or(other as char);
                return Err(ParseError {
                    kind: ParseErrorKind::UnexpectedChar { found: ch },
                    span: Span::new(pos, pos + ch.len_utf8()),
                });
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, pos),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(source.len()),
    });
    Ok(tokens)
}

fn one<'s>(pos: &mut usize, kind: TokenKind<'s>) -> TokenKind<'s> {
    *pos += 1;
    kind
}

/// `d<digits>` → the digit text; anything else → `None`.
fn atom_rank(word: &str) -> Option<&str> {
    let digits = word.strip_prefix('d')?;
    (!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())).then_some(digits)
}

fn parse_rank(digits: &str, span: Span) -> Result<u64, ParseError> {
    digits.parse().map_err(|_| ParseError {
        kind: ParseErrorKind::NumberOutOfRange,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind<'_>> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_atoms_and_numbers() {
        assert_eq!(
            kinds("apath d7 alice#5 42 set-reduce __c_x"),
            vec![
                TokenKind::Ident("apath"),
                TokenKind::Atom(7),
                TokenKind::NamedAtom("alice", 5),
                TokenKind::Number("42"),
                TokenKind::Ident("set-reduce"),
                TokenKind::Ident("__c_x"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) [ ] { } < > <= = + * , ."),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Leq,
                TokenKind::Eq,
                TokenKind::Plus,
                TokenKind::Star,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        assert_eq!(
            kinds("x // trailing comment\n// full line\n  y"),
            vec![TokenKind::Ident("x"), TokenKind::Ident("y"), TokenKind::Eof]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab d12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 6));
        assert_eq!(toks[2].span, Span::point(6));
    }

    #[test]
    fn d_alone_and_d_mixed_stay_identifiers() {
        assert_eq!(kinds("d"), vec![TokenKind::Ident("d"), TokenKind::Eof]);
        assert_eq!(kinds("d2x"), vec![TokenKind::Ident("d2x"), TokenKind::Eof]);
    }

    #[test]
    fn bad_character_is_reported_with_span() {
        let err = lex("x $ y").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedChar { found: '$' }
        ));
        assert_eq!(err.span, Span::new(2, 3));
    }

    #[test]
    fn lone_hash_is_rejected() {
        let err = lex("x# y").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedChar { found: '#' }
        ));
    }
}
