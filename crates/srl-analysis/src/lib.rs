//! # srl-analysis — reading complexity and order-dependence off SRL syntax
//!
//! Two analyses from the paper:
//!
//! * [`syntactic`] — Section 6: the width/depth/set-height measures, the
//!   fragment classifier (BASRL ⊆ L, SRL ⊆ P, unrestricted SRL, SRL+new/LRL ⊆
//!   PrimRec), and the Proposition 6.1 time bound `O(n^{a·d}·T_ins)`.
//! * [`order`] — Section 7 / Conclusions: a conservative order-independence
//!   checker standing in for the Boyer–Moore-based prover the authors used —
//!   syntactic proper-hom recognition, randomised algebraic testing of
//!   combiners, and whole-query permutation testing that produces concrete
//!   order-dependence witnesses.
//!
//! Plus one analysis over the *compiled* artifact:
//!
//! * [`interproc`] — the report layer for the compiler's interprocedural
//!   fold classification (`srl_core::analysis`): per-definition spine
//!   summaries and one verdict row per reduce instruction, with the reason
//!   (fused shape, call-threaded spine, or named obstacle) rendered for
//!   `srl analyze` and the REPL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interproc;
pub mod order;
pub mod report;
pub mod syntactic;

pub use interproc::{analyze_compiled, analyze_expression, FoldRow, InterprocReport, SpineRow};
pub use order::{
    analyze_order_dependence, combiner_seems_commutative_associative, permutation_test,
    provably_order_independent, OrderVerdict,
};
pub use report::{analyze_json, analyze_json_with, analyze_table};
pub use syntactic::{
    analyze_expr, analyze_program, classify, classify_program, Classification, Fragment, Measures,
};
