//! Rendering of *compiled* programs: the slot-indexed IR of
//! [`srl_core::lower`], printed with names resolved through the program's
//! [`SymbolTable`](srl_core::SymbolTable).
//!
//! The surface printer ([`crate::printer`]) shows what the paper's notation
//! looks like; this one shows what the evaluator actually runs — variables as
//! `@slot` frame indices, calls as `name#defindex` — which is the form to
//! read when debugging lowering or auditing what an optimisation changed.

use srl_core::lower::{CompiledDef, CompiledProgram, LExpr, LId, LLambda, LoweredExpr};

/// Renders a whole compiled program, one definition per line block.
pub fn print_compiled_program(program: &CompiledProgram) -> String {
    let mut out = String::new();
    for index in 0..program.defs().len() as u32 {
        out.push_str(&print_compiled_def(program, index));
        out.push('\n');
    }
    out
}

/// Renders the definition at `def_index` with its parameter slots. The index
/// is the definition's own position (duplicate names are legal — only the
/// first is callable, but all compile), so the header always identifies the
/// body actually shown.
pub fn print_compiled_def(program: &CompiledProgram, def_index: u32) -> String {
    let def: &CompiledDef = &program.defs()[def_index as usize];
    let params: Vec<String> = def
        .params
        .iter()
        .enumerate()
        .map(|(slot, sym)| format!("{}@{slot}", program.symbols().resolve(*sym)))
        .collect();
    let mut body = String::new();
    write_expr(program, def.body, &mut body);
    format!(
        "{}#{def_index}({}) =\n  {}\n",
        program.def_name(def),
        params.join(", "),
        body
    )
}

/// Renders a lowered expression of the program's arena.
pub fn print_compiled_expr(program: &CompiledProgram, root: LId) -> String {
    let mut out = String::new();
    write_expr(program, root, &mut out);
    out
}

/// Renders a stand-alone [`LoweredExpr`] (which carries its own node arena;
/// see [`CompiledProgram::lower_expr`]), resolving call targets against
/// `program`.
pub fn print_lowered_expr(program: &CompiledProgram, lowered: &LoweredExpr) -> String {
    let mut out = String::new();
    write_in(program, lowered.nodes(), lowered.root(), &mut out);
    out
}

fn write_lambda(program: &CompiledProgram, nodes: &[LExpr], lambda: &LLambda, out: &mut String) {
    out.push_str("lambda(@x, @y) ");
    write_in(program, nodes, lambda.body, out);
}

fn write_expr(program: &CompiledProgram, id: LId, out: &mut String) {
    write_in(program, program.nodes(), id, out);
}

fn write_in(program: &CompiledProgram, nodes: &[LExpr], id: LId, out: &mut String) {
    match &nodes[id.index()] {
        LExpr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        LExpr::Const(v) => out.push_str(&v.to_string()),
        LExpr::Local(slot) => out.push_str(&format!("@{slot}")),
        LExpr::UnboundVar(name) => out.push_str(&format!("?{name}")),
        LExpr::If(c, t, e) => {
            out.push_str("if ");
            write_in(program, nodes, *c, out);
            out.push_str(" then ");
            write_in(program, nodes, *t, out);
            out.push_str(" else ");
            write_in(program, nodes, *e, out);
        }
        LExpr::Tuple(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_in(program, nodes, *item, out);
            }
            out.push(']');
        }
        LExpr::Sel(i, e) => {
            write_in(program, nodes, *e, out);
            out.push_str(&format!(".{i}"));
        }
        LExpr::Eq(a, b) => binary(program, nodes, out, *a, " = ", *b),
        LExpr::Leq(a, b) => binary(program, nodes, out, *a, " <= ", *b),
        LExpr::EmptySet => out.push_str("emptyset"),
        LExpr::Insert(e, s) => fun(program, nodes, out, "insert", &[*e, *s]),
        LExpr::Choose(s) => fun(program, nodes, out, "choose", &[*s]),
        LExpr::Rest(s) => fun(program, nodes, out, "rest", &[*s]),
        LExpr::SetReduce {
            set,
            app,
            acc,
            base,
            extra,
        } => {
            out.push_str("set-reduce(");
            write_in(program, nodes, *set, out);
            out.push_str(", ");
            write_lambda(program, nodes, app, out);
            out.push_str(", ");
            write_lambda(program, nodes, acc, out);
            out.push_str(", ");
            write_in(program, nodes, *base, out);
            out.push_str(", ");
            write_in(program, nodes, *extra, out);
            out.push(')');
        }
        LExpr::ListReduce {
            list,
            app,
            acc,
            base,
            extra,
        } => {
            out.push_str("list-reduce(");
            write_in(program, nodes, *list, out);
            out.push_str(", ");
            write_lambda(program, nodes, app, out);
            out.push_str(", ");
            write_lambda(program, nodes, acc, out);
            out.push_str(", ");
            write_in(program, nodes, *base, out);
            out.push_str(", ");
            write_in(program, nodes, *extra, out);
            out.push(')');
        }
        LExpr::Call { def, args } => {
            let name = program
                .defs()
                .get(*def as usize)
                .map(|d| program.def_name(d))
                .unwrap_or("<bad def>");
            out.push_str(&format!("{name}#{def}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_in(program, nodes, *a, out);
            }
            out.push(')');
        }
        LExpr::CallUnknown(name) => out.push_str(&format!("?{name}(…)")),
        LExpr::Let { value, body } => {
            out.push_str("let @+ = ");
            write_in(program, nodes, *value, out);
            out.push_str(" in ");
            write_in(program, nodes, *body, out);
        }
        LExpr::New(s) => fun(program, nodes, out, "new", &[*s]),
        LExpr::NatConst(n) => out.push_str(&n.to_string()),
        LExpr::Succ(e) => fun(program, nodes, out, "succ", &[*e]),
        LExpr::NatAdd(a, b) => binary(program, nodes, out, *a, " + ", *b),
        LExpr::NatMul(a, b) => binary(program, nodes, out, *a, " * ", *b),
        LExpr::EmptyList => out.push_str("emptylist"),
        LExpr::Cons(e, l) => fun(program, nodes, out, "cons", &[*e, *l]),
        LExpr::Head(l) => fun(program, nodes, out, "head", &[*l]),
        LExpr::Tail(l) => fun(program, nodes, out, "tail", &[*l]),
    }
}

fn binary(program: &CompiledProgram, nodes: &[LExpr], out: &mut String, a: LId, op: &str, b: LId) {
    out.push('(');
    write_in(program, nodes, a, out);
    out.push_str(op);
    write_in(program, nodes, b, out);
    out.push(')');
}

fn fun(program: &CompiledProgram, nodes: &[LExpr], out: &mut String, name: &str, args: &[LId]) {
    out.push_str(name);
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_in(program, nodes, *a, out);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dsl::*;
    use srl_core::program::Program;

    #[test]
    fn slots_and_def_indices_are_visible() {
        let p = Program::srl()
            .define("fst", ["t"], sel(var("t"), 1))
            .define("use", ["t"], call("fst", [var("t")]));
        let c = p.compile();
        let text = print_compiled_program(&c);
        assert!(text.contains("fst#0(t@0) ="), "{text}");
        assert!(text.contains("@0.1"), "{text}");
        assert!(text.contains("fst#0(@0)"), "{text}");
    }

    #[test]
    fn lambdas_and_reduces_render() {
        let p = Program::srl().define(
            "rebuild",
            ["S"],
            set_reduce(
                var("S"),
                lam("x", "e", var("x")),
                lam("v", "acc", insert(var("v"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        );
        let c = p.compile();
        let text = print_compiled_program(&c);
        assert!(text.contains("set-reduce(@0"), "{text}");
        // x is slot 1 in frame [S, x, e]; v/acc are slots 1/2.
        assert!(text.contains("lambda(@x, @y) @1"), "{text}");
        assert!(text.contains("insert(@1, @2)"), "{text}");
    }

    #[test]
    fn poison_nodes_render_with_their_spelling() {
        let p = Program::srl();
        let c = p.compile();
        let l = c.lower_expr(&call("nope", [var("x")]), &[]);
        assert_eq!(print_lowered_expr(&c, &l), "?nope(…)");
        let l = c.lower_expr(&insert(var("x"), empty_set()), &["x"]);
        assert_eq!(print_lowered_expr(&c, &l), "insert(@0, emptyset)");
    }
}
