//! `srl` — the SRL command line.
//!
//! Drives the staged compile pipeline end to end from text: parse (with
//! caret diagnostics), check, compile, and run on either execution backend.
//!
//! ```text
//! srl run <file.srl> [--call NAME] [--arg VALUE]... [--backend vm|tree]
//!                    [--threads N] [--limits default|small|benchmark] [--json]
//! srl check <file.srl> [--json]
//! srl analyze <file.srl> [--json]
//! srl print <file.srl>
//! srl disasm <file.srl>
//! srl repl
//! ```
//!
//! `run` calls `--call NAME` (or a zero-parameter `main` definition) with
//! `--arg` values written in value-literal syntax (`d3`, `42`, `{d0, d1}`,
//! `[d1, d2]`, `<d1, d2>`); `--json` emits the result and the `EvalStats`
//! in a stable field order, which is byte-identical across backends *and*
//! across `--threads` settings — CI diffs backend pairs and thread pairs.
//! `--threads N` shards provably order-insensitive `set-reduce` folds
//! across an `N`-worker pool (VM backend only; see `srl-core::parallel`).
//! The REPL accepts definitions (`f(x) = …`), input bindings
//! (`S := {d1, d2}`), and expressions over both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

use srl_core::pipeline::{Pipeline, Source};
use srl_core::{EvalError, EvalLimits, EvalStats, ExecBackend, TierEngagements, Value};
use srl_syntax::frontend::{FrontendError, TextFrontend};

mod repl;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    match command {
        "run" => run(rest),
        "check" => check(rest),
        "analyze" => analyze(rest),
        "print" => print_cmd(rest),
        "disasm" => disasm(rest),
        "repl" => repl::repl(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
srl — the set-reduce language of Immerman, Patnaik and Stemple (PODS 1991)

USAGE:
  srl run <file.srl> [--call NAME] [--arg VALUE]... [--backend vm|tree]
                     [--threads N] [--limits default|small|benchmark]
                     [--timeout-ms N] [--json]
  srl check <file.srl> [--json]   parse, validate, and classify a program
  srl analyze <file.srl> [--json] per-fold classification report: spine
                                  summaries, fold class, and the reason
  srl print <file.srl>            parse and re-print in canonical form
  srl disasm <file.srl>           show the VM bytecode of every definition
  srl repl                        interactive session

`analyze` compiles the program and reports, for every set/list fold, the
strategy the VM will use (member, union, filter, generic, ...), whether
its combiner was proved a proper homomorphism (order-independent, so
`run --threads N` may shard it), and why — including interprocedural
proofs that thread the accumulator through a callee's spine parameter.

`run` calls the definition named by --call (default: a zero-parameter
`main`), passing each --arg parsed as a value literal: d3, 42, true,
[d1, d2] (tuple), {d0, d1} (set), <d1, d2> (list). With --json the result
and EvalStats print as JSON (byte-identical across backends and across
--threads settings). --threads N shards proper-hom set-reduce folds over
an N-worker pool (vm backend only). --timeout-ms N arms a wall-clock
deadline; an overrunning query aborts with exit code 7 and, with --json,
a structured error object carrying the partial stats.

EXIT CODES:
  0  success                       5  runtime evaluation error
  2  usage or I/O error            6  resource limit exceeded
  3  parse error                   7  timeout or cancellation
  4  check (validation) error      8  internal error
";

// The documented exit-code contract (see EXIT CODES in `USAGE`): scripts
// and the serving layer branch on these, so the mapping is pinned by
// `tests/cli_smoke.rs` and must not drift.
const EXIT_PARSE: u8 = 3;
const EXIT_CHECK: u8 = 4;
const EXIT_RUNTIME: u8 = 5;
const EXIT_LIMIT: u8 = 6;
const EXIT_TIMEOUT: u8 = 7;
const EXIT_INTERNAL: u8 = 8;

/// Exit code for an evaluation error, per the documented contract.
fn eval_exit_code(e: &EvalError) -> u8 {
    match e {
        EvalError::Cancelled | EvalError::DeadlineExceeded { .. } => EXIT_TIMEOUT,
        EvalError::Internal { .. } => EXIT_INTERNAL,
        e if e.is_limit() => EXIT_LIMIT,
        _ => EXIT_RUNTIME,
    }
}

/// Exit code and stable kind string for a frontend (parse/check) error.
fn frontend_exit(e: &FrontendError) -> (u8, &'static str) {
    match e {
        FrontendError::Parse(_) => (EXIT_PARSE, "parse"),
        FrontendError::Check(_) => (EXIT_CHECK, "check"),
    }
}

/// A `--json` error object with stable field order
/// (`kind`, `message`, `exit`, then optionally the partial `stats`).
fn error_json(kind: &str, message: &str, exit: u8, partial: Option<&EvalStats>) -> String {
    let stats = match partial {
        Some(stats) => format!(",\n  \"stats\": {}", stats_json(stats)),
        None => String::new(),
    };
    format!(
        "{{\n  \"error\": {{ \"kind\": \"{}\", \"message\": \"{}\", \"exit\": {exit} }}{stats}\n}}",
        escape_json(kind),
        escape_json(message)
    )
}

/// Parsed common options of the file-taking subcommands.
#[derive(Debug)]
struct Options {
    file: String,
    call: Option<String>,
    args: Vec<String>,
    backend: ExecBackend,
    limits: EvalLimits,
    json: bool,
}

/// Parses a `--timeout-ms` operand (a positive millisecond count).
fn parse_timeout_ms(word: &str) -> Result<u64, String> {
    let ms: u64 = word
        .parse()
        .map_err(|_| format!("--timeout-ms expects a millisecond count, got `{word}`"))?;
    if ms == 0 {
        return Err("--timeout-ms must be at least 1".to_string());
    }
    Ok(ms)
}

/// Flags each subcommand accepts; anything else is a usage error (so e.g.
/// `srl check file.srl --json` fails loudly instead of silently ignoring
/// the flag).
fn allowed_flags(command: &str) -> &'static [&'static str] {
    match command {
        "run" => &[
            "--call",
            "--arg",
            "--backend",
            "--threads",
            "--limits",
            "--timeout-ms",
            "--json",
        ],
        "check" | "analyze" => &["--json"],
        _ => &[],
    }
}

fn parse_options(rest: &[String], command: &str) -> Result<Options, String> {
    let allowed = allowed_flags(command);
    let mut file = None;
    let mut call = None;
    let mut args = Vec::new();
    let mut backend = ExecBackend::default();
    let mut threads: Option<usize> = None;
    let mut limits = EvalLimits::default();
    let mut timeout_ms: Option<u64> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with('-') && !allowed.contains(&arg.as_str()) {
            return Err(format!("`srl {command}` does not take `{arg}`"));
        }
        match arg.as_str() {
            "--call" => {
                call = Some(
                    it.next()
                        .ok_or("--call needs a definition name")?
                        .to_string(),
                )
            }
            "--arg" => args.push(it.next().ok_or("--arg needs a value literal")?.to_string()),
            "--backend" => {
                backend = match it.next().map(String::as_str) {
                    Some("vm") => ExecBackend::vm(),
                    Some("tree") | Some("tree-walk") => ExecBackend::TreeWalk,
                    other => return Err(format!("unknown --backend {other:?} (expected vm|tree)")),
                }
            }
            "--threads" => {
                let word = it.next().ok_or("--threads needs a worker count")?;
                let n: usize = word
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got `{word}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--limits" => {
                limits = match it.next().map(String::as_str) {
                    Some("default") => EvalLimits::default(),
                    Some("small") => EvalLimits::small(),
                    Some("benchmark") => EvalLimits::benchmark(),
                    other => {
                        return Err(format!(
                            "unknown --limits {other:?} (expected default|small|benchmark)"
                        ))
                    }
                }
            }
            "--timeout-ms" => {
                let word = it.next().ok_or("--timeout-ms needs a millisecond count")?;
                timeout_ms = Some(parse_timeout_ms(word)?);
            }
            "--json" => json = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}` to `srl {command}`")),
        }
    }
    let backend = match (threads, backend) {
        (None, backend) => backend,
        (Some(n), ExecBackend::Vm { .. }) => ExecBackend::vm_with_threads(n),
        (Some(_), ExecBackend::TreeWalk) => {
            return Err(
                "--threads requires the vm backend (the tree-walk has no worker pool)".to_string(),
            )
        }
    };
    if let Some(ms) = timeout_ms {
        limits = limits.with_deadline_ms(ms);
    }
    Ok(Options {
        file: file.ok_or_else(|| format!("`srl {command}` needs a .srl file"))?,
        call,
        args,
        backend,
        limits,
        json,
    })
}

fn load_source(path: &str) -> Result<Source, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(Source::new(path, text))
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn run(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "run") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let pipeline = Pipeline::new()
        .with_limits(opts.limits)
        .with_backend(opts.backend);
    let artifact = match pipeline.compile_source(&source) {
        Ok(a) => a,
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", error_json(kind, &e.to_string(), exit, None));
            }
            eprintln!("{}", e.render(&source));
            return ExitCode::from(exit);
        }
    };
    let entry = match &opts.call {
        Some(name) => name.clone(),
        None => {
            let main_def = artifact
                .program()
                .lookup("main")
                .filter(|def| def.params.is_empty());
            match main_def {
                Some(def) => def.name.clone(),
                None => {
                    return usage_error(
                        "no --call given and the program has no zero-parameter `main`",
                    )
                }
            }
        }
    };
    let mut values = Vec::new();
    for (i, literal) in opts.args.iter().enumerate() {
        match srl_syntax::parse_value(literal) {
            Ok(v) => values.push(v),
            Err(e) => {
                eprintln!(
                    "error in --arg {}: {}",
                    i + 1,
                    e.to_diagnostic("<arg>", literal)
                );
                return ExitCode::from(EXIT_PARSE);
            }
        }
    }
    // Run through an explicit evaluator (not `Compiled::call`) so the
    // partial statistics of a failed run stay observable for --json.
    let mut evaluator = artifact.evaluator();
    match evaluator.call(&entry, &values) {
        Ok(value) => {
            let stats = *evaluator.stats();
            let tiers = evaluator.tier_engagement_breakdown();
            if opts.json {
                println!("{}", result_json(&value, &stats, &tiers));
            } else {
                println!("{value}");
                eprintln!("{}", stats_table(&stats));
                eprintln!("{}", tiers_table(&tiers));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let exit = eval_exit_code(&e);
            if opts.json {
                println!(
                    "{}",
                    error_json(e.kind(), &e.to_string(), exit, evaluator.last_error_stats())
                );
            }
            eprintln!("evaluation error: {e}");
            ExitCode::from(exit)
        }
    }
}

fn check(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "check") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match Pipeline::new().check_source(&source) {
        Ok(checked) => {
            let program = checked.program();
            let verdict = srl_analysis::classify_program(program, 1);
            if opts.json {
                let names: Vec<String> = program
                    .def_names()
                    .iter()
                    .map(|n| format!("\"{}\"", escape_json(n)))
                    .collect();
                println!(
                    "{{\n  \"ok\": true,\n  \"definitions\": [{}],\n  \"fragment\": \"{}\",\n  \"explanation\": \"{}\"\n}}",
                    names.join(", "),
                    escape_json(&verdict.fragment.to_string()),
                    escape_json(&verdict.explanation),
                );
            } else {
                println!(
                    "ok: {} definition(s): {}",
                    program.defs.len(),
                    program.def_names().join(", ")
                );
                println!("fragment: {}", verdict.fragment);
                println!("  {}", verdict.explanation);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", error_json(kind, &e.to_string(), exit, None));
            }
            eprintln!("{}", e.render(&source));
            ExitCode::from(exit)
        }
    }
}

fn analyze(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "analyze") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match Pipeline::new().compile_source(&source) {
        Ok(artifact) => {
            let verdict = srl_analysis::classify_program(artifact.program(), 1);
            let report = srl_analysis::analyze_compiled(artifact.compiled());
            if opts.json {
                println!("{}", analyze_json(&verdict, &report));
            } else {
                print!("{}", analyze_table(&verdict, &report));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", error_json(kind, &e.to_string(), exit, None));
            }
            eprintln!("{}", e.render(&source));
            ExitCode::from(exit)
        }
    }
}

/// The `srl analyze` report as text: the Section 6 fragment, one line per
/// definition with its spine-summary parameter, and one entry per reduce
/// instruction with the class the executor acts on and the reason.
fn analyze_table(
    verdict: &srl_analysis::Classification,
    report: &srl_analysis::InterprocReport,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fragment: {}\n  {}\n",
        verdict.fragment, verdict.explanation
    ));
    out.push_str("spine summaries:\n");
    for s in &report.spines {
        match &s.spine_param {
            Some(p) => out.push_str(&format!("  {}: spine parameter `{p}`\n", s.def)),
            None => out.push_str(&format!("  {}: no spine parameter\n", s.def)),
        }
    }
    if report.folds.is_empty() {
        out.push_str("folds: none\n");
        return out;
    }
    out.push_str("folds:\n");
    for f in &report.folds {
        let place = match &f.def {
            Some(d) => format!("{d} b{}", f.block),
            None => format!("b{}", f.block),
        };
        out.push_str(&format!(
            "  [{place}] {}{} class={} tier={}/{} cost={} order-independent={}\n      {}\n",
            if f.is_list { "list-" } else { "" },
            f.kind,
            f.class.label(),
            f.tier,
            f.acc_tier,
            f.unit_cost,
            if f.order_independent() { "yes" } else { "no" },
            f.reason,
        ));
    }
    out
}

/// The `srl analyze` report as JSON with a stable field order, so CI can
/// golden-diff it across commits.
fn analyze_json(
    verdict: &srl_analysis::Classification,
    report: &srl_analysis::InterprocReport,
) -> String {
    let defs: Vec<String> = report
        .spines
        .iter()
        .map(|s| {
            format!(
                "    {{ \"def\": \"{}\", \"spine_param\": {} }}",
                escape_json(&s.def),
                match &s.spine_param {
                    Some(p) => format!("\"{}\"", escape_json(p)),
                    None => "null".to_string(),
                },
            )
        })
        .collect();
    let folds: Vec<String> = report
        .folds
        .iter()
        .map(|f| {
            format!(
                "    {{ \"def\": {}, \"block\": {}, \"kind\": \"{}{}\", \"class\": \"{}\", \"tier\": \"{}\", \"acc_tier\": \"{}\", \"order_independent\": {}, \"unit_cost\": {}, \"reason\": \"{}\" }}",
                match &f.def {
                    Some(d) => format!("\"{}\"", escape_json(d)),
                    None => "null".to_string(),
                },
                f.block,
                if f.is_list { "list-" } else { "" },
                f.kind,
                f.class.label(),
                f.tier,
                f.acc_tier,
                f.order_independent(),
                f.unit_cost,
                escape_json(&f.reason),
            )
        })
        .collect();
    let wrap = |items: Vec<String>| {
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", items.join(",\n"))
        }
    };
    format!(
        "{{\n  \"fragment\": \"{}\",\n  \"definitions\": {},\n  \"folds\": {}\n}}",
        escape_json(&verdict.fragment.to_string()),
        wrap(defs),
        wrap(folds),
    )
}

fn print_cmd(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "print") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match srl_syntax::parse_program(&source.text) {
        Ok(program) => {
            print!("{}", srl_syntax::print_program(&program));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.to_diagnostic(&source.name, &source.text));
            ExitCode::from(EXIT_PARSE)
        }
    }
}

fn disasm(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "disasm") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match Pipeline::new().compile_source(&source) {
        Ok(artifact) => {
            print!("{}", srl_syntax::disasm_program(artifact.compiled()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.render(&source));
            ExitCode::from(frontend_exit(&e).0)
        }
    }
}

/// The result, statistics, and columnar-tier engagement diagnostics as
/// JSON, fields in a fixed order so the output is diffable across backends
/// and thread counts (the stats contract makes the stats identical; the
/// engagement counts are deterministic per program, so they diff clean
/// too).
fn result_json(value: &Value, stats: &EvalStats, tiers: &TierEngagements) -> String {
    format!(
        "{{\n  \"result\": \"{}\",\n  \"stats\": {},\n  \"tiers\": {}\n}}",
        escape_json(&value.to_string()),
        stats_json(stats),
        tiers_json(tiers)
    )
}

/// The per-tier engagement breakdown (see
/// `Evaluator::tier_engagement_breakdown`): stats-adjacent diagnostics, not
/// part of `EvalStats` — they report the storage strategy, which folds ran
/// on which columnar tier.
fn tiers_json(tiers: &TierEngagements) -> String {
    format!(
        "{{ \"atoms\": {}, \"bits\": {}, \"rows\": {} }}",
        tiers.atoms, tiers.bits, tiers.rows
    )
}

fn tiers_table(tiers: &TierEngagements) -> String {
    format!(
        "tier engagements: atoms {}  bits {}  rows {}",
        tiers.atoms, tiers.bits, tiers.rows
    )
}

fn stats_json(stats: &EvalStats) -> String {
    format!(
        "{{ \"steps\": {}, \"reduce_iterations\": {}, \"inserts\": {}, \"max_value_weight\": {}, \"max_accumulator_weight\": {}, \"max_depth\": {}, \"new_values\": {} }}",
        stats.steps,
        stats.reduce_iterations,
        stats.inserts,
        stats.max_value_weight,
        stats.max_accumulator_weight,
        stats.max_depth,
        stats.new_values
    )
}

fn stats_table(stats: &EvalStats) -> String {
    format!(
        "steps: {}  reduce iterations: {}  inserts: {}  max value weight: {}  max accumulator weight: {}  max depth: {}  new values: {}",
        stats.steps,
        stats.reduce_iterations,
        stats.inserts,
        stats.max_value_weight,
        stats.max_accumulator_weight,
        stats.max_depth,
        stats.new_values
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags_and_file() {
        let rest: Vec<String> = [
            "prog.srl",
            "--call",
            "powerset",
            "--arg",
            "{d0, d1}",
            "--backend",
            "tree",
            "--limits",
            "benchmark",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.file, "prog.srl");
        assert_eq!(opts.call.as_deref(), Some("powerset"));
        assert_eq!(opts.args, vec!["{d0, d1}".to_string()]);
        assert_eq!(opts.backend, ExecBackend::TreeWalk);
        assert_eq!(opts.limits, EvalLimits::benchmark());
        assert!(opts.json);
    }

    #[test]
    fn options_reject_unknown_flags_and_missing_file() {
        assert!(parse_options(&["--wat".to_string()], "run").is_err());
        assert!(parse_options(&[], "run").is_err());
    }

    #[test]
    fn threads_flag_selects_the_worker_pool() {
        let rest: Vec<String> = ["prog.srl", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.backend, ExecBackend::vm_with_threads(4));
        // Order-independent with an explicit vm backend.
        let rest: Vec<String> = ["prog.srl", "--threads", "2", "--backend", "vm"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.backend, ExecBackend::vm_with_threads(2));
    }

    #[test]
    fn threads_flag_rejects_bad_values_and_the_tree_walk() {
        for bad in [
            vec!["prog.srl", "--threads", "0"],
            vec!["prog.srl", "--threads", "many"],
            vec!["prog.srl", "--threads"],
            vec!["prog.srl", "--threads", "2", "--backend", "tree"],
        ] {
            let rest: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_options(&rest, "run").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn run_only_flags_are_rejected_by_other_commands() {
        for command in ["print", "disasm"] {
            let rest: Vec<String> = ["file.srl", "--json"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = parse_options(&rest, command).unwrap_err();
            assert!(err.contains("--json"), "{command}: {err}");
        }
        for command in ["check", "analyze", "print", "disasm"] {
            let rest: Vec<String> = ["file.srl", "--call", "main"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = parse_options(&rest, command).unwrap_err();
            assert!(err.contains("--call"), "{command}: {err}");
        }
        // The file argument itself still parses everywhere.
        assert_eq!(
            parse_options(&["file.srl".to_string()], "check")
                .unwrap()
                .file,
            "file.srl"
        );
    }

    #[test]
    fn check_and_analyze_take_json() {
        for command in ["check", "analyze"] {
            let rest: Vec<String> = ["file.srl", "--json"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let opts = parse_options(&rest, command).unwrap();
            assert!(opts.json, "{command}");
        }
    }

    #[test]
    fn json_stats_have_stable_field_order() {
        let stats = EvalStats::default();
        let json = stats_json(&stats);
        let steps = json.find("\"steps\"").unwrap();
        let iters = json.find("\"reduce_iterations\"").unwrap();
        let new_values = json.find("\"new_values\"").unwrap();
        assert!(steps < iters && iters < new_values);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn timeout_flag_arms_a_deadline() {
        let rest: Vec<String> = ["prog.srl", "--timeout-ms", "250"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(
            opts.limits.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        // Composes with --limits regardless of flag order.
        let rest: Vec<String> = ["prog.srl", "--timeout-ms", "250", "--limits", "small"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(
            opts.limits,
            EvalLimits::small().with_deadline_ms(250),
            "--timeout-ms must survive a later --limits"
        );
    }

    #[test]
    fn timeout_flag_rejects_bad_values() {
        for bad in [
            vec!["prog.srl", "--timeout-ms", "0"],
            vec!["prog.srl", "--timeout-ms", "soon"],
            vec!["prog.srl", "--timeout-ms"],
        ] {
            let rest: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_options(&rest, "run").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn exit_codes_follow_the_documented_contract() {
        assert_eq!(eval_exit_code(&EvalError::Cancelled), EXIT_TIMEOUT);
        assert_eq!(
            eval_exit_code(&EvalError::DeadlineExceeded { limit_ms: 10 }),
            EXIT_TIMEOUT
        );
        assert_eq!(
            eval_exit_code(&EvalError::Internal {
                detail: "boom".into()
            }),
            EXIT_INTERNAL
        );
        assert_eq!(
            eval_exit_code(&EvalError::StepLimitExceeded { limit: 1 }),
            EXIT_LIMIT
        );
        assert_eq!(
            eval_exit_code(&EvalError::SizeLimitExceeded { limit: 1 }),
            EXIT_LIMIT
        );
        assert_eq!(
            eval_exit_code(&EvalError::UnboundVariable("x".into())),
            EXIT_RUNTIME
        );
    }

    #[test]
    fn error_json_has_stable_field_order_and_optional_stats() {
        let json = error_json("deadline_exceeded", "too slow", EXIT_TIMEOUT, None);
        let kind = json.find("\"kind\"").unwrap();
        let message = json.find("\"message\"").unwrap();
        let exit = json.find("\"exit\"").unwrap();
        assert!(kind < message && message < exit, "{json}");
        assert!(!json.contains("\"stats\""));
        assert!(json.contains("\"exit\": 7"));

        let stats = EvalStats {
            steps: 9,
            ..EvalStats::default()
        };
        let json = error_json("cancelled", "stop", EXIT_TIMEOUT, Some(&stats));
        assert!(json.contains("\"stats\""));
        assert!(json.contains("\"steps\": 9"));
        assert!(json.find("\"error\"").unwrap() < json.find("\"stats\"").unwrap());
    }
}
