//! # srl-bench — the experiment harness
//!
//! One experiment per constructive claim of the paper (see `DESIGN.md` for
//! the index E1–E9). The Criterion benches under `benches/` measure wall
//! clock; the functions here produce the *semantic* measurements (agreement
//! with the native baselines, growth of iteration counts, accumulator sizes)
//! that the `report` binary prints and that `EXPERIMENTS.md` records.
//!
//! Every experiment pushes its program through the staged compile pipeline
//! **once** (via [`Harness`], over `srl_core::pipeline::Pipeline`) and
//! reuses the compiled form across all measured sizes and repetitions —
//! the compile-once / evaluate-many discipline `srl-analysis`'s
//! `permutation_test` established. Recompiling inside the measured region
//! (what the original `run_program`-per-measurement harnesses did) charges
//! lowering to every reported number; the statistics are unaffected (they
//! only count evaluation work) but wall-clock comparisons are skewed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

use srl_core::ast::Expr;
use srl_core::error::EvalError;
use srl_core::eval::Evaluator;
use srl_core::limits::{EvalLimits, EvalStats};
use srl_core::lower::LoweredExpr;
use srl_core::pipeline::{Compiled, PipelineConfig, TypePolicy};
use srl_core::program::{Env, Program};
use srl_core::value::Value;
use srl_core::ExecBackend;

/// The execution backend every experiment harness uses (the benchmark's
/// **backend axis**, extended with the **par axis** — the VM's worker-pool
/// width). Follows [`ExecBackend::default`] (the sequential bytecode VM)
/// until `report --backend tree|vm` / `report --threads N` pins one
/// explicitly. The semantic rows are invariant along both axes — every
/// engine configuration produces byte-identical `EvalStats` — so
/// `report --json` must diff clean against the pinned trajectory point
/// under any setting (CI checks the default, the tree-walk, and a
/// multi-threaded pool).
///
/// Encoding: `usize::MAX` = follow the default, `0` = tree-walk,
/// `t ≥ 1` = VM with a pool of `t`.
static BACKEND: AtomicUsize = AtomicUsize::new(FOLLOW_DEFAULT);

const FOLLOW_DEFAULT: usize = usize::MAX;
const TREE_WALK: usize = 0;

/// Selects the execution backend for subsequently-constructed harnesses.
pub fn set_backend(backend: ExecBackend) {
    BACKEND.store(
        match backend {
            ExecBackend::TreeWalk => TREE_WALK,
            ExecBackend::Vm { threads } => threads.clamp(1, FOLLOW_DEFAULT - 1),
        },
        Ordering::Relaxed,
    );
}

/// The currently selected harness backend.
pub fn backend() -> ExecBackend {
    match BACKEND.load(Ordering::Relaxed) {
        FOLLOW_DEFAULT => ExecBackend::default(),
        TREE_WALK => ExecBackend::TreeWalk,
        threads => ExecBackend::Vm { threads },
    }
}

/// A program pushed once through the staged compile pipeline
/// ([`srl_core::pipeline::Pipeline`]) per experiment, with one long-lived
/// [`Evaluator`] shared by every measured run.
///
/// Statistics are reset before each run (so they cover exactly one
/// evaluation, as `run_program` reported them), but nothing is re-lowered,
/// re-validated or re-fingerprinted per measurement — the construction cost
/// is paid exactly once. The evaluator runs on the module-level backend
/// (see [`set_backend`]).
struct Harness {
    artifact: Compiled,
    evaluator: Evaluator,
}

impl Harness {
    fn new(program: Program, limits: EvalLimits) -> Self {
        let artifact = PipelineConfig::new()
            .with_limits(limits)
            .with_backend(backend())
            .with_type_policy(TypePolicy::Skip)
            .pipeline()
            .prepare(program)
            .expect("experiment programs are structurally well-formed");
        let evaluator = artifact.evaluator();
        Harness {
            artifact,
            evaluator,
        }
    }

    /// Calls a named definition; returns the result and the statistics of
    /// this call alone.
    fn run(&mut self, name: &str, args: &[Value]) -> Result<(Value, EvalStats), EvalError> {
        self.evaluator.reset_stats();
        let value = self.evaluator.call(name, args)?;
        Ok((value, *self.evaluator.stats()))
    }

    /// Lowers a stand-alone expression once against `scope` (the input names,
    /// in environment binding order) for repeated evaluation.
    fn lower(&self, expr: &Expr, scope: &[&str]) -> LoweredExpr {
        self.artifact.lower_expr(expr, scope)
    }

    /// Evaluates a pre-lowered expression against an environment binding the
    /// lowered scope's names in the same order.
    fn eval_lowered(
        &mut self,
        lowered: &LoweredExpr,
        env: &Env,
    ) -> Result<(Value, EvalStats), EvalError> {
        self.evaluator.reset_stats();
        let value = self.evaluator.eval_lowered(lowered, env)?;
        Ok((value, *self.evaluator.stats()))
    }

    /// Lowers and evaluates an expression whose shape varies per measurement
    /// (the program stays amortised; only the query itself is lowered).
    fn eval_expr(&mut self, expr: &Expr, env: &Env) -> Result<(Value, EvalStats), EvalError> {
        self.evaluator.reset_stats();
        let value = self.evaluator.eval(expr, env)?;
        Ok((value, *self.evaluator.stats()))
    }
}

/// Query ASTs shared by the experiments, the Criterion benches and the
/// `perfprobe` binary, so every harness measures exactly the expressions
/// the semantic report validates (a drifting copy would silently time a
/// different query than the one checked against the native baselines).
pub mod queries {
    use srl_core::ast::Expr;
    use srl_core::dsl::{
        atom, choose, empty_set, eq, if_, insert, lam, sel, set_reduce, tuple, var,
    };
    use srl_stdlib::derived::{intersection, join, member, project, select, union};
    use srl_stdlib::tc;

    /// E5: transitive closure of edge set `E` over domain `D`.
    pub fn tc_query() -> Expr {
        tc::transitive_closure(var("D"), var("E"))
    }

    /// E5: deterministic transitive closure of `E` over domain `D`.
    pub fn dtc_query() -> Expr {
        tc::deterministic_transitive_closure(var("D"), var("E"))
    }

    /// E9: join employees (`EMP`) with departments (`DEPT`) on the
    /// department id, projecting the employee and manager ids.
    pub fn company_join() -> Expr {
        join(
            var("EMP"),
            var("DEPT"),
            lam("e", "d", eq(sel(var("e"), 2), sel(var("d"), 1))),
            lam("e", "d", tuple([sel(var("e"), 1), sel(var("d"), 2)])),
        )
    }

    /// E5 (atom-set core): the set of vertices reachable from `choose(D)`
    /// along `E`, by one frontier-expansion round per element of the driver
    /// set `K` (a diameter bound). Unlike [`tc_query`], whose accumulator is
    /// the pair *relation*, the accumulator here is the vertex *set* — the
    /// workload the columnar atom tier targets: per edge one membership
    /// probe against the reach set, then one bulk union per round.
    pub fn reach_query() -> Expr {
        // One round, the current reach set threaded through `extra`:
        // {e.2 | e ∈ E, e.1 ∈ R}.
        let step = set_reduce(
            var("E"),
            lam(
                "__re_e",
                "__re_r",
                tuple([
                    sel(var("__re_e"), 2),
                    member(sel(var("__re_e"), 1), var("__re_r")),
                ]),
            ),
            lam(
                "__re_p",
                "__re_acc",
                if_(
                    sel(var("__re_p"), 2),
                    insert(sel(var("__re_p"), 1), var("__re_acc")),
                    var("__re_acc"),
                ),
            ),
            empty_set(),
            var("__rr_acc"),
        );
        set_reduce(
            var("K"),
            lam("__rr_k", "__rr_unused", var("__rr_k")),
            lam("__rr_round", "__rr_acc", union(var("__rr_acc"), step)),
            insert(choose(var("D")), empty_set()),
            empty_set(),
        )
    }

    /// E9 (dense-id core): intersection of an employee-id set with a dense
    /// id universe — per element one membership probe against the dense set
    /// and one insert into a `set(atom)` accumulator, the shape the columnar
    /// bitset tier answers in O(1) words.
    pub fn id_intersection() -> Expr {
        intersection(var("IDS"), var("UNIV"))
    }

    /// Dense-universe probe: bulk union of two interleaved atom sets that
    /// together tile `0..2n` — one fused `SetMerge` per evaluation, columnar
    /// word-parallel against the generic element merge.
    pub fn dense_union() -> Expr {
        union(var("A"), var("B"))
    }

    /// E5 (rows-tier core): the reachability *relation* from `choose(D)`
    /// along `E` — the pairs `(s, v)` with `v` reachable from the chosen
    /// source — by one frontier-expansion round per element of the driver
    /// set `K`. The pair twin of [`reach_query`]: the accumulator is a
    /// fixed-arity atom-tuple relation, so per edge the round probes one
    /// pair tuple against the columnar row store (per-column binary
    /// search), and each round ends in one bulk row-store union.
    pub fn pair_reach_query() -> Expr {
        // One round, the accumulated relation threaded through `extra`:
        // {(s, e.2) | e ∈ E, (s, e.1) ∈ R}.
        let step = set_reduce(
            var("E"),
            lam(
                "__pr_e",
                "__pr_r",
                tuple([
                    sel(var("__pr_e"), 2),
                    member(tuple([var("__pr_s"), sel(var("__pr_e"), 1)]), var("__pr_r")),
                ]),
            ),
            lam(
                "__pr_p",
                "__pr_acc",
                if_(
                    sel(var("__pr_p"), 2),
                    insert(
                        tuple([var("__pr_s"), sel(var("__pr_p"), 1)]),
                        var("__pr_acc"),
                    ),
                    var("__pr_acc"),
                ),
            ),
            empty_set(),
            var("__pc_acc"),
        );
        let rounds = set_reduce(
            var("K"),
            lam("__pc_k", "__pc_unused", var("__pc_k")),
            lam("__pc_round", "__pc_acc", union(var("__pc_acc"), step)),
            insert(tuple([var("__pr_s"), var("__pr_s")]), empty_set()),
            empty_set(),
        );
        // Bind the source once by folding over the singleton {choose(D)}:
        // the combiner parameter `__pr_s` scopes the source for the rounds
        // (the same capture trick [`product_relation`] uses for `__xp_a`).
        set_reduce(
            insert(choose(var("D")), empty_set()),
            lam("__pr_s0", "__pr_u", var("__pr_s0")),
            lam("__pr_s", "__pr_out", rounds),
            empty_set(),
            empty_set(),
        )
    }

    /// Product relation: `A × B` as pair tuples — every insert is an
    /// arity-2 plain-atom tuple, so the accumulator lives on the
    /// struct-of-arrays rows tier end to end (one galloping bulk union per
    /// outer element).
    pub fn product_relation() -> Expr {
        let row = set_reduce(
            var("B"),
            lam("__xp_b", "__xp_u", tuple([var("__xp_a"), var("__xp_b")])),
            lam("__xp_p", "__xp_acc", insert(var("__xp_p"), var("__xp_acc"))),
            empty_set(),
            empty_set(),
        );
        set_reduce(
            var("A"),
            lam("__xp_e", "__xp_u0", var("__xp_e")),
            lam("__xp_a", "__xp_out", union(var("__xp_out"), row)),
            empty_set(),
            empty_set(),
        )
    }

    /// E9: ids of the employees in department `dept` (select + project).
    pub fn employees_in_department(dept: u64) -> Expr {
        project(
            select(
                var("EMP"),
                lam("e", "x", eq(sel(var("e"), 2), atom(dept))),
                empty_set(),
            ),
            1,
        )
    }
}

/// One measured row of an experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment id (e.g. "E1").
    pub experiment: &'static str,
    /// Workload description.
    pub workload: String,
    /// The size parameter swept.
    pub n: usize,
    /// Did the SRL construction agree with the native baseline?
    pub agrees_with_baseline: bool,
    /// Reduce iterations performed by the SRL evaluation.
    pub reduce_iterations: u64,
    /// Largest accumulator weight observed (the logspace signature).
    pub max_accumulator_weight: usize,
    /// Total value leaves allocated (the blow-up signature).
    pub allocated_leaves: usize,
    /// Extra, experiment-specific note.
    pub note: String,
}

impl Row {
    fn new(experiment: &'static str, workload: impl Into<String>, n: usize) -> Self {
        Row {
            experiment,
            workload: workload.into(),
            n,
            agrees_with_baseline: true,
            reduce_iterations: 0,
            max_accumulator_weight: 0,
            allocated_leaves: 0,
            note: String::new(),
        }
    }

    fn with_stats(mut self, stats: &EvalStats) -> Self {
        self.reduce_iterations = stats.reduce_iterations;
        self.max_accumulator_weight = stats.max_accumulator_weight;
        self.allocated_leaves = stats.max_value_weight;
        self
    }
}

/// Renders rows as a pretty-printed JSON array (hand-rolled: the build runs
/// offline, without serde; the schema is the `Row` struct field-for-field).
pub fn to_json(rows: &[Row]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\n    \"experiment\": \"{}\",\n    \"workload\": \"{}\",\n    \"n\": {},\n    \"agrees_with_baseline\": {},\n    \"reduce_iterations\": {},\n    \"max_accumulator_weight\": {},\n    \"allocated_leaves\": {},\n    \"note\": \"{}\"\n  }}",
            escape(r.experiment),
            escape(&r.workload),
            r.n,
            r.agrees_with_baseline,
            r.reduce_iterations,
            r.max_accumulator_weight,
            r.allocated_leaves,
            escape(&r.note)
        ));
    }
    out.push_str("\n]");
    out
}

/// Renders rows as a markdown table.
pub fn to_markdown(rows: &[Row]) -> String {
    let mut out = String::from(
        "| exp | workload | n | agrees | reduce iters | max acc weight | allocated leaves | note |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.experiment,
            r.workload,
            r.n,
            if r.agrees_with_baseline { "yes" } else { "NO" },
            r.reduce_iterations,
            r.max_accumulator_weight,
            r.allocated_leaves,
            r.note
        ));
    }
    out
}

/// E1 — Lemma 3.6 / Theorem 3.10: APATH in SRL vs. the native alternating
/// reachability solver and the FO+LFP baseline.
pub fn experiment_e1(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    let mut harness = Harness::new(apath_program(), EvalLimits::benchmark());
    let mut rows = Vec::new();
    for &n in sizes {
        let graph = AlternatingGraph::random(n, 0.25, 7 + n as u64);
        let native = graph.apath_all();
        let lfp_structure =
            fo_logic::Structure::from_alternating_graph(graph.n, &graph.edges, &graph.universal);
        let lfp_agrees = fo_logic::formula::eval_sentence(
            &lfp_structure,
            &fo_logic::formula::library::agap_sentence(),
        ) == graph.agap();
        let (value, stats) = harness
            .run(
                names::APATH,
                &[graph.nodes_value(), graph.edges_value(), graph.ands_value()],
            )
            .expect("APATH evaluates");
        let srl = AlternatingGraph::apath_from_value(&value, graph.n).expect("relation shape");
        let mut row = Row::new("E1", "random alternating graph (p=0.25)", n).with_stats(&stats);
        row.agrees_with_baseline = srl == native && lfp_agrees;
        row.note = format!("AGAP = {}", graph.agap());
        rows.push(row);
    }
    rows
}

/// E2 — Example 3.12: powerset blow-up at set-height 2.
pub fn experiment_e2(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::blowup::{names, powerset_program};

    let mut harness = Harness::new(powerset_program(), EvalLimits::default());
    let mut rows = Vec::new();
    for &n in sizes {
        let input = Value::set((0..n as u64).map(Value::atom));
        let result = harness.run(names::POWERSET, &[input]);
        let mut row = Row::new("E2", "powerset of {0..n}", n);
        match result {
            Ok((value, stats)) => {
                row = row.with_stats(&stats);
                row.agrees_with_baseline = value.len() == Some(1 << n);
                row.note = format!("|P(S)| = {}", value.len().unwrap_or(0));
            }
            Err(e) => {
                row.agrees_with_baseline = true;
                row.note = format!("resource wall: {e}");
            }
        }
        rows.push(row);
    }
    rows
}

/// E3 — Proposition 4.5 / Lemma 4.6: BASRL arithmetic vs. native arithmetic,
/// with the accumulator-size evidence for Theorem 4.13.
pub fn experiment_e3(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let mut harness = Harness::new(arithmetic_program(), EvalLimits::benchmark());
    let mut rows = Vec::new();
    for &n in sizes {
        let d = domain(n as u64);
        let a = (n as u64 / 3).max(1);
        let b = (n as u64 / 4).max(1);
        let mut agrees = true;
        let mut total_stats = EvalStats::default();
        for (name, args, expected) in [
            (names::ADD, vec![a, b], (a + b).min(n as u64 - 1)),
            (names::MULT, vec![3, b], (3 * b).min(n as u64 - 1)),
            (names::BIT, vec![1, a], u64::MAX), // checked separately below
        ] {
            let mut call_args = vec![d.clone()];
            call_args.extend(args.iter().map(|&x| Value::atom(x)));
            let (value, stats) = harness.run(name, &call_args).expect("arith");
            total_stats.absorb(&stats);
            if name == names::BIT {
                agrees &= value == Value::bool((a >> 1) & 1 == 1);
            } else {
                agrees &= value == Value::atom(expected);
            }
        }
        let mut row = Row::new("E3", "BASRL add/mult/bit over |D| = n", n).with_stats(&total_stats);
        row.agrees_with_baseline = agrees;
        rows.push(row);
    }
    rows
}

/// E4 — Lemma 4.10 / Theorem 4.13: iterated permutation product in BASRL.
pub fn experiment_e4(sizes: &[usize]) -> Vec<Row> {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    let mut harness = Harness::new(perm_program(), EvalLimits::benchmark());
    let mut rows = Vec::new();
    for &n in sizes {
        let instance = IteratedProductInstance::random(n, n, 11 + n as u64);
        let product = instance.product();
        let mut agrees = true;
        let mut total_stats = EvalStats::default();
        for point in 0..n.min(4) {
            let (value, stats) = harness
                .run(
                    names::IP,
                    &[
                        padded_domain(&instance),
                        instance.to_srl_value(),
                        Value::atom(point as u64),
                    ],
                )
                .expect("IP evaluates");
            total_stats.absorb(&stats);
            let image = value.as_tuple().unwrap()[1].as_atom().unwrap().index;
            agrees &= image == product.apply(point) as u64;
        }
        let mut row =
            Row::new("E4", "IMₛₙ: n permutations of degree n", n).with_stats(&total_stats);
        row.agrees_with_baseline = agrees;
        rows.push(row);
    }
    rows
}

/// E5 — Corollaries 4.2 / 4.4: TC and DTC in SRL vs. native closures and the
/// FO+TC / FO+DTC formulas.
pub fn experiment_e5(sizes: &[usize]) -> Vec<Row> {
    use workloads::digraph::Digraph;

    // The queries are fixed expressions over inputs named D and E: lower them
    // once, evaluate them against every sized environment.
    let mut harness = Harness::new(
        Program::new(srl_core::Dialect::full()),
        EvalLimits::benchmark(),
    );
    let tc_lowered = harness.lower(&queries::tc_query(), &["D", "E"]);
    let dtc_lowered = harness.lower(&queries::dtc_query(), &["D", "E"]);
    let mut rows = Vec::new();
    for &n in sizes {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let (tc_value, tc_stats) = harness
            .eval_lowered(&tc_lowered, &env)
            .expect("TC evaluates");
        let (dtc_value, dtc_stats) = harness
            .eval_lowered(&dtc_lowered, &env)
            .expect("DTC evaluates");
        let tc_ok = Digraph::closure_from_value(&tc_value, n) == Some(g.transitive_closure());
        let dtc_ok = Digraph::closure_from_value(&dtc_value, n)
            == Some(g.deterministic_transitive_closure());
        let mut stats = tc_stats;
        stats.absorb(&dtc_stats);
        let mut row = Row::new("E5", "random digraph, ~2 edges per vertex", n).with_stats(&stats);
        row.agrees_with_baseline = tc_ok && dtc_ok;
        rows.push(row);
    }
    rows
}

/// E6 — Theorem 5.2 / Corollary 5.5: primitive recursion compiled to SRL+new,
/// and the LRL blow-up.
pub fn experiment_e6(sizes: &[usize]) -> Vec<Row> {
    use machines::primrec::library;
    use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
    use srl_stdlib::primrec_compile::{compile, decode_nat, encode_nat};

    let add = compile(&library::add()).expect("add compiles");
    let mul = compile(&library::mul()).expect("mul compiles");
    let add_entry = add.entry.clone();
    let mul_entry = mul.entry.clone();
    let mut add_harness = Harness::new(add.program, EvalLimits::benchmark());
    let mut mul_harness = Harness::new(mul.program, EvalLimits::benchmark());
    let mut doubling_harness = Harness::new(lrl_doubling_program(), EvalLimits::default());
    // `eval_compiled` re-lowers the compiled-PR program per call; run the
    // entry point through the shared compiled form instead.
    let pr_eval = |harness: &mut Harness, entry: &str, args: &[u64]| -> Option<u64> {
        let encoded: Vec<Value> = args.iter().map(|&a| encode_nat(a)).collect();
        let (value, _) = harness.run(entry, &encoded).ok()?;
        decode_nat(&value)
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let a = n as u64;
        let b = (n as u64 / 2).max(1);
        let add_ok = pr_eval(&mut add_harness, &add_entry, &[a, b]) == Some(a + b);
        let mul_ok = pr_eval(&mut mul_harness, &mul_entry, &[a.min(8), b.min(8)])
            == Some(a.min(8) * b.min(8));
        let input = Value::list((0..n as u64).map(Value::atom));
        let result = doubling_harness.run(blow_names::DOUBLING, &[input]);
        let mut row = Row::new("E6", "PR add/mul via SRL+new; LRL 2ⁿ blow-up", n);
        match result {
            Ok((v, stats)) => {
                row = row.with_stats(&stats);
                row.agrees_with_baseline =
                    add_ok && mul_ok && v.as_list().map(|l| l.len()) == Some(1 << n);
                row.note = format!("LRL list length = {}", v.len().unwrap_or(0));
            }
            Err(e) => {
                row.agrees_with_baseline = add_ok && mul_ok;
                row.note = format!("LRL resource wall: {e}");
            }
        }
        rows.push(row);
    }
    rows
}

/// E7 — Proposition 6.2 / Corollary 6.3: the compiled Turing-machine
/// simulation vs. the native runner.
pub fn experiment_e7(sizes: &[usize]) -> Vec<Row> {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    let machine = even_parity();
    let mut harness = Harness::new(compile(&machine), EvalLimits::benchmark());
    let mut rows = Vec::new();
    for &n in sizes {
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let native = machine.accepts(&input, 10_000);
        let (value, stats) = harness
            .run(names::ACCEPTS, &[position_domain(n), encode_input(&input)])
            .expect("simulation evaluates");
        let mut row = Row::new("E7", "even-parity DTM, input length n", n).with_stats(&stats);
        row.agrees_with_baseline = value == Value::bool(native);
        row.note = format!("native accept = {native}");
        rows.push(row);
    }
    rows
}

/// E8 — Section 7: order-dependence of `Purple(First(S))`, order-independence
/// of count/EVEN, and the CFI pairs' WL-indistinguishability.
pub fn experiment_e8(sizes: &[usize]) -> Vec<Row> {
    use srl_analysis::{analyze_order_dependence, OrderVerdict};
    use srl_core::dsl::var;
    use srl_stdlib::hom;
    use workloads::cfi::{cfi_pair, BaseGraph};
    use workloads::wl::wl1_equivalent;

    let mut rows = Vec::new();
    for &n in sizes {
        let program = srl_core::program::Program::srl();
        let s = Value::set((0..n as u64).map(|i| Value::atom(i * 2)));
        let purple = Value::set([Value::atom((n as u64 - 1) * 2)]);
        let env = Env::new().bind("S", s).bind("P", purple);
        let dependent = analyze_order_dependence(
            &program,
            &hom::purple_first(var("S"), var("P")),
            &env,
            2 * n,
            16,
        );
        let independent = analyze_order_dependence(&program, &hom::even(var("S")), &env, 2 * n, 8);
        let (g, h) = cfi_pair(&BaseGraph::cycle(n.max(3)));
        let wl_blind = wl1_equivalent(&g.graph, &h.graph);
        let components_differ = g.connected_components() != h.connected_components();
        let mut row = Row::new("E8", "Purple(First) vs EVEN; CFI over Cₙ", n);
        row.agrees_with_baseline = matches!(dependent, OrderVerdict::ProvedDependent { .. })
            && independent == OrderVerdict::ProvedIndependent
            && wl_blind
            && components_differ;
        row.note = format!(
            "CFI: 1-WL equivalent = {wl_blind}, component counts differ = {components_differ}"
        );
        rows.push(row);
    }
    rows
}

/// E9 — Fact 2.4 / Proposition 3.3: relational operators in SRL on the
/// company workload, and closure under a first-order interpretation.
pub fn experiment_e9(sizes: &[usize]) -> Vec<Row> {
    use fo_logic::interpretation::library::graph_square;
    use workloads::tables::CompanyDatabase;

    // The join query is fixed; the select/project query embeds a per-size
    // department constant, so only the former can be lowered once. The
    // (empty) program behind both is still compiled exactly once.
    let mut harness = Harness::new(
        Program::new(srl_core::Dialect::full()),
        EvalLimits::benchmark(),
    );
    let joined_lowered = harness.lower(&queries::company_join(), &["EMP", "DEPT"]);
    let mut rows = Vec::new();
    for &n in sizes {
        let db = CompanyDatabase::generate(n, (n / 4).max(1), 4, 31 + n as u64);
        let env = Env::new()
            .bind("EMP", db.employees_value())
            .bind("DEPT", db.departments_value());
        // Join employees with their department's manager and project the ids.
        let (value, stats) = harness
            .eval_lowered(&joined_lowered, &env)
            .expect("join evaluates");
        let native: std::collections::BTreeSet<(u64, u64)> =
            db.employee_manager_join().into_iter().collect();
        let srl_pairs: std::collections::BTreeSet<(u64, u64)> = value
            .as_set()
            .unwrap()
            .iter()
            .map(|t| {
                let tt = t.as_tuple().unwrap();
                (
                    tt[0].as_atom().unwrap().index,
                    tt[1].as_atom().unwrap().index,
                )
            })
            .collect();
        // A select/project query for good measure.
        let dept0 = db.departments[0].id;
        let in_dept0 = queries::employees_in_department(dept0);
        let (sel_value, _) = harness.eval_expr(&in_dept0, &env).expect("select");
        let native_dept: Vec<u64> = db.employees_in_department(dept0);
        let srl_dept: Vec<u64> = sel_value
            .as_set()
            .unwrap()
            .iter()
            .map(|a| a.as_atom().unwrap().index)
            .collect();
        // Closure under FO interpretations: squaring a path keeps reachability
        // answers consistent (checked via the interpretation library).
        let path = fo_logic::Structure::from_digraph(
            n.max(2),
            &(1..n.max(2)).map(|i| (i - 1, i)).collect::<Vec<_>>(),
        );
        let squared = graph_square().apply(&path);
        let interp_ok = squared.relation_size("E") == n.max(2).saturating_sub(2);

        let mut row =
            Row::new("E9", "company join/select/project; FO interpretation", n).with_stats(&stats);
        row.agrees_with_baseline = srl_pairs == native && srl_dept == native_dept && interp_ok;
        rows.push(row);
    }
    rows
}
