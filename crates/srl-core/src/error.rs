//! Error types shared across the SRL core.

use std::fmt;

use crate::types::Type;

/// Errors raised while statically checking a program (type checking, dialect
/// checking, or program well-formedness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A variable was used that is not bound by a lambda, a definition
    /// parameter, or the input environment.
    UnboundVariable(String),
    /// A function was called that is not defined (or is defined later than
    /// its use, which would permit recursion the language does not have).
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    ArityMismatch {
        /// The function name.
        name: String,
        /// Number of declared parameters.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// Two types failed to unify.
    TypeMismatch {
        /// What was expected by the context.
        expected: Type,
        /// What was found.
        found: Type,
        /// Human-readable location description.
        context: String,
    },
    /// A tuple selector `sel_i` was applied out of range or to a non-tuple.
    BadSelector {
        /// 1-based selector index.
        index: usize,
        /// The type it was applied to.
        on: Type,
    },
    /// Equality was used on a type whose equality is not axiomatised
    /// (sets and lists — the paper requires it to be expressed in SRL).
    EqualityOnNonEqType(Type),
    /// `≤` was used on a type with no primitive order.
    OrderOnNonOrdType(Type),
    /// An operator was used that the active dialect forbids.
    DialectViolation {
        /// The operator in question.
        operator: String,
        /// The dialect's name.
        dialect: String,
    },
    /// An occurs-check failure during unification (infinite type).
    InfiniteType,
    /// A definition name was declared twice.
    DuplicateDefinition(String),
    /// A recursive (or forward) call between definitions. SRL functions are
    /// closed under composition, not general recursion (Definition 2.1).
    RecursiveDefinition(String),
    /// A lambda body referred to a variable other than its own parameters.
    /// Rule 9 of the grammar: "in which only x and y can appear free".
    NonLocalLambdaReference {
        /// The offending variable.
        variable: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            CheckError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            CheckError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "function `{name}` expects {expected} argument(s) but was given {found}"
            ),
            CheckError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(f, "type mismatch in {context}: expected {expected}, found {found}"),
            CheckError::BadSelector { index, on } => {
                write!(f, "selector .{index} cannot be applied to a value of type {on}")
            }
            CheckError::EqualityOnNonEqType(t) => write!(
                f,
                "equality is not axiomatised on type {t}; express it with set-reduce (see srl-stdlib::setops::set_eq)"
            ),
            CheckError::OrderOnNonOrdType(t) => {
                write!(f, "`≤` is not available on type {t}")
            }
            CheckError::DialectViolation { operator, dialect } => {
                write!(f, "operator `{operator}` is not allowed in dialect {dialect}")
            }
            CheckError::InfiniteType => write!(f, "occurs check failed (infinite type)"),
            CheckError::DuplicateDefinition(n) => write!(f, "duplicate definition `{n}`"),
            CheckError::RecursiveDefinition(n) => write!(
                f,
                "definition `{n}` calls itself or a later definition; SRL has no general recursion"
            ),
            CheckError::NonLocalLambdaReference { variable } => write!(
                f,
                "lambda body refers to `{variable}`, which is not one of its parameters; pass it through the `extra` argument instead"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Errors raised while evaluating an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding at run time (should be prevented by the
    /// checker; kept for robustness of the dynamically-typed entry points).
    UnboundVariable(String),
    /// A function had no definition at run time.
    UnknownFunction(String),
    /// A runtime value did not have the shape an operator required.
    Shape {
        /// The operator being evaluated.
        operator: &'static str,
        /// Description of what was expected.
        expected: &'static str,
        /// Display form of the offending value.
        found: String,
    },
    /// A tuple selector was out of range.
    SelectorOutOfRange {
        /// 1-based selector index.
        index: usize,
        /// Tuple arity.
        arity: usize,
    },
    /// The step budget was exhausted.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A constructed value exceeded the size budget.
    SizeLimitExceeded {
        /// The configured limit (in value leaves).
        limit: usize,
    },
    /// Expression nesting exceeded the recursion-depth budget.
    DepthLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A natural number exceeded the configured bit-length budget.
    NatWidthExceeded {
        /// The configured limit in bits.
        limit_bits: usize,
    },
    /// `choose`/`rest` was applied to an empty set.
    ChooseFromEmptySet,
    /// [`Evaluator::with_compiled`](crate::eval::Evaluator::with_compiled)
    /// was handed a [`CompiledProgram`](crate::lower::CompiledProgram) that is
    /// not the compiled form of the accompanying program: evaluation would
    /// silently resolve calls against the wrong definitions.
    CompiledProgramMismatch {
        /// Fingerprint of the program the caller supplied.
        expected: u64,
        /// Fingerprint recorded in the compiled program.
        found: u64,
    },
    /// An operator forbidden by the dialect was reached at run time (only
    /// possible when evaluation is run without a prior check).
    DialectViolation {
        /// The operator in question.
        operator: String,
        /// The dialect's name.
        dialect: String,
    },
    /// The evaluation was cancelled via its
    /// [`CancelToken`](crate::cancel::CancelToken).
    Cancelled,
    /// The wall-clock deadline configured in
    /// [`EvalLimits::deadline`](crate::limits::EvalLimits::deadline) expired.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// The engine itself misbehaved — e.g. a parallel shard worker panicked.
    /// The panic is caught at the shard boundary and converted into this
    /// structured error so the process and the evaluator both survive.
    Internal {
        /// Human-readable description of what went wrong.
        detail: String,
    },
}

impl EvalError {
    /// A short, stable, machine-readable name for the error kind, used by the
    /// CLI's `--json` error objects. These strings are part of the CLI
    /// contract; do not rename.
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::UnboundVariable(_) => "unbound_variable",
            EvalError::UnknownFunction(_) => "unknown_function",
            EvalError::Shape { .. } => "shape",
            EvalError::SelectorOutOfRange { .. } => "selector_out_of_range",
            EvalError::StepLimitExceeded { .. } => "step_limit_exceeded",
            EvalError::SizeLimitExceeded { .. } => "size_limit_exceeded",
            EvalError::DepthLimitExceeded { .. } => "depth_limit_exceeded",
            EvalError::NatWidthExceeded { .. } => "nat_width_exceeded",
            EvalError::ChooseFromEmptySet => "choose_from_empty_set",
            EvalError::CompiledProgramMismatch { .. } => "compiled_program_mismatch",
            EvalError::DialectViolation { .. } => "dialect_violation",
            EvalError::Cancelled => "cancelled",
            EvalError::DeadlineExceeded { .. } => "deadline_exceeded",
            EvalError::Internal { .. } => "internal",
        }
    }

    /// Whether this error is one of the deterministic budget limits
    /// ([`EvalLimits`](crate::limits::EvalLimits) excluding the wall-clock
    /// deadline).
    pub fn is_limit(&self) -> bool {
        matches!(
            self,
            EvalError::StepLimitExceeded { .. }
                | EvalError::SizeLimitExceeded { .. }
                | EvalError::DepthLimitExceeded { .. }
                | EvalError::NatWidthExceeded { .. }
        )
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}` at run time"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}` at run time"),
            EvalError::Shape {
                operator,
                expected,
                found,
            } => write!(f, "{operator}: expected {expected}, found {found}"),
            EvalError::SelectorOutOfRange { index, arity } => {
                write!(
                    f,
                    "selector .{index} out of range for a tuple of arity {arity}"
                )
            }
            EvalError::StepLimitExceeded { limit } => {
                write!(f, "evaluation exceeded the step budget of {limit} steps")
            }
            EvalError::SizeLimitExceeded { limit } => {
                write!(
                    f,
                    "a constructed value exceeded the size budget of {limit} leaves"
                )
            }
            EvalError::DepthLimitExceeded { limit } => {
                write!(f, "expression nesting exceeded the depth budget of {limit}")
            }
            EvalError::NatWidthExceeded { limit_bits } => {
                write!(
                    f,
                    "a natural number exceeded the width budget of {limit_bits} bits"
                )
            }
            EvalError::ChooseFromEmptySet => write!(f, "choose/rest applied to the empty set"),
            EvalError::CompiledProgramMismatch { expected, found } => write!(
                f,
                "compiled program is not the compiled form of this program \
                 (program fingerprint {expected:#018x}, compiled fingerprint {found:#018x})"
            ),
            EvalError::DialectViolation { operator, dialect } => {
                write!(
                    f,
                    "operator `{operator}` is not allowed in dialect {dialect}"
                )
            }
            EvalError::Cancelled => write!(f, "evaluation was cancelled"),
            EvalError::DeadlineExceeded { limit_ms } => {
                write!(
                    f,
                    "evaluation exceeded the wall-clock deadline of {limit_ms} ms"
                )
            }
            EvalError::Internal { detail } => {
                write!(f, "internal evaluator error: {detail}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Top-level error type for the crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrlError {
    /// A static checking error.
    Check(CheckError),
    /// A runtime evaluation error.
    Eval(EvalError),
}

impl fmt::Display for SrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrlError::Check(e) => write!(f, "check error: {e}"),
            SrlError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for SrlError {}

impl From<CheckError> for SrlError {
    fn from(e: CheckError) -> Self {
        SrlError::Check(e)
    }
}

impl From<EvalError> for SrlError {
    fn from(e: EvalError) -> Self {
        SrlError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_check_errors() {
        let e = CheckError::UnboundVariable("x".into());
        assert!(e.to_string().contains("unbound variable"));
        let e = CheckError::TypeMismatch {
            expected: Type::Bool,
            found: Type::Atom,
            context: "if condition".into(),
        };
        assert!(e.to_string().contains("if condition"));
        assert!(e.to_string().contains("bool"));
        let e = CheckError::EqualityOnNonEqType(Type::set_of(Type::Atom));
        assert!(e.to_string().contains("set-reduce"));
    }

    #[test]
    fn display_eval_errors() {
        let e = EvalError::StepLimitExceeded { limit: 100 };
        assert!(e.to_string().contains("100"));
        let e = EvalError::SelectorOutOfRange { index: 3, arity: 2 };
        assert!(e.to_string().contains(".3"));
        let e = EvalError::DeadlineExceeded { limit_ms: 250 };
        assert!(e.to_string().contains("250 ms"));
        let e = EvalError::Internal {
            detail: "shard 1 panicked".into(),
        };
        assert!(e.to_string().contains("shard 1 panicked"));
        assert!(EvalError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn kinds_are_stable_and_limits_are_classified() {
        assert_eq!(EvalError::Cancelled.kind(), "cancelled");
        assert_eq!(
            EvalError::DeadlineExceeded { limit_ms: 1 }.kind(),
            "deadline_exceeded"
        );
        assert_eq!(
            EvalError::Internal { detail: "x".into() }.kind(),
            "internal"
        );
        assert_eq!(
            EvalError::StepLimitExceeded { limit: 1 }.kind(),
            "step_limit_exceeded"
        );
        assert!(EvalError::StepLimitExceeded { limit: 1 }.is_limit());
        assert!(EvalError::SizeLimitExceeded { limit: 1 }.is_limit());
        assert!(!EvalError::DeadlineExceeded { limit_ms: 1 }.is_limit());
        assert!(!EvalError::Cancelled.is_limit());
        assert!(!EvalError::ChooseFromEmptySet.is_limit());
    }

    #[test]
    fn conversions_into_srl_error() {
        let c: SrlError = CheckError::InfiniteType.into();
        assert!(matches!(c, SrlError::Check(_)));
        let e: SrlError = EvalError::ChooseFromEmptySet.into();
        assert!(matches!(e, SrlError::Eval(_)));
        assert!(c.to_string().contains("check error"));
        assert!(e.to_string().contains("evaluation error"));
    }
}
