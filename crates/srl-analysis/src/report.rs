//! Rendering of the `analyze` report for the shared wire contract.
//!
//! `srl analyze [--json]` and the `srl-serve` line protocol's `analyze`
//! request both return this exact body (the JSON form is golden-diffed by
//! CI against `examples/srl/analysis/*.analyze.json`), so the rendering
//! lives here — beside the report types — rather than in either front end.
//! The JSON envelope and escaping come from `srl_core::api`, the one
//! definition of the versioned response format.

use srl_core::api;

use crate::interproc::InterprocReport;
use crate::syntactic::Classification;

/// The `analyze` report as a versioned JSON body with a stable field order
/// (`v`, `fragment`, `definitions`, `folds`), so CI can golden-diff it
/// across commits.
pub fn analyze_json(verdict: &Classification, report: &InterprocReport) -> String {
    analyze_json_with(verdict, report, &[])
}

/// [`analyze_json`] with trailing extra fields — the server appends its
/// `cache` object and the echoed request `id` after the pinned report
/// fields, keeping the CLI body a strict prefix of the served one.
pub fn analyze_json_with(
    verdict: &Classification,
    report: &InterprocReport,
    extras: &[(&str, String)],
) -> String {
    let defs: Vec<String> = report
        .spines
        .iter()
        .map(|s| {
            format!(
                "    {{ \"def\": \"{}\", \"spine_param\": {} }}",
                api::escape(&s.def),
                match &s.spine_param {
                    Some(p) => format!("\"{}\"", api::escape(p)),
                    None => "null".to_string(),
                },
            )
        })
        .collect();
    let folds: Vec<String> = report
        .folds
        .iter()
        .map(|f| {
            format!(
                "    {{ \"def\": {}, \"block\": {}, \"kind\": \"{}{}\", \"class\": \"{}\", \"tier\": \"{}\", \"acc_tier\": \"{}\", \"order_independent\": {}, \"unit_cost\": {}, \"reason\": \"{}\" }}",
                match &f.def {
                    Some(d) => format!("\"{}\"", api::escape(d)),
                    None => "null".to_string(),
                },
                f.block,
                if f.is_list { "list-" } else { "" },
                f.kind,
                f.class.label(),
                f.tier,
                f.acc_tier,
                f.order_independent(),
                f.unit_cost,
                api::escape(&f.reason),
            )
        })
        .collect();
    let wrap = |items: Vec<String>| {
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", items.join(",\n"))
        }
    };
    let mut fields = vec![
        (
            "fragment",
            format!("\"{}\"", api::escape(&verdict.fragment.to_string())),
        ),
        ("definitions", wrap(defs)),
        ("folds", wrap(folds)),
    ];
    fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    api::versioned(&fields)
}

/// The `analyze` report as text: the Section 6 fragment, one line per
/// definition with its spine-summary parameter, and one entry per reduce
/// instruction with the class the executor acts on and the reason.
pub fn analyze_table(verdict: &Classification, report: &InterprocReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fragment: {}\n  {}\n",
        verdict.fragment, verdict.explanation
    ));
    out.push_str("spine summaries:\n");
    for s in &report.spines {
        match &s.spine_param {
            Some(p) => out.push_str(&format!("  {}: spine parameter `{p}`\n", s.def)),
            None => out.push_str(&format!("  {}: no spine parameter\n", s.def)),
        }
    }
    if report.folds.is_empty() {
        out.push_str("folds: none\n");
        return out;
    }
    out.push_str("folds:\n");
    for f in &report.folds {
        let place = match &f.def {
            Some(d) => format!("{d} b{}", f.block),
            None => format!("b{}", f.block),
        };
        out.push_str(&format!(
            "  [{place}] {}{} class={} tier={}/{} cost={} order-independent={}\n      {}\n",
            if f.is_list { "list-" } else { "" },
            f.kind,
            f.class.label(),
            f.tier,
            f.acc_tier,
            f.unit_cost,
            if f.order_independent() { "yes" } else { "no" },
            f.reason,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_compiled, classify_program};
    use srl_core::dsl::*;
    use srl_core::{Lambda, Program};

    fn program() -> Program {
        Program::srl().define(
            "collect",
            ["S"],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        )
    }

    #[test]
    fn json_report_is_versioned_with_stable_field_order() {
        let program = program();
        let compiled = program.compile();
        let verdict = classify_program(&program, 1);
        let report = analyze_compiled(&compiled);
        let json = analyze_json(&verdict, &report);
        let v = json.find("\"v\": 1").unwrap();
        let fragment = json.find("\"fragment\"").unwrap();
        let defs = json.find("\"definitions\"").unwrap();
        let folds = json.find("\"folds\"").unwrap();
        assert!(v < fragment && fragment < defs && defs < folds, "{json}");
        assert!(json.contains("\"class\": \"proper-hom\""), "{json}");
        assert!(json.contains("\"order_independent\": true"), "{json}");
        // Extras land after the pinned report fields.
        let with = analyze_json_with(&verdict, &report, &[("id", "7".to_string())]);
        assert!(
            with.find("\"folds\"").unwrap() < with.find("\"id\": 7").unwrap(),
            "{with}"
        );
    }

    #[test]
    fn table_report_names_fragment_spines_and_folds() {
        let program = program();
        let compiled = program.compile();
        let verdict = classify_program(&program, 1);
        let report = analyze_compiled(&compiled);
        let table = analyze_table(&verdict, &report);
        assert!(table.contains("fragment:"), "{table}");
        assert!(table.contains("spine summaries:"), "{table}");
        assert!(table.contains("folds:"), "{table}");
        assert!(table.contains("class="), "{table}");
    }
}
