//! The parse stage of the compile pipeline: turns a [`Source`] (named text)
//! into a checked, compiled artifact by feeding the parser's output into
//! [`srl_core::pipeline::Pipeline`].
//!
//! `srl-core` deliberately has no dependency on the text syntax, so the
//! `Source → Program` step lives here as an extension trait on `Pipeline`:
//!
//! ```
//! use srl_core::pipeline::{Pipeline, Source};
//! use srl_syntax::frontend::TextFrontend;
//!
//! let source = Source::new("inline.srl", "singleton(x) = insert(x, emptyset)");
//! let artifact = Pipeline::new().compile_source(&source).unwrap();
//! let (v, _) = artifact
//!     .call("singleton", &[srl_core::Value::atom(3)])
//!     .unwrap();
//! assert_eq!(v, srl_core::Value::set([srl_core::Value::atom(3)]));
//! ```
//!
//! From the check stage on, text-built and DSL-built programs are
//! indistinguishable — same validation, same lowering, same evaluators,
//! byte-identical `EvalStats`.

use std::fmt;

use srl_core::error::CheckError;
use srl_core::pipeline::{Checked, Compiled, Pipeline, Source};
use srl_core::program::Program;

use crate::parser::{parse_program, Diagnostic, ParseError};

/// What can go wrong between a [`Source`] and a [`Compiled`] artifact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrontendError {
    /// The text did not parse; carries the structured span-bearing error.
    Parse(ParseError),
    /// The parsed program failed validation or type checking.
    Check(CheckError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Check(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<CheckError> for FrontendError {
    fn from(e: CheckError) -> Self {
        FrontendError::Check(e)
    }
}

impl FrontendError {
    /// Renders the error against its source: parse errors get the full
    /// caret-underlined [`Diagnostic`]; check errors (which have no spans —
    /// they are discovered on the AST) are prefixed with the source name.
    pub fn render(&self, source: &Source) -> String {
        match self {
            FrontendError::Parse(e) => e.to_diagnostic(&source.name, &source.text).to_string(),
            FrontendError::Check(e) => format!("error: {e}\n  --> {}", source.name),
        }
    }

    /// The parse diagnostic, when this is a parse error.
    pub fn diagnostic(&self, source: &Source) -> Option<Diagnostic> {
        match self {
            FrontendError::Parse(e) => Some(e.to_diagnostic(&source.name, &source.text)),
            FrontendError::Check(_) => None,
        }
    }
}

/// Extension trait adding the text entry point to
/// [`srl_core::pipeline::Pipeline`].
pub trait TextFrontend {
    /// Parses `source` into a [`Program`] (the pipeline's dialect override,
    /// if any, replaces the parser's permissive default) and runs the check
    /// stage.
    fn check_source(&self, source: &Source) -> Result<Checked, FrontendError>;

    /// Parses, checks and compiles `source` — the full
    /// `Source → Program → Checked → Compiled` path.
    fn compile_source(&self, source: &Source) -> Result<Compiled, FrontendError>;
}

impl TextFrontend for Pipeline {
    fn check_source(&self, source: &Source) -> Result<Checked, FrontendError> {
        let program: Program = parse_program(&source.text)?;
        Ok(self.check(program)?)
    }

    fn compile_source(&self, source: &Source) -> Result<Compiled, FrontendError> {
        let checked = self.check_source(source)?;
        Ok(self.compile(checked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::value::Value;
    use srl_core::ExecBackend;

    const MEMBER: &str = "\
member(S, t) =
  set-reduce(S, lambda(x, e) (x = e), lambda(found, acc) if found then true else acc, false, t)
";

    #[test]
    fn text_programs_compile_and_run() {
        let source = Source::new("member.srl", MEMBER);
        let artifact = Pipeline::new().compile_source(&source).unwrap();
        let set = Value::set([Value::atom(1), Value::atom(4), Value::atom(9)]);
        let (v, _) = artifact
            .call("member", &[set.clone(), Value::atom(4)])
            .unwrap();
        assert_eq!(v, Value::bool(true));
        let (v, _) = artifact.call("member", &[set, Value::atom(5)]).unwrap();
        assert_eq!(v, Value::bool(false));
    }

    #[test]
    fn text_and_dsl_programs_produce_identical_stats_on_both_backends() {
        use srl_core::dsl::*;
        let program = srl_core::Program::srl().define(
            "member",
            ["S", "t"],
            set_reduce(
                var("S"),
                lam("x", "e", eq(var("x"), var("e"))),
                lam("found", "acc", if_(var("found"), bool_(true), var("acc"))),
                bool_(false),
                var("t"),
            ),
        );
        let source = Source::new("member.srl", MEMBER);
        let set = Value::set((0..24).map(Value::atom));
        let args = [set, Value::atom(17)];
        for backend in [ExecBackend::TreeWalk, ExecBackend::vm()] {
            let pipeline = Pipeline::new().with_backend(backend);
            let from_text = pipeline.compile_source(&source).unwrap();
            let from_dsl = pipeline.prepare(program.clone()).unwrap();
            let (tv, ts) = from_text.call("member", &args).unwrap();
            let (dv, ds) = from_dsl.call("member", &args).unwrap();
            assert_eq!(tv, dv, "{backend:?}");
            assert_eq!(ts, ds, "{backend:?}: EvalStats must be byte-identical");
        }
    }

    #[test]
    fn parse_errors_render_with_source_name_and_caret() {
        let source = Source::new("broken.srl", "f(x) = insert(x, emptyset");
        let err = Pipeline::new().compile_source(&source).unwrap_err();
        let rendered = err.render(&source);
        assert!(rendered.contains("broken.srl"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
        assert!(err.diagnostic(&source).is_some());
    }

    #[test]
    fn check_errors_pass_through() {
        let source = Source::new("rec.srl", "f(x) = f(x)");
        let err = Pipeline::new().compile_source(&source).unwrap_err();
        assert!(matches!(
            err,
            FrontendError::Check(CheckError::RecursiveDefinition(_))
        ));
        assert!(err.render(&source).contains("rec.srl"));
    }
}
