//! Relational (database-style) workloads.
//!
//! The paper's motivation is database query and transaction languages, and
//! Fact 2.4 notes that the relational operators — select, project, join — are
//! all derivable in SRL. This module generates the classic employee/
//! department workload used by the E9 experiment and the examples: two
//! relations over a shared ordered domain, with tunable sizes, plus native
//! implementations of the queries the SRL programs are checked against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srl_core::value::Value;

/// One employee row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Employee {
    /// Employee id (atom rank).
    pub id: u64,
    /// Department id.
    pub dept: u64,
    /// Salary band (small integer, encoded as an atom).
    pub band: u64,
}

/// One department row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Department {
    /// Department id.
    pub id: u64,
    /// Manager's employee id.
    pub manager: u64,
}

/// The generated database: employees, departments, and the size of the
/// underlying ordered domain (all ids and bands are atoms below this bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompanyDatabase {
    /// Employee relation.
    pub employees: Vec<Employee>,
    /// Department relation.
    pub departments: Vec<Department>,
    /// Domain size (all atoms have rank < this).
    pub domain_size: u64,
}

impl CompanyDatabase {
    /// Generates a database with `num_employees` employees spread over
    /// `num_departments` departments and `bands` salary bands.
    pub fn generate(num_employees: usize, num_departments: usize, bands: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_departments = num_departments.max(1);
        // Atom layout: employee ids 0..E, department ids E..E+D,
        // bands E+D..E+D+bands.
        let e = num_employees as u64;
        let d = num_departments as u64;
        let employees: Vec<Employee> = (0..e)
            .map(|id| Employee {
                id,
                dept: e + rng.gen_range(0..d),
                band: e + d + rng.gen_range(0..bands.max(1)),
            })
            .collect();
        let departments: Vec<Department> = (0..d)
            .map(|i| Department {
                id: e + i,
                manager: if num_employees == 0 {
                    0
                } else {
                    rng.gen_range(0..e)
                },
            })
            .collect();
        CompanyDatabase {
            employees,
            departments,
            domain_size: e + d + bands.max(1),
        }
    }

    /// The employee relation as an SRL set of `[id, dept, band]` triples.
    pub fn employees_value(&self) -> Value {
        Value::set(
            self.employees.iter().map(|r| {
                Value::tuple([Value::atom(r.id), Value::atom(r.dept), Value::atom(r.band)])
            }),
        )
    }

    /// The department relation as an SRL set of `[id, manager]` pairs.
    pub fn departments_value(&self) -> Value {
        Value::set(
            self.departments
                .iter()
                .map(|r| Value::tuple([Value::atom(r.id), Value::atom(r.manager)])),
        )
    }

    /// The ordered domain `{d_0, …}` as an SRL set.
    pub fn domain_value(&self) -> Value {
        Value::set((0..self.domain_size).map(Value::atom))
    }

    /// Native query: ids of employees in the given department.
    pub fn employees_in_department(&self, dept: u64) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .employees
            .iter()
            .filter(|e| e.dept == dept)
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Native query: pairs (employee id, manager id) joining employees with
    /// the manager of their department.
    pub fn employee_manager_join(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for e in &self.employees {
            for d in &self.departments {
                if e.dept == d.id {
                    out.push((e.id, d.manager));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Native query: does every department have at least one employee?
    pub fn every_department_staffed(&self) -> bool {
        self.departments
            .iter()
            .all(|d| self.employees.iter().any(|e| e.dept == d.id))
    }

    /// Native query: number of employees in the highest salary band present.
    pub fn top_band_headcount(&self) -> usize {
        match self.employees.iter().map(|e| e.band).max() {
            None => 0,
            Some(top) => self.employees.iter().filter(|e| e.band == top).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded_and_sized() {
        let a = CompanyDatabase::generate(20, 4, 3, 7);
        let b = CompanyDatabase::generate(20, 4, 3, 7);
        assert_eq!(a, b);
        assert_eq!(a.employees.len(), 20);
        assert_eq!(a.departments.len(), 4);
        assert_eq!(a.domain_size, 20 + 4 + 3);
    }

    #[test]
    fn atom_ranges_are_disjoint() {
        let db = CompanyDatabase::generate(10, 3, 2, 1);
        for e in &db.employees {
            assert!(e.id < 10);
            assert!((10..13).contains(&e.dept));
            assert!((13..15).contains(&e.band));
        }
        for d in &db.departments {
            assert!((10..13).contains(&d.id));
            assert!(d.manager < 10);
        }
    }

    #[test]
    fn srl_encodings_have_expected_shapes() {
        let db = CompanyDatabase::generate(5, 2, 2, 3);
        assert_eq!(db.employees_value().len(), Some(5));
        assert_eq!(db.departments_value().len(), Some(2));
        assert_eq!(db.domain_value().len(), Some(db.domain_size as usize));
        for row in db.employees_value().as_set().unwrap() {
            assert_eq!(row.as_tuple().unwrap().len(), 3);
        }
    }

    #[test]
    fn native_queries_consistent() {
        let db = CompanyDatabase::generate(30, 5, 4, 11);
        // Every employee returned by the per-department query really is in
        // that department.
        for d in &db.departments {
            for id in db.employees_in_department(d.id) {
                let e = db.employees.iter().find(|e| e.id == id).unwrap();
                assert_eq!(e.dept, d.id);
            }
        }
        // The join contains exactly one manager per employee (departments
        // have unique ids).
        let join = db.employee_manager_join();
        assert_eq!(join.len(), db.employees.len());
        // Head-count of the top band is at least 1 when there are employees.
        assert!(db.top_band_headcount() >= 1);
    }

    #[test]
    fn staffing_check() {
        let db = CompanyDatabase {
            employees: vec![Employee {
                id: 0,
                dept: 2,
                band: 4,
            }],
            departments: vec![
                Department { id: 2, manager: 0 },
                Department { id: 3, manager: 0 },
            ],
            domain_size: 5,
        };
        assert!(!db.every_department_staffed());
        let db2 = CompanyDatabase {
            employees: vec![
                Employee {
                    id: 0,
                    dept: 2,
                    band: 4,
                },
                Employee {
                    id: 1,
                    dept: 3,
                    band: 4,
                },
            ],
            ..db
        };
        assert!(db2.every_department_staffed());
    }

    #[test]
    fn empty_database() {
        let db = CompanyDatabase::generate(0, 1, 1, 0);
        assert_eq!(db.employees.len(), 0);
        assert!(!db.every_department_staffed());
        assert_eq!(db.top_band_headcount(), 0);
        assert_eq!(db.employee_manager_join().len(), 0);
    }
}
