//! srl-fuzz — the fuzzing front door for the text pipeline.
//!
//! Throws three families of deterministic pseudo-random inputs at the full
//! `Source → parse → check → lower → run` path and asserts the robustness
//! contract end to end:
//!
//! * **no panic** — every input, however hostile, produces `Ok` or a
//!   structured error (`ParseError` / `CheckError` / `EvalError`), never an
//!   unwind out of the library;
//! * **parse ∘ print is a fixpoint** — any program the parser accepts
//!   re-parses from its canonical printing to the same canonical printing;
//! * **bounded execution** — accepted programs run their zero-parameter
//!   definitions under tight budgets plus a wall-clock deadline, so even an
//!   accidentally expensive generated program cannot wedge the harness.
//!
//! The input families:
//!
//! 1. **corpus mutation** — byte-level edits (flips, splices, deletions,
//!    duplications) of the embedded example programs;
//! 2. **token soup** — syntactically plausible token sequences with no
//!    grammatical intent;
//! 3. **nesting bombs** — expressions nested to around the parser's
//!    recursion cap, probing the depth guard from both sides.
//!
//! Deterministic by construction: iteration `i` of a run with seed `s` uses
//! an RNG seeded with `s + i`, so `SRL_FUZZ_SEED=... SRL_FUZZ_ITERS=...`
//! reproduces a failure exactly. Knobs:
//!
//! * `SRL_FUZZ_ITERS` — iterations (default 1000; CI smoke uses a few
//!   hundred, local soaks use 10k+);
//! * `SRL_FUZZ_SEED`  — base seed (default 0).
//!
//! Exit code 0 on a clean run, 1 with the offending input on stderr when
//! any iteration panics or breaks the fixpoint.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srl_core::pipeline::{Pipeline, Source};
use srl_core::EvalLimits;
use srl_syntax::frontend::TextFrontend;
use srl_syntax::{parse_expr, parse_program, print_expr, print_program};

/// Embedded seed corpus: the example programs ride in the binary so the
/// fuzzer needs no filesystem layout to be useful.
const CORPUS: &[&str] = &[
    include_str!("../../../examples/srl/membership.srl"),
    include_str!("../../../examples/srl/powerset.srl"),
    include_str!("../../../examples/srl/arith.srl"),
    include_str!("../../../examples/srl/apath.srl"),
    // Small handwritten seeds covering forms the examples underuse.
    "f(x) = let y = insert(x, emptyset) in [y, choose(y)]\n",
    "g(S) = set-reduce(S, lambda(x, t) (x = t), lambda(a, b) if a then true else b, false, choose(S))\n",
    "h(L) = list-reduce(L, lambda(x, t) x, lambda(a, b) cons(a, b), emptylist, emptyset)\n",
    "k(n) = (n + 1) * 2\n",
];

/// Vocabulary for the token-soup generator: every keyword, operator and
/// delimiter of the surface syntax plus a few identifiers and literals.
const VOCAB: &[&str] = &[
    "set-reduce",
    "list-reduce",
    "lambda",
    "if",
    "then",
    "else",
    "let",
    "in",
    "insert",
    "choose",
    "rest",
    "cons",
    "head",
    "tail",
    "new",
    "emptyset",
    "emptylist",
    "true",
    "false",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    ",",
    "=",
    "<=",
    "+",
    "*",
    ".",
    ".1",
    ".2",
    "x",
    "y",
    "S",
    "acc",
    "f",
    "main",
    "d0",
    "d1",
    "d42",
    "0",
    "1",
    "9999999999999999999999",
    "//",
    "\u{3bb}", // a non-ASCII byte sequence the lexer must reject cleanly
];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One mutated-corpus input: a random example with a handful of byte edits.
fn mutate_corpus(rng: &mut StdRng) -> String {
    let mut bytes = CORPUS[rng.gen_range(0..CORPUS.len())].as_bytes().to_vec();
    let edits = rng.gen_range(1..12usize);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        let at = rng.gen_range(0..bytes.len());
        match rng.gen_range(0..5u32) {
            // Flip a byte (possibly producing invalid UTF-8 — the lossy
            // conversion below folds that into the "weird input" bucket).
            0 => bytes[at] = bytes[at].wrapping_add(rng.gen_range(1..255u8)),
            // Delete a span.
            1 => {
                let end = (at + rng.gen_range(1..8usize)).min(bytes.len());
                bytes.drain(at..end);
            }
            // Insert a random vocabulary word.
            2 => {
                let word = VOCAB[rng.gen_range(0..VOCAB.len())];
                bytes.splice(at..at, word.bytes());
            }
            // Duplicate a span onto a random position.
            3 => {
                let end = (at + rng.gen_range(1..16usize)).min(bytes.len());
                let span: Vec<u8> = bytes[at..end].to_vec();
                let dest = rng.gen_range(0..bytes.len());
                bytes.splice(dest..dest, span);
            }
            // Truncate.
            _ => bytes.truncate(at),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// One token-soup input: plausible tokens, no grammar.
fn token_soup(rng: &mut StdRng) -> String {
    let words = rng.gen_range(1..120usize);
    let mut out = String::new();
    // Sometimes shape it like a definition so it gets past the prelude.
    if rng.gen_bool(0.5) {
        out.push_str("main() = ");
    }
    for _ in 0..words {
        out.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        if rng.gen_bool(0.7) {
            out.push(' ');
        }
    }
    out
}

/// One nesting bomb: open-delimiters stacked to around the parser's depth
/// cap, sometimes balanced, sometimes left hanging.
fn nesting_bomb(rng: &mut StdRng) -> String {
    let open = ["(", "{", "[", "<", "insert(", "if ("];
    let close = [")", "}", "]", ">", ", emptyset)", ") then x else x"];
    let pick = rng.gen_range(0..open.len());
    let depth = rng.gen_range(1..400usize);
    let mut out = String::from("main() = ");
    for _ in 0..depth {
        out.push_str(open[pick]);
    }
    out.push('x');
    if rng.gen_bool(0.7) {
        for _ in 0..depth {
            out.push_str(close[pick]);
        }
    }
    out
}

/// What one iteration observed (for the closing tally).
#[derive(Default)]
struct Tally {
    parsed: u64,
    rejected: u64,
    ran: u64,
    eval_errors: u64,
}

/// Exercises one input through the whole pipeline. Everything here returns
/// structured errors by contract; any panic unwinds to the caller's
/// `catch_unwind` and fails the run.
fn exercise(input: &str, tally: &mut Tally) {
    // Expression path: parse and, on accept, check the printer fixpoint.
    if let Ok(expr) = parse_expr(input) {
        let printed = print_expr(&expr);
        let reparsed = parse_expr(&printed).unwrap_or_else(|e| {
            panic!("printed expression no longer parses: {e:?}\nprinted: {printed}")
        });
        assert_eq!(
            printed,
            print_expr(&reparsed),
            "parse ∘ print is not a fixpoint for expressions"
        );
    }

    // Program path.
    let program = match parse_program(input) {
        Ok(program) => program,
        Err(_) => {
            tally.rejected += 1;
            return;
        }
    };
    tally.parsed += 1;
    let printed = print_program(&program);
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("printed program no longer parses: {e:?}\nprinted: {printed}"));
    assert_eq!(
        printed,
        print_program(&reparsed),
        "parse ∘ print is not a fixpoint for programs"
    );

    // Accepted programs must also check + lower + run without panicking.
    // Tight budgets and a deadline keep even an exponential accident quick.
    let limits = EvalLimits::small()
        .with_max_steps(200_000)
        .with_deadline_ms(50);
    let pipeline = Pipeline::new().with_limits(limits);
    let source = Source::new("<fuzz>", input.to_string());
    let artifact = match pipeline.compile_source(&source) {
        Ok(artifact) => artifact,
        Err(_) => return, // structured check error: fine
    };
    let callable: Vec<String> = artifact
        .program()
        .defs
        .iter()
        .filter(|def| def.params.is_empty())
        .map(|def| def.name.clone())
        .collect();
    for name in callable {
        match artifact.call(&name, &[]) {
            Ok(_) => tally.ran += 1,
            Err(_) => tally.eval_errors += 1, // structured: fine
        }
    }
}

fn main() -> ExitCode {
    let iters = env_u64("SRL_FUZZ_ITERS", 1000);
    let seed = env_u64("SRL_FUZZ_SEED", 0);

    // The harness prints its own report on failure; the default per-panic
    // backtrace noise would bury it.
    std::panic::set_hook(Box::new(|_| {}));

    let mut tally = Tally::default();
    for i in 0..iters {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i));
        let input = match rng.gen_range(0..3u32) {
            0 => mutate_corpus(&mut rng),
            1 => token_soup(&mut rng),
            _ => nesting_bomb(&mut rng),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| exercise(&input, &mut tally)));
        if let Err(payload) = outcome {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            eprintln!("srl-fuzz: iteration {i} (seed {seed}) PANICKED: {detail}");
            eprintln!("--- offending input ({} bytes) ---", input.len());
            eprintln!("{input}");
            eprintln!(
                "--- reproduce with SRL_FUZZ_SEED={seed} SRL_FUZZ_ITERS={} ---",
                i + 1
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "srl-fuzz: {iters} iterations clean (seed {seed}): {} parsed, {} rejected, {} ran, {} structured eval errors",
        tally.parsed, tally.rejected, tally.ran, tally.eval_errors
    );
    ExitCode::SUCCESS
}
