//! Property-style tests on the core invariants.
//!
//! The build runs offline (no proptest), so these drive the same properties
//! with a small deterministic case generator: a SplitMix64 stream per test
//! seed, 64 cases per property — failures print the generating seed so the
//! case can be replayed exactly.

use srl_core::dsl::*;
use srl_core::eval::eval_expr;
use srl_core::{BigNat, Env, EvalLimits, Value};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::{difference, intersection, member, set_eq, subset, union};
use srl_stdlib::hom;
use workloads::orderings::DomainRenaming;

const CASES: u64 = 64;

/// Deterministic case stream (SplitMix64 — same construction as the vendored
/// `rand` shim, but independent of it so core invariants don't depend on the
/// shim's stream).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A vector of up to 9 atom ranks drawn from `0..24` (duplicates kept, as
    /// proptest's `vec(0u64..24, 0..10)` would produce).
    fn small_set(&mut self) -> Vec<u64> {
        let len = self.below(10);
        (0..len).map(|_| self.below(24)).collect()
    }
}

fn eval(expr: &srl_core::Expr, env: &Env) -> Value {
    eval_expr(expr, env, EvalLimits::default()).expect("evaluation succeeds")
}

#[test]
fn bignat_addition_is_commutative_and_matches_u64() {
    let mut g = Gen::new(1);
    for case in 0..CASES {
        let a = g.below(1_000_000);
        let b = g.below(1_000_000);
        let x = BigNat::from_u64(a);
        let y = BigNat::from_u64(b);
        assert_eq!(x.add(&y), y.add(&x), "case {case}: a={a} b={b}");
        assert_eq!(x.add(&y).to_u64(), Some(a + b), "case {case}: a={a} b={b}");
        assert_eq!(x.mul(&y), y.mul(&x), "case {case}: a={a} b={b}");
    }
}

#[test]
fn bignat_shifts_invert() {
    let mut g = Gen::new(2);
    for case in 0..CASES {
        let a = g.next_u64();
        let k = g.below(100) as usize;
        let x = BigNat::from_u64(a);
        assert_eq!(x.shl(k).shr(k), x, "case {case}: a={a} k={k}");
    }
}

#[test]
fn srl_union_is_commutative_idempotent_and_matches_native() {
    let mut g = Gen::new(3);
    for case in 0..CASES {
        let a = g.small_set();
        let b = g.small_set();
        let env = Env::new()
            .bind("A", atom_set(a.clone()))
            .bind("B", atom_set(b.clone()));
        let ab = eval(&union(var("A"), var("B")), &env);
        let ba = eval(&union(var("B"), var("A")), &env);
        assert_eq!(ab, ba, "case {case}: a={a:?} b={b:?}");
        let native: std::collections::BTreeSet<u64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(ab.len(), Some(native.len()), "case {case}: a={a:?} b={b:?}");
        let aa = eval(&union(var("A"), var("A")), &env);
        assert_eq!(aa, atom_set(a.clone()), "case {case}: a={a:?}");
    }
}

#[test]
fn srl_set_algebra_matches_native() {
    let mut g = Gen::new(4);
    for case in 0..CASES {
        let a = g.small_set();
        let b = g.small_set();
        let env = Env::new()
            .bind("A", atom_set(a.clone()))
            .bind("B", atom_set(b.clone()));
        let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
        let inter = eval(&intersection(var("A"), var("B")), &env);
        assert_eq!(
            inter,
            atom_set(sa.intersection(&sb).copied().collect::<Vec<_>>()),
            "case {case}: a={a:?} b={b:?}"
        );
        let diff = eval(&difference(var("A"), var("B")), &env);
        assert_eq!(
            diff,
            atom_set(sa.difference(&sb).copied().collect::<Vec<_>>()),
            "case {case}: a={a:?} b={b:?}"
        );
        let sub = eval(&subset(var("A"), var("B")), &env);
        assert_eq!(sub, Value::bool(sa.is_subset(&sb)), "case {case}");
        let eq_sets = eval(&set_eq(var("A"), var("B")), &env);
        assert_eq!(eq_sets, Value::bool(sa == sb), "case {case}");
    }
}

#[test]
fn srl_membership_matches_native() {
    let mut g = Gen::new(5);
    for case in 0..CASES {
        let a = g.small_set();
        let probe = g.below(24);
        let env = Env::new().bind("A", atom_set(a.clone()));
        let v = eval(&member(atom(probe), var("A")), &env);
        assert_eq!(
            v,
            Value::bool(a.contains(&probe)),
            "case {case}: a={a:?} probe={probe}"
        );
    }
}

#[test]
fn proper_hom_queries_are_invariant_under_renaming() {
    let mut g = Gen::new(6);
    for case in 0..CASES {
        let a = g.small_set();
        let seed = g.below(1000);
        let s = atom_set(a.clone());
        let renaming = DomainRenaming::random(24, seed);
        let env = Env::new().bind("S", s.clone());
        let renamed_env = Env::new().bind("S", renaming.apply(&s));
        // EVEN via proper hom: same boolean either way.
        assert_eq!(
            eval(&hom::even(var("S")), &env),
            eval(&hom::even(var("S")), &renamed_env),
            "case {case}: a={a:?} seed={seed}"
        );
        // Union-style rebuild corresponds modulo the renaming.
        let rebuilt = eval(&union(var("S"), empty_set()), &env);
        let rebuilt_renamed = eval(&union(var("S"), empty_set()), &renamed_env);
        assert_eq!(
            renaming.apply(&rebuilt),
            rebuilt_renamed,
            "case {case}: a={a:?} seed={seed}"
        );
    }
}

#[test]
fn basrl_arithmetic_matches_native_addition() {
    let mut g = Gen::new(7);
    for case in 0..CASES {
        let n = 6 + g.below(18);
        let a = g.below(12) % n;
        let b = g.below(12) % n;
        let program = srl_stdlib::arith::arithmetic_program();
        let (value, _) = srl_core::eval::run_program(
            &program,
            srl_stdlib::arith::names::ADD,
            &[srl_stdlib::arith::domain(n), Value::atom(a), Value::atom(b)],
            EvalLimits::benchmark(),
        )
        .unwrap();
        assert_eq!(
            value,
            Value::atom((a + b).min(n - 1)),
            "case {case}: n={n} a={a} b={b}"
        );
    }
}

#[test]
fn evaluation_is_deterministic() {
    let mut g = Gen::new(8);
    for case in 0..CASES {
        let a = g.small_set();
        let env = Env::new().bind("A", atom_set(a.clone()));
        let q = hom::count(var("A"));
        let program = srl_core::Program::new(srl_core::Dialect::full());
        let mut ev1 = srl_core::Evaluator::new(&program, EvalLimits::default());
        let mut ev2 = srl_core::Evaluator::new(&program, EvalLimits::default());
        assert_eq!(
            ev1.eval(&q, &env).unwrap(),
            ev2.eval(&q, &env).unwrap(),
            "case {case}: a={a:?}"
        );
    }
}
