//! String interning: compact `u32` symbols for variable and function names.
//!
//! The evaluator never compares strings on its hot path: the lowering pass in
//! [`crate::lower`] resolves every `Expr::Var` to a frame-slot index and every
//! `Expr::Call` to a definition index at program-build time. The
//! [`SymbolTable`] built alongside keeps the original spellings so that
//! diagnostics, the printers in `srl-syntax`, and debugging output can map
//! the numeric form back to names.

use std::collections::HashMap;
use std::fmt;

/// An interned name: an index into a [`SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A two-way map between names and [`Symbol`]s.
///
/// Interning the same string twice returns the same symbol; resolution is an
/// indexed lookup. The table is append-only.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// The symbol for `name`, if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The spelling of `sym`.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no name has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        let a2 = t.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "x");
        assert_eq!(t.resolve(b), "y");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("f"), None);
        let f = t.intern("f");
        assert_eq!(t.lookup("f"), Some(f));
    }

    #[test]
    fn iteration_in_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn symbol_display() {
        assert_eq!(Symbol(3).to_string(), "s3");
    }
}
