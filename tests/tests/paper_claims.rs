//! Cross-crate integration tests: each test exercises one of the paper's
//! claims end to end, crossing at least two crates (the SRL construction on
//! one side and a native baseline on the other).

use fo_logic::formula::library::agap_sentence;
use fo_logic::{eval_sentence, Structure};
use srl_analysis::{classify_program, Fragment};
use srl_core::eval::run_program;
use srl_core::{EvalLimits, Value};
use srl_integration_tests::atom_set;
use srl_stdlib::agap::{apath_program, names as agap_names};
use srl_stdlib::arith::{arithmetic_program, domain, names as arith_names};
use srl_stdlib::perm::{names as perm_names, padded_domain, perm_program};
use srl_stdlib::primrec_compile::{compile as compile_pr, eval_compiled};
use srl_stdlib::tm_sim::{self, names as tm_names};
use workloads::altgraph::AlternatingGraph;
use workloads::permutation::IteratedProductInstance;

#[test]
fn theorem_3_10_agap_agrees_with_lfp_and_native_solver() {
    let program = apath_program();
    for seed in 0..3u64 {
        let g = AlternatingGraph::random(6, 0.3, seed);
        let (srl, _) = run_program(
            &program,
            agap_names::AGAP,
            &[g.nodes_value(), g.edges_value(), g.ands_value()],
            EvalLimits::benchmark(),
        )
        .unwrap();
        let native = g.agap();
        let structure = Structure::from_alternating_graph(g.n, &g.edges, &g.universal);
        let lfp = eval_sentence(&structure, &agap_sentence());
        assert_eq!(srl, Value::bool(native), "seed {seed}");
        assert_eq!(lfp, native, "seed {seed}");
    }
}

#[test]
fn theorem_4_13_permutation_product_in_basrl_with_bounded_accumulator() {
    let program = perm_program();
    assert_eq!(classify_program(&program, 1).fragment, Fragment::Basrl);
    let instance = IteratedProductInstance::random(5, 5, 3);
    let product = instance.product();
    for point in 0..5usize {
        let (value, stats) = run_program(
            &program,
            perm_names::IP,
            &[
                padded_domain(&instance),
                instance.to_srl_value(),
                Value::atom(point as u64),
            ],
            EvalLimits::benchmark(),
        )
        .unwrap();
        assert_eq!(
            value.as_tuple().unwrap()[1],
            Value::atom(product.apply(point) as u64)
        );
        assert!(stats.max_accumulator_weight <= 8);
    }
}

#[test]
fn lemma_4_6_bit_agrees_with_the_fo_bit_predicate() {
    let program = arithmetic_program();
    let n = 16u64;
    for a in [3u64, 9, 13] {
        for i in 0..4u64 {
            let (value, _) = run_program(
                &program,
                arith_names::BIT,
                &[domain(n), Value::atom(i), Value::atom(a)],
                EvalLimits::benchmark(),
            )
            .unwrap();
            // Compare against the fo-logic BIT predicate on a structure of
            // the same universe size.
            let structure = Structure::from_digraph(n as usize, &[]);
            let fo_bit = fo_logic::eval(
                &structure,
                &fo_logic::Formula::Bit(
                    fo_logic::Term::Const(i as usize),
                    fo_logic::Term::Const(a as usize),
                ),
                &fo_logic::Assignment::new(),
            );
            assert_eq!(value, Value::bool(fo_bit), "BIT({i}, {a})");
        }
    }
}

#[test]
fn theorem_5_2_compiled_primitive_recursion_matches_ground_truth() {
    use machines::primrec::library;
    for (term, args) in [
        (library::add(), vec![6u64, 7]),
        (library::mul(), vec![3, 5]),
        (library::monus(), vec![4, 9]),
        (library::factorial(), vec![4]),
    ] {
        let compiled = compile_pr(&term).unwrap();
        let expected = term.eval_u64(&args).unwrap().to_u64().unwrap();
        let got = eval_compiled(&compiled, &args, EvalLimits::benchmark()).unwrap();
        assert_eq!(got, expected, "{args:?}");
    }
}

#[test]
fn proposition_6_2_simulation_matches_machine_on_both_library_machines() {
    use machines::tm::library::{copy_input, encode_word, even_parity};
    for machine in [even_parity(), copy_input()] {
        let program = tm_sim::compile(&machine);
        for word in ["ab", "aab", "abba"] {
            let input = encode_word(word);
            let native = machine.accepts(&input, 10_000);
            let (value, _) = run_program(
                &program,
                tm_names::ACCEPTS,
                &[
                    tm_sim::position_domain(input.len()),
                    tm_sim::encode_input(&input),
                ],
                EvalLimits::benchmark(),
            )
            .unwrap();
            assert_eq!(value, Value::bool(native), "{} on {word:?}", machine.name);
        }
    }
}

#[test]
fn section_6_classifier_places_the_paper_programs_in_their_fragments() {
    assert_eq!(
        classify_program(&arithmetic_program(), 1).fragment,
        Fragment::Basrl
    );
    assert_eq!(
        classify_program(&apath_program(), 1).fragment,
        Fragment::Srl
    );
    assert_eq!(
        classify_program(&srl_stdlib::blowup::powerset_program(), 1).fragment,
        Fragment::UnrestrictedSrl
    );
    assert_eq!(
        classify_program(&srl_stdlib::blowup::lrl_doubling_program(), 0).fragment,
        Fragment::PrimitiveRecursive
    );
}

#[test]
fn section_7_order_verdicts_match_renaming_behaviour() {
    use srl_analysis::{analyze_order_dependence, OrderVerdict};
    use srl_core::dsl::var;
    use srl_core::{Env, Program};
    use srl_stdlib::hom;

    let program = Program::srl();
    let env = Env::new()
        .bind("S", atom_set([1, 6, 11]))
        .bind("P", atom_set([11]));
    assert_eq!(
        analyze_order_dependence(&program, &hom::even(var("S")), &env, 16, 8),
        OrderVerdict::ProvedIndependent
    );
    assert!(matches!(
        analyze_order_dependence(
            &program,
            &hom::purple_first(var("S"), var("P")),
            &env,
            16,
            16
        ),
        OrderVerdict::ProvedDependent { .. }
    ));
}

#[test]
fn proposition_3_3_closure_under_fo_interpretations() {
    // Reduce plain reachability to AGAP via the interpretation library, and
    // check that the SRL AGAP program answers the reachability question.
    use fo_logic::interpretation::library::reachability_to_agap;
    use workloads::digraph::Digraph;

    let program = apath_program();
    for (graph, expected) in [
        (Digraph::path(5), true),
        (Digraph::new(5, [(1, 0), (2, 1), (3, 2), (4, 3)]), false),
    ] {
        let source = Structure::from_digraph(graph.n, &graph.edges);
        let reduced = reachability_to_agap().apply(&source);
        // Rebuild an AlternatingGraph from the reduced structure.
        let edges: Vec<(usize, usize)> = reduced.tuples("E").map(|t| (t[0], t[1])).collect();
        let universal: Vec<bool> = (0..reduced.universe)
            .map(|v| reduced.holds("A", &[v]))
            .collect();
        let alt = AlternatingGraph::new(reduced.universe, edges, universal);
        let (value, _) = run_program(
            &program,
            agap_names::AGAP,
            &[alt.nodes_value(), alt.edges_value(), alt.ands_value()],
            EvalLimits::benchmark(),
        )
        .unwrap();
        assert_eq!(value, Value::bool(expected));
    }
}
