//! Derived operators (Fact 2.4).
//!
//! "Finite set functions such as union, intersection, difference, membership;
//! predicates for universal and existential quantification such as forall,
//! forsome; and relational operators such as join, project and select can be
//! expressed in SRL." This module expresses them: every function here is a
//! *builder* that assembles the corresponding SRL expression from
//! sub-expressions (and, for the higher-order ones, from a [`Lambda`]). The
//! built expressions use only the SRL core operators, so anything constructed
//! from them stays inside whatever dialect the surrounding program claims.
//!
//! Naming convention for generated lambda parameters: every builder uses
//! fresh-looking names prefixed with `__` to avoid capturing the caller's
//! variables; callers should avoid `__`-prefixed names in their own
//! expressions.

use srl_core::ast::{Expr, Lambda};
use srl_core::dsl::*;

/// `member(x, S)`: true iff `x ∈ S`, by scanning `S` and or-ing equality
/// with the element passed through `extra`.
pub fn member(element: Expr, set: Expr) -> Expr {
    set_reduce(
        set,
        lam(
            "__m_elem",
            "__m_target",
            eq(var("__m_elem"), var("__m_target")),
        ),
        lam("__m_hit", "__m_acc", or(var("__m_hit"), var("__m_acc"))),
        bool_(false),
        element,
    )
}

/// `union(A, B) = A ∪ B`: fold `insert` of A's elements starting from B.
pub fn union(a: Expr, b: Expr) -> Expr {
    set_reduce(
        a,
        Lambda::identity(),
        lam(
            "__u_elem",
            "__u_acc",
            insert(var("__u_elem"), var("__u_acc")),
        ),
        b,
        empty_set(),
    )
}

/// `intersection(A, B) = A ∩ B`: keep the elements of A that are members of
/// B (B is threaded through `extra`).
pub fn intersection(a: Expr, b: Expr) -> Expr {
    set_reduce(
        a,
        lam(
            "__i_elem",
            "__i_other",
            tuple([var("__i_elem"), member(var("__i_elem"), var("__i_other"))]),
        ),
        lam(
            "__i_pair",
            "__i_acc",
            if_(
                sel(var("__i_pair"), 2),
                insert(sel(var("__i_pair"), 1), var("__i_acc")),
                var("__i_acc"),
            ),
        ),
        empty_set(),
        b,
    )
}

/// `difference(A, B) = A \ B`.
pub fn difference(a: Expr, b: Expr) -> Expr {
    set_reduce(
        a,
        lam(
            "__d_elem",
            "__d_other",
            tuple([var("__d_elem"), member(var("__d_elem"), var("__d_other"))]),
        ),
        lam(
            "__d_pair",
            "__d_acc",
            if_(
                sel(var("__d_pair"), 2),
                var("__d_acc"),
                insert(sel(var("__d_pair"), 1), var("__d_acc")),
            ),
        ),
        empty_set(),
        b,
    )
}

/// `forsome(S, p, extra)`: ∃x ∈ S. p(x, extra). The predicate is an
/// arbitrary two-parameter lambda (element, extra) returning a boolean.
pub fn forsome(set: Expr, predicate: Lambda, extra: Expr) -> Expr {
    set_reduce(
        set,
        predicate,
        lam("__fs_hit", "__fs_acc", or(var("__fs_hit"), var("__fs_acc"))),
        bool_(false),
        extra,
    )
}

/// `forall(S, p, extra)`: ∀x ∈ S. p(x, extra).
pub fn forall(set: Expr, predicate: Lambda, extra: Expr) -> Expr {
    set_reduce(
        set,
        predicate,
        lam("__fa_ok", "__fa_acc", and(var("__fa_ok"), var("__fa_acc"))),
        bool_(true),
        extra,
    )
}

/// `subset(A, B)`: every element of A is a member of B.
pub fn subset(a: Expr, b: Expr) -> Expr {
    forall(
        a,
        lam(
            "__s_elem",
            "__s_other",
            member(var("__s_elem"), var("__s_other")),
        ),
        b,
    )
}

/// Set equality expressed in SRL (the paper's equality axiom covers only the
/// base types, so equality of sets must be built): `A ⊆ B ∧ B ⊆ A`.
pub fn set_eq(a: Expr, b: Expr) -> Expr {
    and(subset(a.clone(), b.clone()), subset(b, a))
}

/// `select(S, p, extra)`: the subset of S whose elements satisfy the
/// predicate.
pub fn select(set: Expr, predicate: Lambda, extra: Expr) -> Expr {
    // app returns [element, keep?]; acc inserts when the flag is true.
    let pred_body = *predicate.body;
    let app = lam(
        predicate.x.clone(),
        predicate.y.clone(),
        tuple([var(predicate.x.clone()), pred_body]),
    );
    set_reduce(
        set,
        app,
        lam(
            "__sel_pair",
            "__sel_acc",
            if_(
                sel(var("__sel_pair"), 2),
                insert(sel(var("__sel_pair"), 1), var("__sel_acc")),
                var("__sel_acc"),
            ),
        ),
        empty_set(),
        extra,
    )
}

/// `map_set(S, f, extra)`: the image of S under the per-element function
/// (a "project" in its most general form).
pub fn map_set(set: Expr, f: Lambda, extra: Expr) -> Expr {
    set_reduce(
        set,
        f,
        lam(
            "__map_out",
            "__map_acc",
            insert(var("__map_out"), var("__map_acc")),
        ),
        empty_set(),
        extra,
    )
}

/// `project(S, i)`: the set of i-th components of the tuples of S
/// (1-based, as in the paper's `project(…, from)`).
pub fn project(set: Expr, component: usize) -> Expr {
    map_set(
        set,
        lam("__p_tuple", "__p_extra", sel(var("__p_tuple"), component)),
        empty_set(),
    )
}

/// `cartesian(A, B)`: the set of pairs `[a, b]`.
pub fn cartesian(a: Expr, b: Expr) -> Expr {
    set_reduce(
        a,
        // For each element of A build {[a, b] | b ∈ B}…
        lam(
            "__c_a",
            "__c_bs",
            map_set(
                var("__c_bs"),
                lam("__c_b", "__c_aa", tuple([var("__c_aa"), var("__c_b")])),
                var("__c_a"),
            ),
        ),
        // …and union the slices together.
        lam(
            "__c_slice",
            "__c_acc",
            union(var("__c_slice"), var("__c_acc")),
        ),
        empty_set(),
        b,
    )
}

/// `join(A, B, p, combine)`: the paper's θ-join —
/// `{ combine(a, b) | a ∈ A, b ∈ B, p(a, b) }`. The predicate and combiner
/// both receive `(a, b)` as their two parameters.
pub fn join(a: Expr, b: Expr, predicate: Lambda, combine: Lambda) -> Expr {
    // Build the cartesian product, select with the predicate applied to the
    // pair, then map the combiner over the survivors.
    let pred_on_pair = lam(
        "__j_pair",
        "__j_unused",
        substitute_pair(predicate, "__j_pair"),
    );
    let combine_on_pair = lam(
        "__j_pair2",
        "__j_unused2",
        substitute_pair(combine, "__j_pair2"),
    );
    map_set(
        select(cartesian(a, b), pred_on_pair, empty_set()),
        combine_on_pair,
        empty_set(),
    )
}

/// Rewrites a two-parameter lambda body so that its parameters become the
/// two components of a single pair variable.
fn substitute_pair(lambda: Lambda, pair_var: &str) -> Expr {
    let body = *lambda.body;
    let_in(
        lambda.x,
        sel(var(pair_var), 1),
        let_in(lambda.y, sel(var(pair_var), 2), body),
    )
}

/// The n-ary union of a set of sets — needs set-height 2 on its *input*, so
/// it lives outside plain SRL; used by the powerset example.
pub fn big_union(set_of_sets: Expr) -> Expr {
    set_reduce(
        set_of_sets,
        Lambda::identity(),
        lam(
            "__bu_set",
            "__bu_acc",
            union(var("__bu_set"), var("__bu_acc")),
        ),
        empty_set(),
        empty_set(),
    )
}

/// `is_empty(S)`: true iff S has no elements (no equality on sets needed).
pub fn is_empty(set: Expr) -> Expr {
    forall(set, lam("__e_elem", "__e_extra", bool_(false)), empty_set())
}

/// `singleton(x)`: the set `{x}`.
pub fn singleton(x: Expr) -> Expr {
    insert(x, empty_set())
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dialect::Dialect;
    use srl_core::eval::eval_expr;
    use srl_core::limits::EvalLimits;
    use srl_core::program::{Env, Program};
    use srl_core::typecheck::check_expr;
    use srl_core::types::Type;
    use srl_core::value::Value;

    fn eval(expr: &Expr, env: &Env) -> Value {
        eval_expr(expr, env, EvalLimits::default()).expect("evaluation should succeed")
    }

    fn atoms(items: impl IntoIterator<Item = u64>) -> Value {
        Value::set(items.into_iter().map(Value::atom))
    }

    fn env_ab(a: impl IntoIterator<Item = u64>, b: impl IntoIterator<Item = u64>) -> Env {
        Env::new().bind("A", atoms(a)).bind("B", atoms(b))
    }

    #[test]
    fn member_checks_containment() {
        let env = Env::new().bind("S", atoms([1, 4, 9]));
        assert_eq!(eval(&member(atom(4), var("S")), &env), Value::bool(true));
        assert_eq!(eval(&member(atom(5), var("S")), &env), Value::bool(false));
        assert_eq!(
            eval(&member(atom(5), empty_set()), &Env::new()),
            Value::bool(false)
        );
    }

    #[test]
    fn member_works_on_tuples() {
        let env = Env::new().bind(
            "E",
            Value::set([
                Value::tuple([Value::atom(0), Value::atom(1)]),
                Value::tuple([Value::atom(1), Value::atom(2)]),
            ]),
        );
        let probe = member(tuple([atom(1), atom(2)]), var("E"));
        assert_eq!(eval(&probe, &env), Value::bool(true));
        let probe = member(tuple([atom(2), atom(1)]), var("E"));
        assert_eq!(eval(&probe, &env), Value::bool(false));
    }

    #[test]
    fn union_intersection_difference() {
        let env = env_ab([1, 2, 3], [3, 4]);
        assert_eq!(eval(&union(var("A"), var("B")), &env), atoms([1, 2, 3, 4]));
        assert_eq!(eval(&intersection(var("A"), var("B")), &env), atoms([3]));
        assert_eq!(eval(&difference(var("A"), var("B")), &env), atoms([1, 2]));
        assert_eq!(eval(&difference(var("B"), var("A")), &env), atoms([4]));
        // Identities with the empty set.
        let env = env_ab([1, 2], []);
        assert_eq!(eval(&union(var("A"), var("B")), &env), atoms([1, 2]));
        assert_eq!(eval(&intersection(var("A"), var("B")), &env), atoms([]));
        assert_eq!(eval(&difference(var("A"), var("B")), &env), atoms([1, 2]));
    }

    #[test]
    fn quantifier_builders() {
        let env = Env::new()
            .bind("S", atoms([2, 4, 6]))
            .bind("t", Value::atom(4));
        let all_even_spaced = forall(var("S"), lam("x", "e", leq(atom(1), var("x"))), empty_set());
        assert_eq!(eval(&all_even_spaced, &env), Value::bool(true));
        let some_is_t = forsome(var("S"), lam("x", "t", eq(var("x"), var("t"))), var("t"));
        assert_eq!(eval(&some_is_t, &env), Value::bool(true));
        let all_are_t = forall(var("S"), lam("x", "t", eq(var("x"), var("t"))), var("t"));
        assert_eq!(eval(&all_are_t, &env), Value::bool(false));
        // Vacuous truth / falsity on the empty set.
        assert_eq!(
            eval(
                &forall(empty_set(), lam("x", "e", bool_(false)), empty_set()),
                &Env::new()
            ),
            Value::bool(true)
        );
        assert_eq!(
            eval(
                &forsome(empty_set(), lam("x", "e", bool_(true)), empty_set()),
                &Env::new()
            ),
            Value::bool(false)
        );
    }

    #[test]
    fn subset_and_set_equality() {
        let env = env_ab([1, 2], [1, 2, 3]);
        assert_eq!(eval(&subset(var("A"), var("B")), &env), Value::bool(true));
        assert_eq!(eval(&subset(var("B"), var("A")), &env), Value::bool(false));
        assert_eq!(eval(&set_eq(var("A"), var("B")), &env), Value::bool(false));
        let env = env_ab([1, 2], [1, 2]);
        assert_eq!(eval(&set_eq(var("A"), var("B")), &env), Value::bool(true));
    }

    #[test]
    fn select_and_project() {
        let env = Env::new().bind(
            "E",
            Value::set([
                Value::tuple([Value::atom(0), Value::atom(5)]),
                Value::tuple([Value::atom(1), Value::atom(5)]),
                Value::tuple([Value::atom(2), Value::atom(7)]),
            ]),
        );
        // select: keep tuples whose second component is 5.
        let sel5 = select(
            var("E"),
            lam("t", "e", eq(sel(var("t"), 2), atom(5))),
            empty_set(),
        );
        let v = eval(&sel5, &env);
        assert_eq!(v.len(), Some(2));
        // project onto the first component.
        let firsts = project(var("E"), 1);
        assert_eq!(eval(&firsts, &env), atoms([0, 1, 2]));
        // project onto the second collapses duplicates.
        let seconds = project(var("E"), 2);
        assert_eq!(eval(&seconds, &env), atoms([5, 7]));
        // Composition: project(select(…)).
        let firsts_of_sel = project(sel5, 1);
        assert_eq!(eval(&firsts_of_sel, &env), atoms([0, 1]));
    }

    #[test]
    fn cartesian_product() {
        let env = env_ab([0, 1], [5, 6]);
        let v = eval(&cartesian(var("A"), var("B")), &env);
        assert_eq!(v.len(), Some(4));
        assert!(v
            .as_set()
            .unwrap()
            .contains(&Value::tuple([Value::atom(0), Value::atom(6)])));
        assert!(v
            .as_set()
            .unwrap()
            .contains(&Value::tuple([Value::atom(1), Value::atom(5)])));
    }

    #[test]
    fn join_matches_nested_loop_semantics() {
        // Join employees [id, dept] with departments [dept, manager] on
        // equal dept, producing [id, manager].
        let env = Env::new()
            .bind(
                "EMP",
                Value::set([
                    Value::tuple([Value::atom(0), Value::atom(10)]),
                    Value::tuple([Value::atom(1), Value::atom(11)]),
                    Value::tuple([Value::atom(2), Value::atom(10)]),
                ]),
            )
            .bind(
                "DEPT",
                Value::set([
                    Value::tuple([Value::atom(10), Value::atom(1)]),
                    Value::tuple([Value::atom(11), Value::atom(2)]),
                ]),
            );
        let joined = join(
            var("EMP"),
            var("DEPT"),
            lam("e", "d", eq(sel(var("e"), 2), sel(var("d"), 1))),
            lam("e", "d", tuple([sel(var("e"), 1), sel(var("d"), 2)])),
        );
        let v = eval(&joined, &env);
        let expected = Value::set([
            Value::tuple([Value::atom(0), Value::atom(1)]),
            Value::tuple([Value::atom(1), Value::atom(2)]),
            Value::tuple([Value::atom(2), Value::atom(1)]),
        ]);
        assert_eq!(v, expected);
    }

    #[test]
    fn emptiness_and_singleton() {
        assert_eq!(eval(&is_empty(empty_set()), &Env::new()), Value::bool(true));
        let env = Env::new().bind("S", atoms([3]));
        assert_eq!(eval(&is_empty(var("S")), &env), Value::bool(false));
        assert_eq!(eval(&singleton(atom(3)), &Env::new()), atoms([3]));
    }

    #[test]
    fn big_union_flattens() {
        let env = Env::new().bind(
            "SS",
            Value::set([
                Value::set([Value::atom(1), Value::atom(2)]),
                Value::set([Value::atom(2), Value::atom(3)]),
                Value::empty_set(),
            ]),
        );
        assert_eq!(eval(&big_union(var("SS")), &env), atoms([1, 2, 3]));
    }

    #[test]
    fn derived_operators_typecheck_in_srl() {
        // The Fact 2.4 operators stay inside the SRL dialect (set-height 1).
        let program = Program::new(Dialect::srl());
        let rel = Type::relation(2);
        let set_ty = Type::set_of(Type::Atom);
        let inputs = vec![
            ("A".to_string(), set_ty.clone()),
            ("B".to_string(), set_ty.clone()),
            ("E".to_string(), rel),
        ];
        assert_eq!(
            check_expr(&program, &union(var("A"), var("B")), &inputs),
            Ok(set_ty.clone())
        );
        assert_eq!(
            check_expr(&program, &intersection(var("A"), var("B")), &inputs),
            Ok(set_ty.clone())
        );
        assert_eq!(
            check_expr(&program, &member(atom(0), var("A")), &inputs),
            Ok(Type::Bool)
        );
        assert_eq!(
            check_expr(&program, &subset(var("A"), var("B")), &inputs),
            Ok(Type::Bool)
        );
        assert_eq!(
            check_expr(&program, &project(var("E"), 1), &inputs),
            Ok(set_ty)
        );
    }

    #[test]
    fn quantifiers_match_native_on_random_sets() {
        // Cross-check forsome/forall against native iterators on a few
        // deterministic pseudo-random sets.
        for seed in 0..5u64 {
            let items: Vec<u64> = (0..8).map(|i| (i * 7 + seed * 3) % 16).collect();
            let env = Env::new()
                .bind("S", atoms(items.clone()))
                .bind("t", Value::atom(9));
            let some9 = forsome(var("S"), lam("x", "t", eq(var("x"), var("t"))), var("t"));
            let native_some = items.contains(&9);
            assert_eq!(eval(&some9, &env), Value::bool(native_some), "seed {seed}");
            let all_below_16 = forall(var("S"), lam("x", "t", leq(var("x"), atom(15))), var("t"));
            assert_eq!(eval(&all_below_16, &env), Value::bool(true));
        }
    }
}
