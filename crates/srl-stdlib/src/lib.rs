//! # srl-stdlib — every program in the paper, rebuilt as SRL expressions
//!
//! The paper's constructive results are programs written in (fragments of)
//! the set-reduce language. This crate reconstructs all of them on top of
//! `srl-core`, as Rust builders that return [`srl_core::Expr`] values or
//! whole [`srl_core::Program`]s:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`derived`] | Fact 2.4 — union, intersection, difference, membership, forall/forsome, select, project, join |
//! | [`agap`] | Lemma 3.6 — APATH / AGAP in SRL (the constructive half of `P = ℒ(SRL)`) |
//! | [`blowup`] | Example 3.12 — `powerset` at set-height 2; the LRL 2ⁿ blow-up |
//! | [`tc`] | Section 4 — the `TC` and `DTC` combinators (`SRFO+TC = NL`, `SRFO+DTC = L`) |
//! | [`arith`] | Proposition 4.5, Lemma 4.6 — increment/decrement/ADD/MULT/EXP/SHIFT/PARITY/REM/BIT in BASRL |
//! | [`perm`] | Lemma 4.10 — iterated permutation multiplication IMₛₙ in BASRL |
//! | [`primrec_compile`] | Theorem 5.2 (i) — compiling primitive recursion into SRL + new |
//! | [`tm_sim`] | Proposition 6.2, Corollary 6.3 — compiling Turing machines into width-2 SRL expressions |
//! | [`hom`] | Section 7 — the `hom` operator, counting and EVEN via proper hom, and the order-dependent `Purple(First(S))` |
//!
//! Each module's tests compare the SRL construction against the native
//! baselines in the `workloads`, `machines` and `fo-logic` crates; the
//! benchmark harness (`srl-bench`) sweeps them over growing inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agap;
pub mod arith;
pub mod blowup;
pub mod derived;
pub mod hom;
pub mod perm;
pub mod primrec_compile;
pub mod tc;
pub mod tm_sim;
