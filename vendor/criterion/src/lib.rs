//! Offline shim for the subset of the `criterion` crate API this workspace's
//! benches use (`cargo bench` with no registry access — see `vendor/README.md`).
//!
//! It really measures: each benchmark runs `warm_up_time` of warm-up
//! iterations, then `sample_size` timed samples of adaptively-batched
//! iterations for `measurement_time`, and prints min/median/mean per-iteration
//! wall-clock times. There are no plots and no regression statistics.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("srl_powerset", 8)` renders as `srl_powerset/8`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it `batch` times and accumulating the total.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.batch;
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_name = format!("{}/{}", self.name, id);
        // Warm-up: also estimates the per-iteration cost to size batches.
        let mut bencher = Bencher {
            batch: 1,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        if bencher.iters == 0 {
            // `f` never called `iter`; nothing to measure.
            println!("{full_name:<48} (no iterations)");
            return self;
        }
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher, input);
        }
        let per_iter = bencher.elapsed.div_f64(bencher.iters.max(1) as f64);
        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        let batch = (per_sample.as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
            .ceil()
            .clamp(1.0, 1e9) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                batch,
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b, input);
            if b.iters > 0 {
                samples.push(b.elapsed.div_f64(b.iters as f64));
            }
        }
        samples.sort_unstable();
        if let (Some(min), Some(&median)) = (samples.first(), samples.get(samples.len() / 2)) {
            let mean = samples
                .iter()
                .sum::<Duration>()
                .div_f64(samples.len() as f64);
            println!(
                "{full_name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples × {} iters)",
                min, median, mean, samples.len(), batch
            );
            self.criterion
                .results
                .push((full_name, median.as_secs_f64()));
        }
        self
    }

    /// Runs one benchmark without a parameterised input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let unit = ();
        self.bench_with_input(BenchmarkId::new(name, "-"), &unit, |b, _| f(b))
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(full name, median seconds per iteration)` for every benchmark run.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Top-level single benchmark, mirroring `Criterion::bench_function`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(name, f);
        self
    }
}

/// Declares the benchmark entry points, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim_self_test");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(5))
                .measurement_time(Duration::from_millis(15));
            g.bench_with_input(BenchmarkId::new("sum", 100u64), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.contains("sum/100"));
        assert!(c.results[0].1 > 0.0);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
