//! Lowering: from the name-based [`Expr`] AST to a flat, slot-indexed IR.
//!
//! The surface AST refers to variables and functions by string name; the
//! seed evaluator resolved both with reverse linear scans on every access
//! (`Env` lookup per `Var`, `Program::lookup` plus a **deep clone of the
//! callee's body** per `Call`). This module removes all of that from the hot
//! path with a single compile pass at program-build time:
//!
//! * every variable becomes [`LExpr::Local`]: an index into the current
//!   frame of the evaluator's value stack, computed lexically — `let`,
//!   lambda parameters and definition parameters each occupy one slot, in
//!   binding order, exactly mirroring the evaluator's push/pop discipline;
//! * every call becomes [`LExpr::Call`] with the callee's *definition index*;
//!   the evaluator borrows the compiled body — nothing is cloned;
//! * every name is interned into a [`SymbolTable`](crate::intern::SymbolTable)
//!   so diagnostics and the `srl-syntax` printers can recover spellings;
//! * the lowered tree lives in a single **arena** (`Vec<LExpr>`, children
//!   addressed by [`LId`]), not in per-node boxes: one allocation per
//!   program instead of one per node, and the interpreter walks contiguous
//!   memory.
//!
//! Lowering is **infallible** and preserves the seed evaluator's dynamic
//! error behaviour exactly: an unbound variable or unknown function lowers to
//! a poison node ([`LExpr::UnboundVar`] / [`LExpr::CallUnknown`]) that raises
//! the same `EvalError` **only if it is actually evaluated** — a dangling
//! name in a dead `if` branch goes unnoticed, just as it did when resolution
//! happened at run time. Static rejection of such programs remains the job of
//! [`Program::validate`](crate::program::Program::validate) and the type
//! checker.
//!
//! The lowered tree mirrors the surface AST node-for-node, so the evaluator
//! charges the same steps, depths and allocation counters in the same order:
//! all `EvalStats` are byte-identical to the pre-lowering evaluator.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use crate::ast::{Expr, Lambda};
use crate::bignat::BigNat;
use crate::bytecode::{codegen_expr, codegen_program, Chunk};
use crate::dialect::Dialect;
use crate::intern::{Symbol, SymbolTable};
use crate::program::Program;
use crate::types::Type;
use crate::value::Value;

/// The id of a lowered node: an index into its arena (the
/// [`CompiledProgram`]'s node table, or a [`LoweredExpr`]'s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LId(pub u32);

impl LId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A lowered two-parameter lambda: the parameter names are gone (they became
/// the top two slots of the frame at application time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LLambda {
    /// Lowered body node.
    pub body: LId,
}

/// A lowered expression. Mirrors [`Expr`] node-for-node; children are arena
/// ids. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub enum LExpr {
    /// `true` / `false`.
    Bool(bool),
    /// A constant value (cloning it is O(1) thanks to `Arc` payloads).
    Const(Value),
    /// A variable resolved to a frame slot: `locals[frame_base + n]`.
    Local(u32),
    /// A variable that was not in scope at lowering time; raises
    /// `EvalError::UnboundVariable` with the original spelling if evaluated.
    UnboundVar(String),
    /// `if b then e1 else e2`.
    If(LId, LId, LId),
    /// Tuple construction.
    Tuple(Vec<LId>),
    /// Component selection, 1-based.
    Sel(usize, LId),
    /// Equality.
    Eq(LId, LId),
    /// Domain order.
    Leq(LId, LId),
    /// `emptyset`.
    EmptySet,
    /// `insert(e, s)`.
    Insert(LId, LId),
    /// `set-reduce(s, app, acc, base, extra)`.
    SetReduce {
        /// The set to traverse.
        set: LId,
        /// Applied to `(element, extra)` for each element.
        app: LLambda,
        /// Combines `(app result, recursive result)`.
        acc: LLambda,
        /// Value for the empty set.
        base: LId,
        /// Extra value threaded to every `app` application.
        extra: LId,
    },
    /// `choose(s)`.
    Choose(LId),
    /// `rest(s)`.
    Rest(LId),
    /// A call resolved to a definition index of the compiled program.
    Call {
        /// Index into [`CompiledProgram::defs`].
        def: u32,
        /// Argument expressions, in order.
        args: Vec<LId>,
    },
    /// A call to a name with no definition; raises
    /// `EvalError::UnknownFunction` if evaluated (before touching the
    /// arguments, as the seed evaluator did).
    CallUnknown(String),
    /// `let … = value in body`; the binding's slot is implicit (top of
    /// frame while `body` runs).
    Let {
        /// Bound value.
        value: LId,
        /// Body with the binding pushed.
        body: LId,
    },
    /// `new(s)`.
    New(LId),
    /// A natural-number constant.
    NatConst(BigNat),
    /// `succ(e)`.
    Succ(LId),
    /// `e1 + e2` on naturals.
    NatAdd(LId, LId),
    /// `e1 * e2` on naturals.
    NatMul(LId, LId),
    /// The empty list.
    EmptyList,
    /// `cons(e, l)`.
    Cons(LId, LId),
    /// `head(l)`.
    Head(LId),
    /// `tail(l)`.
    Tail(LId),
    /// `list-reduce(l, app, acc, base, extra)`.
    ListReduce {
        /// The list to traverse.
        list: LId,
        /// Applied to `(element, extra)` for each element.
        app: LLambda,
        /// Combines `(app result, recursive result)`.
        acc: LLambda,
        /// Value for the empty list.
        base: LId,
        /// Extra value threaded to every `app` application.
        extra: LId,
    },
}

/// A compiled definition: interned name, parameter symbols, lowered body.
#[derive(Clone, Debug)]
pub struct CompiledDef {
    /// Interned definition name.
    pub name: Symbol,
    /// Interned parameter names, in slot order.
    pub params: Vec<Symbol>,
    /// Declared parameter types, in slot order (`None` for untyped
    /// parameters). Carried down from [`crate::program::Param::ty`] so
    /// codegen's shape inference ([`crate::tier`]) can prove `set(atom)`
    /// operands and stamp the columnar storage tier on fused folds. Purely
    /// advisory: a wrong declaration can only cost the tier fast path,
    /// never correctness (the representation widens itself at run time).
    pub param_types: Vec<Option<Type>>,
    /// Root of the lowered body in the program's node arena; its frame is
    /// exactly the parameter slots.
    pub body: LId,
}

/// A stand-alone expression lowered against a program: its own node arena
/// plus the root id (see [`CompiledProgram::lower_expr`]).
///
/// The expression also records the **scope** (the frame names, outermost
/// first) it was lowered against: slot indices are positional, so an
/// environment used with
/// [`Evaluator::eval_lowered`](crate::eval::Evaluator::eval_lowered) must
/// bind exactly these names in this order. The bytecode form (for the VM
/// backend) is generated lazily on first use and cached here.
#[derive(Clone, Debug)]
pub struct LoweredExpr {
    nodes: Vec<LExpr>,
    root: LId,
    scope: Vec<String>,
    code: OnceLock<Chunk>,
}

impl LoweredExpr {
    /// The node arena.
    pub fn nodes(&self) -> &[LExpr] {
        &self.nodes
    }

    /// The root node id.
    pub fn root(&self) -> LId {
        self.root
    }

    /// The root node.
    pub fn root_node(&self) -> &LExpr {
        &self.nodes[self.root.index()]
    }

    /// Resolves a node id.
    pub fn node(&self, id: LId) -> &LExpr {
        &self.nodes[id.index()]
    }

    /// The frame names this expression was lowered against, outermost
    /// binding first — the environment contract of `eval_lowered`.
    pub fn scope_names(&self) -> &[String] {
        &self.scope
    }

    /// The bytecode chunk for the VM backend, generated on first use.
    /// `program` must be the program this expression was lowered against
    /// (its calls are resolved through the program's chunk).
    pub fn code(&self, program: &CompiledProgram) -> &Chunk {
        self.code.get_or_init(|| codegen_expr(program, self))
    }
}

/// A [`Program`] lowered once at build time: slot-indexed bodies in one flat
/// arena, an indexed call graph, and the symbol table naming everything.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The dialect the program claims to live in.
    pub dialect: Dialect,
    nodes: Vec<LExpr>,
    defs: Vec<CompiledDef>,
    symbols: SymbolTable,
    def_index: HashMap<String, u32>,
    fingerprint: u64,
    code: OnceLock<Chunk>,
}

/// A structural fingerprint of a [`Program`]: dialect, definition names,
/// parameter names and bodies, hashed with a fixed (process-independent)
/// FNV-1a hasher. Two programs that fingerprint differently are structurally
/// different; `Evaluator::with_compiled` uses this to reject a mispaired
/// program/compiled pair in every build profile, not just under
/// `debug_assert`.
pub fn program_fingerprint(program: &Program) -> u64 {
    // Destructured without `..` on purpose: a new `Dialect` field must show
    // up here (compile error) rather than be silently excluded from the
    // mismatch check.
    let Dialect {
        name,
        allow_new,
        allow_lists,
        allow_nat,
        allow_nat_add,
        allow_nat_mul,
        max_set_height,
        bounded_accumulator,
    } = program.dialect;
    let mut hasher = Fnv1a::new();
    name.hash(&mut hasher);
    (
        allow_new,
        allow_lists,
        allow_nat,
        allow_nat_add,
        allow_nat_mul,
        max_set_height,
        bounded_accumulator,
    )
        .hash(&mut hasher);
    program.defs.len().hash(&mut hasher);
    for def in &program.defs {
        def.name.hash(&mut hasher);
        def.params.len().hash(&mut hasher);
        for p in &def.params {
            p.name.hash(&mut hasher);
        }
        def.body.hash(&mut hasher);
    }
    hasher.finish()
}

/// 64-bit FNV-1a. The standard library's `DefaultHasher` is explicitly not
/// guaranteed stable across Rust versions; fingerprints are only ever
/// compared in-process, but a fixed algorithm keeps them printable and
/// reproducible in diagnostics and golden tests.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl CompiledProgram {
    /// Compiles every definition of `program`. Infallible: dangling names
    /// lower to poison nodes that only fail if reached (see module docs).
    pub fn compile(program: &Program) -> Self {
        let mut symbols = SymbolTable::new();
        let mut def_index: HashMap<String, u32> = HashMap::new();
        // Index every definition name first so that bodies can resolve calls
        // in any order — the seed evaluator resolved calls at run time, when
        // the whole program was visible. (Duplicate names keep the first
        // definition, matching `Program::lookup`.)
        for (i, def) in program.defs.iter().enumerate() {
            symbols.intern(&def.name);
            def_index.entry(def.name.clone()).or_insert(i as u32);
        }
        let mut nodes = Vec::new();
        let defs = program
            .defs
            .iter()
            .map(|def| {
                let name = symbols.intern(&def.name);
                let params: Vec<Symbol> =
                    def.params.iter().map(|p| symbols.intern(&p.name)).collect();
                let param_types: Vec<Option<Type>> =
                    def.params.iter().map(|p| p.ty.clone()).collect();
                let mut scope: Vec<&str> = def.params.iter().map(|p| p.name.as_str()).collect();
                let body = lower(&def.body, &mut scope, &def_index, &mut nodes);
                CompiledDef {
                    name,
                    params,
                    param_types,
                    body,
                }
            })
            .collect();
        CompiledProgram {
            dialect: program.dialect,
            nodes,
            defs,
            symbols,
            def_index,
            fingerprint: program_fingerprint(program),
            code: OnceLock::new(),
        }
    }

    /// The program's bytecode chunk (one block per definition body) for the
    /// VM backend, generated on first use and shared by every evaluator
    /// holding this compiled program.
    pub fn code(&self) -> &Chunk {
        self.code.get_or_init(|| codegen_program(self))
    }

    /// The fingerprint of the [`Program`] this was compiled from (see
    /// [`program_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared node arena of every compiled definition body.
    pub fn nodes(&self) -> &[LExpr] {
        &self.nodes
    }

    /// Resolves a node id of the program arena.
    pub fn node(&self, id: LId) -> &LExpr {
        &self.nodes[id.index()]
    }

    /// The compiled definitions, in program order.
    pub fn defs(&self) -> &[CompiledDef] {
        &self.defs
    }

    /// The symbol table naming definitions and parameters.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The definition index for `name`, if defined (first definition wins,
    /// like `Program::lookup`).
    pub fn def_id(&self, name: &str) -> Option<u32> {
        self.def_index.get(name).copied()
    }

    /// The compiled definition for `name`.
    pub fn def_by_name(&self, name: &str) -> Option<&CompiledDef> {
        self.def_id(name).map(|i| &self.defs[i as usize])
    }

    /// The spelling of a definition's name.
    pub fn def_name(&self, def: &CompiledDef) -> &str {
        self.symbols.resolve(def.name)
    }

    /// Lowers a stand-alone expression against this program into its own
    /// arena. `scope` is the ambient frame, outermost binding first — for a
    /// top-level query these are the environment's input names; resolution
    /// scans from the end, so later bindings shadow earlier ones exactly
    /// like `Env::get`.
    ///
    /// Lowering depends on the scope's **names only**, never on values:
    /// every free name resolves here (to a slot, or to a poison node that
    /// errors only if evaluated), and the scope is recorded on the result so
    /// evaluation can assert the environment matches positionally.
    pub fn lower_expr(&self, expr: &Expr, scope: &[&str]) -> LoweredExpr {
        let recorded: Vec<String> = scope.iter().map(|s| s.to_string()).collect();
        let mut scope: Vec<&str> = scope.to_vec();
        let mut nodes = Vec::new();
        let root = lower(expr, &mut scope, &self.def_index, &mut nodes);
        LoweredExpr {
            nodes,
            root,
            scope: recorded,
            code: OnceLock::new(),
        }
    }
}

/// Lowers `expr` with `scope` as the current frame layout (innermost binding
/// last, borrowed from the AST — lowering allocates nothing per binder),
/// appending nodes to `nodes` post-order and returning the root id.
/// `def_index` resolves call targets.
fn lower<'a>(
    expr: &'a Expr,
    scope: &mut Vec<&'a str>,
    def_index: &HashMap<String, u32>,
    nodes: &mut Vec<LExpr>,
) -> LId {
    let lowered = match expr {
        Expr::Bool(b) => LExpr::Bool(*b),
        Expr::Const(v) => LExpr::Const(v.clone()),
        Expr::Var(name) => match scope.iter().rposition(|n| *n == name) {
            Some(slot) => LExpr::Local(slot as u32),
            None => LExpr::UnboundVar(name.clone()),
        },
        Expr::If(c, t, e) => {
            let c = lower(c, scope, def_index, nodes);
            let t = lower(t, scope, def_index, nodes);
            let e = lower(e, scope, def_index, nodes);
            LExpr::If(c, t, e)
        }
        Expr::Tuple(items) => LExpr::Tuple(
            items
                .iter()
                .map(|i| lower(i, scope, def_index, nodes))
                .collect(),
        ),
        Expr::Sel(i, e) => LExpr::Sel(*i, lower(e, scope, def_index, nodes)),
        Expr::Eq(a, b) => {
            let a = lower(a, scope, def_index, nodes);
            let b = lower(b, scope, def_index, nodes);
            LExpr::Eq(a, b)
        }
        Expr::Leq(a, b) => {
            let a = lower(a, scope, def_index, nodes);
            let b = lower(b, scope, def_index, nodes);
            LExpr::Leq(a, b)
        }
        Expr::EmptySet => LExpr::EmptySet,
        Expr::Insert(e, s) => {
            let e = lower(e, scope, def_index, nodes);
            let s = lower(s, scope, def_index, nodes);
            LExpr::Insert(e, s)
        }
        Expr::SetReduce {
            set,
            app,
            acc,
            base,
            extra,
        } => {
            let set = lower(set, scope, def_index, nodes);
            let app = lower_lambda(app, scope, def_index, nodes);
            let acc = lower_lambda(acc, scope, def_index, nodes);
            let base = lower(base, scope, def_index, nodes);
            let extra = lower(extra, scope, def_index, nodes);
            LExpr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            }
        }
        Expr::Choose(s) => LExpr::Choose(lower(s, scope, def_index, nodes)),
        Expr::Rest(s) => LExpr::Rest(lower(s, scope, def_index, nodes)),
        Expr::Call(name, args) => match def_index.get(name).copied() {
            Some(def) => LExpr::Call {
                def,
                args: args
                    .iter()
                    .map(|a| lower(a, scope, def_index, nodes))
                    .collect(),
            },
            None => LExpr::CallUnknown(name.clone()),
        },
        Expr::Let { name, value, body } => {
            let value = lower(value, scope, def_index, nodes);
            scope.push(name.as_str());
            let body = lower(body, scope, def_index, nodes);
            scope.pop();
            LExpr::Let { value, body }
        }
        Expr::New(s) => LExpr::New(lower(s, scope, def_index, nodes)),
        Expr::NatConst(n) => LExpr::NatConst(n.clone()),
        Expr::Succ(e) => LExpr::Succ(lower(e, scope, def_index, nodes)),
        Expr::NatAdd(a, b) => {
            let a = lower(a, scope, def_index, nodes);
            let b = lower(b, scope, def_index, nodes);
            LExpr::NatAdd(a, b)
        }
        Expr::NatMul(a, b) => {
            let a = lower(a, scope, def_index, nodes);
            let b = lower(b, scope, def_index, nodes);
            LExpr::NatMul(a, b)
        }
        Expr::EmptyList => LExpr::EmptyList,
        Expr::Cons(e, l) => {
            let e = lower(e, scope, def_index, nodes);
            let l = lower(l, scope, def_index, nodes);
            LExpr::Cons(e, l)
        }
        Expr::Head(l) => LExpr::Head(lower(l, scope, def_index, nodes)),
        Expr::Tail(l) => LExpr::Tail(lower(l, scope, def_index, nodes)),
        Expr::ListReduce {
            list,
            app,
            acc,
            base,
            extra,
        } => {
            let list = lower(list, scope, def_index, nodes);
            let app = lower_lambda(app, scope, def_index, nodes);
            let acc = lower_lambda(acc, scope, def_index, nodes);
            let base = lower(base, scope, def_index, nodes);
            let extra = lower(extra, scope, def_index, nodes);
            LExpr::ListReduce {
                list,
                app,
                acc,
                base,
                extra,
            }
        }
    };
    nodes.push(lowered);
    LId((nodes.len() - 1) as u32)
}

fn lower_lambda<'a>(
    lambda: &'a Lambda,
    scope: &mut Vec<&'a str>,
    def_index: &HashMap<String, u32>,
    nodes: &mut Vec<LExpr>,
) -> LLambda {
    // Application pushes x then y onto the frame; mirror that layout.
    scope.push(&lambda.x);
    scope.push(&lambda.y);
    let body = lower(&lambda.body, scope, def_index, nodes);
    scope.pop();
    scope.pop();
    LLambda { body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn compile(p: &Program) -> CompiledProgram {
        CompiledProgram::compile(p)
    }

    #[test]
    fn vars_resolve_to_slots_with_shadowing() {
        let p = Program::srl();
        let c = compile(&p);
        // let a = …; let a = …; a  — the inner binding (slot 1) wins.
        let e = let_in("a", atom(1), let_in("a", atom(2), var("a")));
        let l = c.lower_expr(&e, &[]);
        match l.root_node() {
            LExpr::Let { body, .. } => match l.node(*body) {
                LExpr::Let { body, .. } => assert_eq!(l.node(*body), &LExpr::Local(1)),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ambient_scope_names_are_slots_zero_up() {
        let p = Program::srl();
        let c = compile(&p);
        let scope = ["S", "T"];
        assert_eq!(
            c.lower_expr(&var("S"), &scope).root_node(),
            &LExpr::Local(0)
        );
        assert_eq!(
            c.lower_expr(&var("T"), &scope).root_node(),
            &LExpr::Local(1)
        );
        assert_eq!(
            c.lower_expr(&var("U"), &scope).root_node(),
            &LExpr::UnboundVar("U".to_string())
        );
    }

    #[test]
    fn lambda_parameters_occupy_the_top_two_slots() {
        let p = Program::srl();
        let c = compile(&p);
        let e = set_reduce(
            var("S"),
            lam("x", "e", var("x")),
            lam("v", "acc", insert(var("v"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let scope = ["S"];
        let l = c.lower_expr(&e, &scope);
        match l.root_node() {
            LExpr::SetReduce { set, app, acc, .. } => {
                assert_eq!(l.node(*set), &LExpr::Local(0));
                // Frame: [S, x, e] — x is slot 1.
                assert_eq!(l.node(app.body), &LExpr::Local(1));
                // Frame: [S, v, acc] — insert(v@1, acc@2).
                match l.node(acc.body) {
                    LExpr::Insert(v, a) => {
                        assert_eq!(l.node(*v), &LExpr::Local(1));
                        assert_eq!(l.node(*a), &LExpr::Local(2));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn calls_resolve_to_first_definition_in_any_order() {
        // Forward references compile (the seed evaluator resolved them at
        // run time); `Program::validate` is what rejects them statically.
        let p = Program::srl()
            .define("f", ["x"], call("g", [var("x")]))
            .define("g", ["x"], var("x"));
        let c = compile(&p);
        match c.node(c.defs()[0].body) {
            LExpr::Call { def, args } => {
                assert_eq!(*def, 1);
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.def_id("f"), Some(0));
        assert_eq!(c.def_id("g"), Some(1));
        assert_eq!(c.def_id("h"), None);
        assert_eq!(c.def_name(&c.defs()[0]), "f");
    }

    #[test]
    fn unknown_calls_lower_to_poison_not_errors() {
        let p = Program::srl();
        let c = compile(&p);
        assert_eq!(
            c.lower_expr(&call("nope", [atom(1)]), &[]).root_node(),
            &LExpr::CallUnknown("nope".to_string())
        );
    }

    #[test]
    fn def_params_are_the_base_frame() {
        let p = Program::srl().define("pair", ["a", "b"], tuple([var("b"), var("a")]));
        let c = compile(&p);
        match c.node(c.defs()[0].body) {
            LExpr::Tuple(items) => {
                assert_eq!(c.node(items[0]), &LExpr::Local(1));
                assert_eq!(c.node(items[1]), &LExpr::Local(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.defs()[0].params.len(), 2);
        assert_eq!(c.symbols().resolve(c.defs()[0].params[0]), "a");
    }

    #[test]
    fn whole_program_lives_in_one_arena() {
        let p = Program::srl().define("id", ["x"], var("x")).define(
            "twice",
            ["x"],
            tuple([call("id", [var("x")]), var("x")]),
        );
        let c = compile(&p);
        // 1 node for `id`, 4 for `twice` (var, call, var, tuple).
        assert_eq!(c.nodes().len(), 5);
    }
}
