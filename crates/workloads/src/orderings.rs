//! Re-presenting inputs under a different element order.
//!
//! Section 7 of the paper is about what queries may legitimately depend on:
//! the implementation supplies an order on every type, `set-reduce` scans in
//! that order, and a query is *order-independent* when its answer does not
//! change if the same abstract database is presented with a different
//! underlying order. The mechanism here makes that testable: a
//! [`DomainRenaming`] is a permutation of atom ranks; applying it to every
//! input value re-presents the same abstract structure with a different
//! ordering, and comparing a query's results before and after (modulo the
//! renaming, for queries that *return* atoms) is exactly the paper's
//! order-(in)dependence criterion.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use srl_core::program::Env;
use srl_core::value::{Atom, Value};

/// A bijective renaming of atom ranks `0 .. n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainRenaming {
    forward: Vec<u64>,
}

impl DomainRenaming {
    /// The identity renaming on `n` atoms.
    pub fn identity(n: usize) -> Self {
        DomainRenaming {
            forward: (0..n as u64).collect(),
        }
    }

    /// A uniformly random renaming of `n` atoms.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut forward: Vec<u64> = (0..n as u64).collect();
        forward.shuffle(&mut rng);
        DomainRenaming { forward }
    }

    /// The renaming that reverses the order of `n` atoms.
    pub fn reversal(n: usize) -> Self {
        DomainRenaming {
            forward: (0..n as u64).rev().collect(),
        }
    }

    /// Builds a renaming from an explicit image vector; `None` if it is not a
    /// bijection.
    pub fn from_vec(forward: Vec<u64>) -> Option<Self> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            let idx = usize::try_from(v).ok()?;
            if idx >= n || seen[idx] {
                return None;
            }
            seen[idx] = true;
        }
        Some(DomainRenaming { forward })
    }

    /// Number of atoms covered.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True iff the renaming covers no atoms.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Image of a single atom rank (ranks outside the covered range are left
    /// unchanged, so labels and out-of-domain constants survive).
    pub fn rename_rank(&self, rank: u64) -> u64 {
        usize::try_from(rank)
            .ok()
            .and_then(|i| self.forward.get(i).copied())
            .unwrap_or(rank)
    }

    /// The inverse renaming.
    pub fn inverse(&self) -> DomainRenaming {
        let mut inv = vec![0u64; self.forward.len()];
        for (i, &v) in self.forward.iter().enumerate() {
            inv[v as usize] = i as u64;
        }
        DomainRenaming { forward: inv }
    }

    /// Applies the renaming to every atom occurring in a value. Because sets
    /// are stored sorted by value, the result is the same abstract set
    /// presented in a (generally) different traversal order.
    pub fn apply(&self, v: &Value) -> Value {
        match v {
            Value::Bool(_) | Value::Nat(_) => v.clone(),
            Value::Atom(a) => Value::Atom(Atom {
                index: self.rename_rank(a.index),
                name: a.name.clone(),
            }),
            Value::Tuple(items) => Value::tuple(items.iter().map(|i| self.apply(i))),
            Value::List(items) => Value::list(items.iter().map(|i| self.apply(i))),
            Value::Set(items) => Value::set(items.iter().map(|i| self.apply(&i))),
        }
    }

    /// Applies the renaming to every binding of an environment.
    pub fn apply_env(&self, env: &Env) -> Env {
        let mut out = Env::new();
        for (name, value) in env.iter() {
            out.insert(name.to_string(), self.apply(value));
        }
        out
    }
}

/// Compares a query result computed on the original input with one computed
/// on the renamed input: they *correspond* when renaming the first gives the
/// second. For boolean (and other atom-free) results this degenerates to
/// plain equality, which is the paper's notion of an order-independent query.
pub fn results_correspond(original: &Value, renamed: &Value, renaming: &DomainRenaming) -> bool {
    renaming.apply(original) == *renamed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_changes_nothing() {
        let r = DomainRenaming::identity(5);
        let v = Value::set([Value::atom(1), Value::atom(3)]);
        assert_eq!(r.apply(&v), v);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn reversal_flips_choose() {
        let r = DomainRenaming::reversal(10);
        let v = Value::set([Value::atom(1), Value::atom(3)]);
        let renamed = r.apply(&v);
        // {1, 3} becomes {8, 6}; the minimum element changes identity.
        assert_eq!(renamed, Value::set([Value::atom(6), Value::atom(8)]));
        assert_eq!(v.choose(), Some(Value::atom(1)));
        assert_eq!(renamed.choose(), Some(Value::atom(6)));
    }

    #[test]
    fn random_renaming_is_bijection_and_seeded() {
        let a = DomainRenaming::random(20, 3);
        let b = DomainRenaming::random(20, 3);
        assert_eq!(a, b);
        let mut images: Vec<u64> = (0..20).map(|i| a.rename_rank(i)).collect();
        images.sort_unstable();
        assert_eq!(images, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn inverse_roundtrips() {
        let r = DomainRenaming::random(16, 9);
        let inv = r.inverse();
        let v = Value::set((0..16).map(Value::atom));
        assert_eq!(inv.apply(&r.apply(&v)), v);
        for i in 0..16 {
            assert_eq!(inv.rename_rank(r.rename_rank(i)), i);
        }
    }

    #[test]
    fn from_vec_validates() {
        assert!(DomainRenaming::from_vec(vec![2, 0, 1]).is_some());
        assert!(DomainRenaming::from_vec(vec![2, 2, 1]).is_none());
        assert!(DomainRenaming::from_vec(vec![3, 0, 1]).is_none());
    }

    #[test]
    fn out_of_range_ranks_pass_through() {
        let r = DomainRenaming::reversal(4);
        assert_eq!(r.rename_rank(10), 10);
        assert_eq!(r.apply(&Value::atom(10)), Value::atom(10));
    }

    #[test]
    fn nested_values_are_renamed() {
        let r = DomainRenaming::from_vec(vec![1, 0]).unwrap();
        let v = Value::tuple([
            Value::atom(0),
            Value::set([Value::tuple([Value::atom(1), Value::bool(true)])]),
            Value::list([Value::atom(0), Value::atom(0)]),
            Value::nat(7),
        ]);
        let expected = Value::tuple([
            Value::atom(1),
            Value::set([Value::tuple([Value::atom(0), Value::bool(true)])]),
            Value::list([Value::atom(1), Value::atom(1)]),
            Value::nat(7),
        ]);
        assert_eq!(r.apply(&v), expected);
    }

    #[test]
    fn env_renaming() {
        let r = DomainRenaming::reversal(3);
        let env = Env::new()
            .bind("S", Value::set([Value::atom(0)]))
            .bind("x", Value::atom(2));
        let renamed = r.apply_env(&env);
        assert_eq!(renamed.get("S"), Some(&Value::set([Value::atom(2)])));
        assert_eq!(renamed.get("x"), Some(&Value::atom(0)));
    }

    #[test]
    fn correspondence_for_boolean_and_atom_results() {
        let r = DomainRenaming::reversal(5);
        // Boolean results must be equal on the nose.
        assert!(results_correspond(
            &Value::bool(true),
            &Value::bool(true),
            &r
        ));
        assert!(!results_correspond(
            &Value::bool(true),
            &Value::bool(false),
            &r
        ));
        // Atom-valued results correspond modulo the renaming.
        assert!(results_correspond(&Value::atom(0), &Value::atom(4), &r));
        assert!(!results_correspond(&Value::atom(0), &Value::atom(0), &r));
    }

    #[test]
    fn names_survive_renaming() {
        let r = DomainRenaming::reversal(2);
        let v = Value::named_atom(0, "alice");
        match r.apply(&v) {
            Value::Atom(a) => {
                assert_eq!(a.index, 1);
                assert_eq!(a.name.as_deref(), Some("alice"));
            }
            other => panic!("unexpected {other}"),
        }
    }
}
