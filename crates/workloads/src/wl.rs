//! Weisfeiler–Leman colour refinement.
//!
//! Theorem 7.7 rests on the Cai–Fürer–Immerman result that there are
//! polynomial-time order-independent properties not expressible in
//! (FO(wo≤) + LFP + count): the witnessing structures Gₙ, Hₙ "agree on all
//! sentences in (FO(wo≤) + count) containing at most n distinct variables".
//! Equivalence in k-variable counting logic coincides with
//! indistinguishability by (k−1)-dimensional Weisfeiler–Leman refinement, so
//! the empirical content of the theorem is:
//!
//! * 1-WL (and 2-WL) colour refinement cannot tell the CFI pair apart, while
//! * the pair is genuinely non-isomorphic (checked directly for the small
//!   instances we generate).
//!
//! This module implements classic 1-WL (vertex colour refinement) and 2-WL
//! (refinement on ordered pairs) for undirected graphs, plus the colour
//! histogram comparison used to declare two graphs WL-equivalent.

use std::collections::BTreeMap;

/// An undirected graph on vertices `0 .. n` with optional initial vertex
/// colours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColoredGraph {
    /// Number of vertices.
    pub n: usize,
    /// Adjacency lists (symmetric).
    pub adj: Vec<Vec<usize>>,
    /// Initial colour of each vertex.
    pub colors: Vec<u64>,
}

impl ColoredGraph {
    /// Builds a graph from an undirected edge list; all vertices start with
    /// colour 0.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adj = vec![Vec::new(); n];
        for (u, v) in edges {
            if u < n && v < n && u != v && !adj[u].contains(&v) {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        ColoredGraph {
            n,
            adj,
            colors: vec![0; n],
        }
    }

    /// Sets the initial colour of a vertex.
    pub fn set_color(&mut self, v: usize, color: u64) {
        if v < self.n {
            self.colors[v] = color;
        }
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// True iff `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adj[u].binary_search(&v).is_ok()
    }

    /// Degree sequence, sorted.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable();
        d
    }
}

/// The outcome of a refinement: the stable colours and how many rounds it
/// took to stabilise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Refinement {
    /// Final colour of each vertex (for 1-WL) or of each ordered pair indexed
    /// `u * n + v` (for 2-WL).
    pub colors: Vec<u64>,
    /// Number of refinement rounds until stability.
    pub rounds: usize,
}

impl Refinement {
    /// Histogram of colours (colour → multiplicity), the canonical
    /// comparison object: two graphs are WL-indistinguishable iff their
    /// stable histograms agree.
    pub fn histogram(&self) -> BTreeMap<u64, usize> {
        let mut h = BTreeMap::new();
        for &c in &self.colors {
            *h.entry(c).or_insert(0) += 1;
        }
        h
    }

    /// Number of distinct colours.
    pub fn color_classes(&self) -> usize {
        self.histogram().len()
    }
}

/// Canonicalises a multiset signature into a colour id using a shared
/// dictionary so that colours are comparable *across* graphs refined
/// together.
struct ColorDictionary {
    next: u64,
    table: BTreeMap<Vec<u64>, u64>,
}

impl ColorDictionary {
    fn new() -> Self {
        ColorDictionary {
            next: 0,
            table: BTreeMap::new(),
        }
    }

    fn intern(&mut self, signature: Vec<u64>) -> u64 {
        *self.table.entry(signature).or_insert_with(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }
}

/// Runs 1-WL on a single graph until the colouring stabilises.
pub fn refine_1wl(graph: &ColoredGraph) -> Refinement {
    refine_1wl_joint(std::slice::from_ref(graph))
        .pop()
        .expect("one input, one output")
}

/// Runs 1-WL on several graphs *jointly* (shared colour dictionary), so the
/// resulting colours are directly comparable. This is the form used to test
/// indistinguishability.
pub fn refine_1wl_joint(graphs: &[ColoredGraph]) -> Vec<Refinement> {
    let mut colorings: Vec<Vec<u64>> = graphs.iter().map(|g| g.colors.clone()).collect();
    let mut rounds = 0;
    loop {
        let mut dict = ColorDictionary::new();
        let mut next: Vec<Vec<u64>> = Vec::with_capacity(graphs.len());
        for (g, coloring) in graphs.iter().zip(&colorings) {
            let mut new_colors = Vec::with_capacity(g.n);
            for v in 0..g.n {
                let mut neighbour_colors: Vec<u64> =
                    g.adj[v].iter().map(|&u| coloring[u]).collect();
                neighbour_colors.sort_unstable();
                let mut signature = vec![coloring[v]];
                signature.extend(neighbour_colors);
                new_colors.push(dict.intern(signature));
            }
            next.push(new_colors);
        }
        rounds += 1;
        let stable = graphs
            .iter()
            .enumerate()
            .all(|(i, _)| partition_of(&next[i]) == partition_of(&colorings[i]));
        colorings = next;
        if stable || rounds > graphs.iter().map(|g| g.n).max().unwrap_or(0) + 1 {
            break;
        }
    }
    colorings
        .into_iter()
        .map(|colors| Refinement { colors, rounds })
        .collect()
}

/// Runs 2-WL (refinement on ordered pairs) on several graphs jointly.
pub fn refine_2wl_joint(graphs: &[ColoredGraph]) -> Vec<Refinement> {
    // Initial colour of a pair (u, v): (atp type) — whether u == v, whether
    // they are adjacent, plus the vertex colours.
    let mut colorings: Vec<Vec<u64>> = graphs
        .iter()
        .map(|g| {
            let mut init = Vec::with_capacity(g.n * g.n);
            let mut dict = BTreeMap::new();
            let mut next = 0u64;
            for u in 0..g.n {
                for v in 0..g.n {
                    let key = (u == v, g.has_edge(u, v), g.colors[u], g.colors[v]);
                    let id = *dict.entry(key).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    init.push(id);
                }
            }
            init
        })
        .collect();
    // Re-intern the initial colours jointly so they are comparable.
    {
        let mut dict = ColorDictionary::new();
        for (g, coloring) in graphs.iter().zip(&mut colorings) {
            for u in 0..g.n {
                for v in 0..g.n {
                    let key = vec![
                        u64::from(u == v),
                        u64::from(g.has_edge(u, v)),
                        g.colors[u],
                        g.colors[v],
                    ];
                    coloring[u * g.n + v] = dict.intern(key);
                }
            }
        }
    }
    let mut rounds = 0;
    loop {
        let mut dict = ColorDictionary::new();
        let mut next: Vec<Vec<u64>> = Vec::with_capacity(graphs.len());
        for (g, coloring) in graphs.iter().zip(&colorings) {
            let n = g.n;
            let mut new_colors = vec![0u64; n * n];
            for u in 0..n {
                for v in 0..n {
                    // Signature: own colour plus the sorted multiset of
                    // (colour(u, w), colour(w, v)) over all w.
                    let mut sig_pairs: Vec<(u64, u64)> = (0..n)
                        .map(|w| (coloring[u * n + w], coloring[w * n + v]))
                        .collect();
                    sig_pairs.sort_unstable();
                    let mut signature = vec![coloring[u * n + v]];
                    for (a, b) in sig_pairs {
                        signature.push(a);
                        signature.push(b);
                    }
                    new_colors[u * n + v] = dict.intern(signature);
                }
            }
            next.push(new_colors);
        }
        rounds += 1;
        let stable = graphs
            .iter()
            .enumerate()
            .all(|(i, _)| partition_of(&next[i]) == partition_of(&colorings[i]));
        colorings = next;
        if stable || rounds > graphs.iter().map(|g| g.n * g.n).max().unwrap_or(0) + 1 {
            break;
        }
    }
    colorings
        .into_iter()
        .map(|colors| Refinement { colors, rounds })
        .collect()
}

/// True iff 1-WL cannot distinguish the two graphs (their stable colour
/// histograms agree under a joint refinement).
pub fn wl1_equivalent(a: &ColoredGraph, b: &ColoredGraph) -> bool {
    if a.n != b.n {
        return false;
    }
    let refs = refine_1wl_joint(&[a.clone(), b.clone()]);
    refs[0].histogram() == refs[1].histogram()
}

/// True iff 2-WL cannot distinguish the two graphs.
pub fn wl2_equivalent(a: &ColoredGraph, b: &ColoredGraph) -> bool {
    if a.n != b.n {
        return false;
    }
    let refs = refine_2wl_joint(&[a.clone(), b.clone()]);
    refs[0].histogram() == refs[1].histogram()
}

/// A brute-force isomorphism test: cheap invariants (degree sequence,
/// connected-component size multiset, stable 1-WL histogram) followed by
/// backtracking over a BFS vertex ordering with colour-class pruning.
/// Exponential in the worst case; used only on small instances to certify
/// that WL-equivalent pairs really are (or are not) isomorphic.
pub fn isomorphic(a: &ColoredGraph, b: &ColoredGraph) -> bool {
    if a.n != b.n || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.degree_sequence() != b.degree_sequence() {
        return false;
    }
    if component_size_multiset(a) != component_size_multiset(b) {
        return false;
    }
    let refs = refine_1wl_joint(&[a.clone(), b.clone()]);
    if refs[0].histogram() != refs[1].histogram() {
        return false;
    }
    let colors_a = &refs[0].colors;
    let colors_b = &refs[1].colors;
    let order = bfs_order(a);
    let mut mapping: Vec<Option<usize>> = vec![None; a.n];
    let mut used = vec![false; b.n];
    backtrack(a, b, colors_a, colors_b, &order, 0, &mut mapping, &mut used)
}

/// Sorted multiset of connected-component sizes.
fn component_size_multiset(g: &ColoredGraph) -> Vec<usize> {
    let mut seen = vec![false; g.n];
    let mut sizes = Vec::new();
    for start in 0..g.n {
        if seen[start] {
            continue;
        }
        let mut size = 0;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in &g.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable();
    sizes
}

/// A vertex order in which each vertex (after the first of its component) is
/// adjacent to some earlier vertex — keeps the backtracking search pruned.
fn bfs_order(g: &ColoredGraph) -> Vec<usize> {
    let mut order = Vec::with_capacity(g.n);
    let mut seen = vec![false; g.n];
    for start in 0..g.n {
        if seen[start] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &g.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    a: &ColoredGraph,
    b: &ColoredGraph,
    colors_a: &[u64],
    colors_b: &[u64],
    order: &[usize],
    position: usize,
    mapping: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
) -> bool {
    if position == order.len() {
        return true;
    }
    let v = order[position];
    for candidate in 0..b.n {
        if used[candidate] || colors_a[v] != colors_b[candidate] {
            continue;
        }
        // Check consistency with already-mapped vertices.
        let consistent = order[..position].iter().all(|&u| {
            let mu = mapping[u].expect("mapped earlier in the order");
            a.has_edge(u, v) == b.has_edge(mu, candidate)
        });
        if !consistent {
            continue;
        }
        mapping[v] = Some(candidate);
        used[candidate] = true;
        if backtrack(a, b, colors_a, colors_b, order, position + 1, mapping, used) {
            return true;
        }
        mapping[v] = None;
        used[candidate] = false;
    }
    false
}

fn partition_of(colors: &[u64]) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, &c) in colors.iter().enumerate() {
        groups.entry(c).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> ColoredGraph {
        ColoredGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    fn two_triangles() -> ColoredGraph {
        ColoredGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn construction_ignores_duplicates_and_loops() {
        let g = ColoredGraph::from_edges(3, [(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn refinement_separates_different_degrees() {
        // A path has endpoints of degree 1, middles of degree 2.
        let p = ColoredGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = refine_1wl(&p);
        assert!(r.color_classes() >= 2);
        // The two endpoints share a colour; the two middles share a colour.
        assert_eq!(r.colors[0], r.colors[3]);
        assert_eq!(r.colors[1], r.colors[2]);
        assert_ne!(r.colors[0], r.colors[1]);
    }

    #[test]
    fn classic_1wl_blind_spot_c6_vs_2c3() {
        // The 6-cycle and two disjoint triangles are the textbook pair that
        // 1-WL cannot distinguish (both are 2-regular on 6 vertices)…
        let c6 = cycle(6);
        let tt = two_triangles();
        assert!(wl1_equivalent(&c6, &tt));
        // …but they are not isomorphic, and 2-WL does distinguish them.
        assert!(!isomorphic(&c6, &tt));
        assert!(!wl2_equivalent(&c6, &tt));
    }

    #[test]
    fn isomorphic_relabelled_graphs_detected() {
        let g = ColoredGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        // Same cycle with the labels rotated.
        let h = ColoredGraph::from_edges(5, [(2, 3), (3, 4), (4, 0), (0, 1), (1, 2)]);
        assert!(isomorphic(&g, &h));
        assert!(wl1_equivalent(&g, &h));
        assert!(wl2_equivalent(&g, &h));
    }

    #[test]
    fn different_sizes_never_equivalent() {
        assert!(!wl1_equivalent(&cycle(5), &cycle(6)));
        assert!(!wl2_equivalent(&cycle(5), &cycle(6)));
        assert!(!isomorphic(&cycle(5), &cycle(6)));
    }

    #[test]
    fn cycles_of_different_length_same_size_distinguished_by_edge_count() {
        let g = cycle(6);
        let h = ColoredGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(!isomorphic(&g, &h));
        assert!(!wl1_equivalent(&g, &h));
    }

    #[test]
    fn initial_colors_participate() {
        let mut g = cycle(4);
        let h = cycle(4);
        assert!(wl1_equivalent(&g, &h));
        g.set_color(0, 7);
        assert!(!wl1_equivalent(&g, &h));
        assert!(!isomorphic(&g, &h));
    }

    #[test]
    fn petersen_vs_its_relabelling_2wl() {
        // Petersen graph: vertices 0-4 outer cycle, 5-9 inner pentagram.
        let petersen = ColoredGraph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
            ],
        );
        // A relabelled copy (swap 0 ↔ 9, 1 ↔ 8).
        let relabel = |v: usize| match v {
            0 => 9,
            9 => 0,
            1 => 8,
            8 => 1,
            other => other,
        };
        let copy = ColoredGraph::from_edges(
            10,
            petersen
                .adj
                .iter()
                .enumerate()
                .flat_map(|(u, vs)| vs.iter().map(move |&v| (relabel(u), relabel(v)))),
        );
        assert!(isomorphic(&petersen, &copy));
        assert!(wl2_equivalent(&petersen, &copy));
    }

    #[test]
    fn degree_sequence_sorted() {
        let g = ColoredGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_sequence(), vec![1, 1, 1, 3]);
    }

    #[test]
    fn histogram_counts() {
        let r = refine_1wl(&cycle(4));
        let h = r.histogram();
        assert_eq!(h.values().sum::<usize>(), 4);
        // A cycle is vertex-transitive: everything one colour.
        assert_eq!(r.color_classes(), 1);
    }
}
