//! `srl` — the SRL command line.
//!
//! Drives the staged compile pipeline end to end from text: parse (with
//! caret diagnostics), check, compile, and run on either execution backend.
//!
//! ```text
//! srl run <file.srl> [--call NAME] [--arg VALUE]... [--backend vm|tree]
//!                    [--threads N] [--limits default|small|benchmark] [--json]
//! srl check <file.srl> [--json]
//! srl analyze <file.srl> [--json]
//! srl print <file.srl>
//! srl disasm <file.srl>
//! srl serve [--addr HOST:PORT] [--max-inflight N] [--cache-cap N]
//!           [--tenant-config FILE]
//! srl repl
//! ```
//!
//! `run` calls `--call NAME` (or a zero-parameter `main` definition) with
//! `--arg` values written in value-literal syntax (`d3`, `42`, `{d0, d1}`,
//! `[d1, d2]`, `<d1, d2>`); `--json` emits the versioned (`"v": 1`) body
//! defined by `srl_core::api` — the result and the `EvalStats` in a stable
//! field order, byte-identical across backends *and* across `--threads`
//! settings (CI diffs backend pairs and thread pairs), and the exact body
//! the `srl serve` line protocol returns for the same query.
//! `--threads N` shards provably order-insensitive `set-reduce` folds
//! across an `N`-worker pool (VM backend only; see `srl-core::parallel`).
//! The REPL accepts definitions (`f(x) = …`), input bindings
//! (`S := {d1, d2}`), and expressions over both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

use srl_core::api;
use srl_core::pipeline::{PipelineConfig, Source};
use srl_core::{EvalLimits, ExecBackend};
use srl_syntax::frontend::{FrontendError, TextFrontend};

mod repl;
mod serve_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    match command {
        "run" => run(rest),
        "check" => check(rest),
        "analyze" => analyze(rest),
        "print" => print_cmd(rest),
        "disasm" => disasm(rest),
        "serve" => serve_cmd::serve(rest),
        "repl" => repl::repl(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
srl — the set-reduce language of Immerman, Patnaik and Stemple (PODS 1991)

USAGE:
  srl run <file.srl> [--call NAME] [--arg VALUE]... [--backend vm|tree]
                     [--threads N] [--limits default|small|benchmark]
                     [--timeout-ms N] [--json]
  srl check <file.srl> [--json]   parse, validate, and classify a program
  srl analyze <file.srl> [--json] per-fold classification report: spine
                                  summaries, fold class, and the reason
  srl print <file.srl>            parse and re-print in canonical form
  srl disasm <file.srl>           show the VM bytecode of every definition
  srl serve [--addr HOST:PORT] [--max-inflight N] [--cache-cap N]
            [--tenant-config FILE] [--session-threads N]
                                  long-lived line-protocol server
  srl repl                        interactive session

`analyze` compiles the program and reports, for every set/list fold, the
strategy the VM will use (member, union, filter, generic, ...), whether
its combiner was proved a proper homomorphism (order-independent, so
`run --threads N` may shard it), and why — including interprocedural
proofs that thread the accumulator through a callee's spine parameter.

`run` calls the definition named by --call (default: a zero-parameter
`main`), passing each --arg parsed as a value literal: d3, 42, true,
[d1, d2] (tuple), {d0, d1} (set), <d1, d2> (list). With --json the result
and EvalStats print as the versioned v1 body (byte-identical across
backends and across --threads settings). --threads N shards proper-hom
set-reduce folds over an N-worker pool (vm backend only). --timeout-ms N
arms a wall-clock deadline; an overrunning query aborts with exit code 7
and, with --json, a structured error object carrying the partial stats.

`serve` answers the same requests over TCP, one JSON request per line,
with per-tenant pipelines, input bindings that persist across queries,
a fingerprint-keyed compiled-program cache, and load shedding past
--max-inflight (a structured `overloaded` error, wire code 9).

EXIT CODES:
  0  success                       5  runtime evaluation error
  2  usage or I/O error            6  resource limit exceeded
  3  parse error                   7  timeout or cancellation
  4  check (validation) error      8  internal error
";

/// Exit code and stable kind string for a frontend (parse/check) error.
fn frontend_exit(e: &FrontendError) -> (u8, &'static str) {
    match e {
        FrontendError::Parse(_) => (api::EXIT_PARSE, "parse"),
        FrontendError::Check(_) => (api::EXIT_CHECK, "check"),
    }
}

/// Parsed common options of the file-taking subcommands.
#[derive(Debug)]
struct Options {
    file: String,
    call: Option<String>,
    args: Vec<String>,
    config: PipelineConfig,
    json: bool,
}

/// Parses a `--timeout-ms` operand (a positive millisecond count).
fn parse_timeout_ms(word: &str) -> Result<u64, String> {
    let ms: u64 = word
        .parse()
        .map_err(|_| format!("--timeout-ms expects a millisecond count, got `{word}`"))?;
    if ms == 0 {
        return Err("--timeout-ms must be at least 1".to_string());
    }
    Ok(ms)
}

/// Flags each subcommand accepts; anything else is a usage error (so e.g.
/// `srl check file.srl --json` fails loudly instead of silently ignoring
/// the flag).
fn allowed_flags(command: &str) -> &'static [&'static str] {
    match command {
        "run" => &[
            "--call",
            "--arg",
            "--backend",
            "--threads",
            "--limits",
            "--timeout-ms",
            "--json",
        ],
        "check" | "analyze" => &["--json"],
        _ => &[],
    }
}

fn parse_options(rest: &[String], command: &str) -> Result<Options, String> {
    let allowed = allowed_flags(command);
    let mut file = None;
    let mut call = None;
    let mut args = Vec::new();
    let mut backend = ExecBackend::default();
    let mut threads: Option<usize> = None;
    let mut limits = EvalLimits::default();
    let mut timeout_ms: Option<u64> = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with('-') && !allowed.contains(&arg.as_str()) {
            return Err(format!("`srl {command}` does not take `{arg}`"));
        }
        match arg.as_str() {
            "--call" => {
                call = Some(
                    it.next()
                        .ok_or("--call needs a definition name")?
                        .to_string(),
                )
            }
            "--arg" => args.push(it.next().ok_or("--arg needs a value literal")?.to_string()),
            "--backend" => {
                backend = match it.next().map(String::as_str) {
                    Some("vm") => ExecBackend::vm(),
                    Some("tree") | Some("tree-walk") => ExecBackend::TreeWalk,
                    other => return Err(format!("unknown --backend {other:?} (expected vm|tree)")),
                }
            }
            "--threads" => {
                let word = it.next().ok_or("--threads needs a worker count")?;
                let n: usize = word
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got `{word}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--limits" => {
                limits = match it.next().map(String::as_str) {
                    Some("default") => EvalLimits::default(),
                    Some("small") => EvalLimits::small(),
                    Some("benchmark") => EvalLimits::benchmark(),
                    other => {
                        return Err(format!(
                            "unknown --limits {other:?} (expected default|small|benchmark)"
                        ))
                    }
                }
            }
            "--timeout-ms" => {
                let word = it.next().ok_or("--timeout-ms needs a millisecond count")?;
                timeout_ms = Some(parse_timeout_ms(word)?);
            }
            "--json" => json = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}` to `srl {command}`")),
        }
    }
    let backend = match (threads, backend) {
        (None, backend) => backend,
        (Some(n), ExecBackend::Vm { .. }) => ExecBackend::vm_with_threads(n),
        (Some(_), ExecBackend::TreeWalk) => {
            return Err(
                "--threads requires the vm backend (the tree-walk has no worker pool)".to_string(),
            )
        }
    };
    if let Some(ms) = timeout_ms {
        limits = limits.with_deadline_ms(ms);
    }
    Ok(Options {
        file: file.ok_or_else(|| format!("`srl {command}` needs a .srl file"))?,
        call,
        args,
        config: PipelineConfig::new()
            .with_limits(limits)
            .with_backend(backend),
        json,
    })
}

fn load_source(path: &str) -> Result<Source, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(Source::new(path, text))
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn run(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "run") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let pipeline = opts.config.pipeline();
    let artifact = match pipeline.compile_source(&source) {
        Ok(a) => a,
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", api::error_json(kind, &e.to_string(), exit, None, &[]));
            }
            eprintln!("{}", e.render(&source));
            return ExitCode::from(exit);
        }
    };
    let entry = match &opts.call {
        Some(name) => name.clone(),
        None => {
            let main_def = artifact
                .program()
                .lookup("main")
                .filter(|def| def.params.is_empty());
            match main_def {
                Some(def) => def.name.clone(),
                None => {
                    return usage_error(
                        "no --call given and the program has no zero-parameter `main`",
                    )
                }
            }
        }
    };
    let mut values = Vec::new();
    for (i, literal) in opts.args.iter().enumerate() {
        match srl_syntax::parse_value(literal) {
            Ok(v) => values.push(v),
            Err(e) => {
                eprintln!(
                    "error in --arg {}: {}",
                    i + 1,
                    e.to_diagnostic("<arg>", literal)
                );
                return ExitCode::from(api::EXIT_PARSE);
            }
        }
    }
    // Run through an explicit evaluator (not `Compiled::call`) so the
    // partial statistics of a failed run stay observable for --json.
    let mut evaluator = artifact.evaluator();
    match evaluator.call(&entry, &values) {
        Ok(value) => {
            let stats = *evaluator.stats();
            let tiers = evaluator.tier_engagement_breakdown();
            if opts.json {
                println!("{}", api::run_json(&value, &stats, &tiers, &[]));
            } else {
                println!("{value}");
                eprintln!("{}", stats_table(&stats));
                eprintln!(
                    "tier engagements: atoms {}  bits {}  rows {}",
                    tiers.atoms, tiers.bits, tiers.rows
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let exit = api::exit_code(&e);
            if opts.json {
                println!(
                    "{}",
                    api::error_json(
                        e.kind(),
                        &e.to_string(),
                        exit,
                        evaluator.last_error_stats(),
                        &[]
                    )
                );
            }
            eprintln!("evaluation error: {e}");
            ExitCode::from(exit)
        }
    }
}

fn check(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "check") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match opts.config.pipeline().check_source(&source) {
        Ok(checked) => {
            let program = checked.program();
            let verdict = srl_analysis::classify_program(program, 1);
            if opts.json {
                println!(
                    "{}",
                    api::check_json(
                        &program.def_names(),
                        &verdict.fragment.to_string(),
                        &verdict.explanation,
                        &[]
                    )
                );
            } else {
                println!(
                    "ok: {} definition(s): {}",
                    program.defs.len(),
                    program.def_names().join(", ")
                );
                println!("fragment: {}", verdict.fragment);
                println!("  {}", verdict.explanation);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", api::error_json(kind, &e.to_string(), exit, None, &[]));
            }
            eprintln!("{}", e.render(&source));
            ExitCode::from(exit)
        }
    }
}

fn analyze(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "analyze") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match opts.config.pipeline().compile_source(&source) {
        Ok(artifact) => {
            let verdict = srl_analysis::classify_program(artifact.program(), 1);
            let report = srl_analysis::analyze_compiled(artifact.compiled());
            if opts.json {
                println!("{}", srl_analysis::analyze_json(&verdict, &report));
            } else {
                print!("{}", srl_analysis::analyze_table(&verdict, &report));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (exit, kind) = frontend_exit(&e);
            if opts.json {
                println!("{}", api::error_json(kind, &e.to_string(), exit, None, &[]));
            }
            eprintln!("{}", e.render(&source));
            ExitCode::from(exit)
        }
    }
}

fn print_cmd(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "print") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match srl_syntax::parse_program(&source.text) {
        Ok(program) => {
            print!("{}", srl_syntax::print_program(&program));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.to_diagnostic(&source.name, &source.text));
            ExitCode::from(api::EXIT_PARSE)
        }
    }
}

fn disasm(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest, "disasm") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let source = match load_source(&opts.file) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    match opts.config.pipeline().compile_source(&source) {
        Ok(artifact) => {
            print!("{}", srl_syntax::disasm_program(artifact.compiled()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.render(&source));
            ExitCode::from(frontend_exit(&e).0)
        }
    }
}

fn stats_table(stats: &srl_core::EvalStats) -> String {
    format!(
        "steps: {}  reduce iterations: {}  inserts: {}  max value weight: {}  max accumulator weight: {}  max depth: {}  new values: {}",
        stats.steps,
        stats.reduce_iterations,
        stats.inserts,
        stats.max_value_weight,
        stats.max_accumulator_weight,
        stats.max_depth,
        stats.new_values
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::{EvalStats, TierEngagements, Value};

    #[test]
    fn options_parse_flags_and_file() {
        let rest: Vec<String> = [
            "prog.srl",
            "--call",
            "powerset",
            "--arg",
            "{d0, d1}",
            "--backend",
            "tree",
            "--limits",
            "benchmark",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.file, "prog.srl");
        assert_eq!(opts.call.as_deref(), Some("powerset"));
        assert_eq!(opts.args, vec!["{d0, d1}".to_string()]);
        assert_eq!(opts.config.backend, ExecBackend::TreeWalk);
        assert_eq!(opts.config.limits, EvalLimits::benchmark());
        assert!(opts.json);
    }

    #[test]
    fn options_reject_unknown_flags_and_missing_file() {
        assert!(parse_options(&["--wat".to_string()], "run").is_err());
        assert!(parse_options(&[], "run").is_err());
    }

    #[test]
    fn threads_flag_selects_the_worker_pool() {
        let rest: Vec<String> = ["prog.srl", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.config.backend, ExecBackend::vm_with_threads(4));
        // Order-independent with an explicit vm backend.
        let rest: Vec<String> = ["prog.srl", "--threads", "2", "--backend", "vm"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(opts.config.backend, ExecBackend::vm_with_threads(2));
    }

    #[test]
    fn threads_flag_rejects_bad_values_and_the_tree_walk() {
        for bad in [
            vec!["prog.srl", "--threads", "0"],
            vec!["prog.srl", "--threads", "many"],
            vec!["prog.srl", "--threads"],
            vec!["prog.srl", "--threads", "2", "--backend", "tree"],
        ] {
            let rest: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_options(&rest, "run").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn run_only_flags_are_rejected_by_other_commands() {
        for command in ["print", "disasm"] {
            let rest: Vec<String> = ["file.srl", "--json"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = parse_options(&rest, command).unwrap_err();
            assert!(err.contains("--json"), "{command}: {err}");
        }
        for command in ["check", "analyze", "print", "disasm"] {
            let rest: Vec<String> = ["file.srl", "--call", "main"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = parse_options(&rest, command).unwrap_err();
            assert!(err.contains("--call"), "{command}: {err}");
        }
        // The file argument itself still parses everywhere.
        assert_eq!(
            parse_options(&["file.srl".to_string()], "check")
                .unwrap()
                .file,
            "file.srl"
        );
    }

    #[test]
    fn check_and_analyze_take_json() {
        for command in ["check", "analyze"] {
            let rest: Vec<String> = ["file.srl", "--json"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let opts = parse_options(&rest, command).unwrap();
            assert!(opts.json, "{command}");
        }
    }

    #[test]
    fn json_bodies_are_versioned_with_stable_field_order() {
        let stats = EvalStats::default();
        let json = api::run_json(&Value::atom(1), &stats, &TierEngagements::default(), &[]);
        let v = json.find("\"v\": 1").unwrap();
        let steps = json.find("\"steps\"").unwrap();
        let iters = json.find("\"reduce_iterations\"").unwrap();
        let new_values = json.find("\"new_values\"").unwrap();
        assert!(v < steps && steps < iters && iters < new_values);
    }

    #[test]
    fn timeout_flag_arms_a_deadline() {
        let rest: Vec<String> = ["prog.srl", "--timeout-ms", "250"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(
            opts.config.limits.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        // Composes with --limits regardless of flag order.
        let rest: Vec<String> = ["prog.srl", "--timeout-ms", "250", "--limits", "small"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_options(&rest, "run").unwrap();
        assert_eq!(
            opts.config.limits,
            EvalLimits::small().with_deadline_ms(250),
            "--timeout-ms must survive a later --limits"
        );
    }

    #[test]
    fn timeout_flag_rejects_bad_values() {
        for bad in [
            vec!["prog.srl", "--timeout-ms", "0"],
            vec!["prog.srl", "--timeout-ms", "soon"],
            vec!["prog.srl", "--timeout-ms"],
        ] {
            let rest: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_options(&rest, "run").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn error_json_has_stable_field_order_and_optional_stats() {
        let json = api::error_json(
            "deadline_exceeded",
            "too slow",
            api::EXIT_TIMEOUT,
            None,
            &[],
        );
        let v = json.find("\"v\"").unwrap();
        let kind = json.find("\"kind\"").unwrap();
        let message = json.find("\"message\"").unwrap();
        let exit = json.find("\"exit\"").unwrap();
        assert!(v < kind && kind < message && message < exit, "{json}");
        assert!(!json.contains("\"stats\""));
        assert!(json.contains("\"exit\": 7"));

        let stats = EvalStats {
            steps: 9,
            ..EvalStats::default()
        };
        let json = api::error_json("cancelled", "stop", api::EXIT_TIMEOUT, Some(&stats), &[]);
        assert!(json.contains("\"stats\""));
        assert!(json.contains("\"steps\": 9"));
        assert!(json.find("\"error\"").unwrap() < json.find("\"stats\"").unwrap());
    }
}
