//! Database-style queries over an employee/department workload, evaluated
//! with the SRL relational operators of Fact 2.4 and checked against native
//! answers.
//!
//! Run with `cargo run -p srl-examples --bin company_queries`.

use srl_core::dsl::*;
use srl_core::{eval_expr, Env, EvalLimits};
use srl_examples::print_header;
use srl_stdlib::derived::{join, project, select};
use workloads::tables::CompanyDatabase;

fn main() {
    let db = CompanyDatabase::generate(12, 3, 3, 42);
    print_header("The company database");
    println!(
        "{} employees, {} departments",
        db.employees.len(),
        db.departments.len()
    );

    let env = Env::new()
        .bind("EMP", db.employees_value())
        .bind("DEPT", db.departments_value());

    print_header("select + project: who works in the first department?");
    let dept = db.departments[0].id;
    let q = project(
        select(
            var("EMP"),
            lam("e", "x", eq(sel(var("e"), 2), atom(dept))),
            empty_set(),
        ),
        1,
    );
    let v = eval_expr(&q, &env, EvalLimits::default()).unwrap();
    println!("SRL answer:    {v}");
    println!("native answer: {:?}", db.employees_in_department(dept));

    print_header("join: every employee with their department's manager");
    let q = join(
        var("EMP"),
        var("DEPT"),
        lam("e", "d", eq(sel(var("e"), 2), sel(var("d"), 1))),
        lam("e", "d", tuple([sel(var("e"), 1), sel(var("d"), 2)])),
    );
    let v = eval_expr(&q, &env, EvalLimits::default()).unwrap();
    println!("SRL answer:    {v}");
    println!("native answer: {:?}", db.employee_manager_join());
}
