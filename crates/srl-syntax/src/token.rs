//! Tokens of the SRL surface syntax.
//!
//! The token set covers exactly the notation the pretty-printer
//! ([`crate::printer`]) emits: word-shaped identifiers and keywords
//! (hyphens are identifier characters, so `set-reduce` is one token),
//! unnamed atom constants `d7`, named atom constants `alice#5`, decimal
//! naturals, and the punctuation of tuples, set/list literals, calls,
//! selectors and the parenthesised binary operators `=`, `<=`, `+`, `*`.

use std::fmt;

use crate::span::Span;

/// A lexical token. The payload borrows from the source text; positions are
/// carried by the accompanying [`Span`] on [`Token`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind<'s> {
    /// An identifier or keyword (`x`, `apath`, `set-reduce`, `if`).
    /// Keyword recognition happens in the parser, against [`KEYWORDS`].
    Ident(&'s str),
    /// An unnamed atom constant `d<rank>` (the printed form of
    /// `Value::atom(rank)`).
    Atom(u64),
    /// A named atom constant `<name>#<rank>` (the printed form of
    /// `Value::named_atom`).
    NamedAtom(&'s str, u64),
    /// A decimal natural-number literal; the digits are kept as text so the
    /// parser can build an arbitrary-precision [`srl_core::BigNat`] or a
    /// `usize` selector index as context demands.
    Number(&'s str),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<` (opens a list value literal)
    Lt,
    /// `>` (closes a list value literal)
    Gt,
    /// `,`
    Comma,
    /// `.` (selector)
    Dot,
    /// `=`
    Eq,
    /// `<=`
    Leq,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Atom(i) => write!(f, "atom `d{i}`"),
            TokenKind::NamedAtom(n, i) => write!(f, "atom `{n}#{i}`"),
            TokenKind::Number(s) => write!(f, "number `{s}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Leq => write!(f, "`<=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token<'s> {
    /// What was lexed.
    pub kind: TokenKind<'s>,
    /// Where it sits in the source.
    pub span: Span,
}

/// The reserved words of the surface syntax. These cannot be used as
/// definition names, parameter names or variables: each is either a literal,
/// a structural keyword, or the head of a built-in operator form.
pub const KEYWORDS: &[&str] = &[
    "true",
    "false",
    "if",
    "then",
    "else",
    "let",
    "in",
    "lambda",
    "emptyset",
    "emptylist",
    "set-reduce",
    "list-reduce",
    "insert",
    "choose",
    "rest",
    "new",
    "succ",
    "cons",
    "head",
    "tail",
];

/// True if `word` is one of the [`KEYWORDS`].
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_include_operator_heads_and_literals() {
        for kw in ["set-reduce", "lambda", "insert", "true", "emptyset"] {
            assert!(is_keyword(kw), "{kw}");
        }
        assert!(!is_keyword("union"));
        assert!(!is_keyword("apath"));
    }

    #[test]
    fn token_kinds_display_for_diagnostics() {
        assert_eq!(TokenKind::Ident("x").to_string(), "`x`");
        assert_eq!(TokenKind::Atom(3).to_string(), "atom `d3`");
        assert_eq!(TokenKind::Leq.to_string(), "`<=`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
