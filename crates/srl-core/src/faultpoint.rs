//! Named fault-injection points for hardening tests.
//!
//! The recovery paths this workspace promises — a panicking shard worker
//! becomes [`EvalError::Internal`](crate::error::EvalError::Internal) without
//! killing the process, a deadline firing mid-fold reports partial stats —
//! are worthless unless they can be *driven* deterministically. This module
//! is a process-global registry of named fault points that the execution
//! engine consults at a handful of interesting places:
//!
//! | name | argument | effect at the site |
//! |------|----------|--------------------|
//! | [`WORKER_PANIC`] | shard index `k` | shard `k` of the next parallel fold panics on entry |
//! | [`MERGE_DELAY`] | milliseconds | the shard merge sleeps before combining results |
//! | [`DEADLINE_MID_FOLD`] | iteration count `k` | the `k`-th per-element fold iteration behaves as if the wall-clock deadline expired |
//!
//! The registry is always compiled (no cfg feature — feature unification
//! across the workspace would make "is it on?" ambiguous), but costs a single
//! relaxed atomic-bool load when nothing is armed, and nothing at all on the
//! per-step hot path (only fold-element and shard boundaries consult it).
//! Tests arm points programmatically with [`arm`] and must [`disarm_all`]
//! when done; because the registry is process-global, concurrent tests that
//! use it must serialize (see `tests/tests/fault_injection.rs`). For ad-hoc
//! experiments the `SRL_FAULTS` environment variable seeds the registry once
//! at first use, e.g. `SRL_FAULTS=worker_panic@1,merge_delay@50`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Panics shard *k* (the argument) on entry to its fold worker.
pub const WORKER_PANIC: &str = "worker_panic";
/// Sleeps the given number of milliseconds before the shard merge.
pub const MERGE_DELAY: &str = "merge_delay";
/// Forces the deadline to fire on the *k*-th per-element fold iteration.
pub const DEADLINE_MID_FOLD: &str = "deadline_fires_mid_fold";

static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("SRL_FAULTS") {
            parse_spec_into(&spec, &mut map);
        }
        if !map.is_empty() {
            ANY_ARMED.store(true, Ordering::Relaxed);
        }
        Mutex::new(map)
    })
}

fn parse_spec_into(spec: &str, map: &mut HashMap<String, u64>) {
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, arg) = match part.split_once('@') {
            Some((name, arg)) => (name, arg.parse().unwrap_or(0)),
            None => (part, 0),
        };
        map.insert(name.to_string(), arg);
    }
}

fn lock(
    map: &'static Mutex<HashMap<String, u64>>,
) -> std::sync::MutexGuard<'static, HashMap<String, u64>> {
    // A panicking fault point (that is the whole point of `worker_panic`)
    // must not poison the registry for the rest of the process.
    map.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms the fault point `name` with `arg`. Process-global; pair with
/// [`disarm_all`].
pub fn arm(name: &str, arg: u64) {
    let map = registry();
    lock(map).insert(name.to_string(), arg);
    ANY_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms every fault point and restores the zero-cost fast path.
pub fn disarm_all() {
    let map = registry();
    lock(map).clear();
    ANY_ARMED.store(false, Ordering::Relaxed);
}

/// The argument of fault point `name`, if armed. Two relaxed-order loads
/// when the registry is empty.
#[inline]
pub fn armed(name: &str) -> Option<u64> {
    // `ANY_ARMED` starts false, and the `SRL_FAULTS` seeding lives inside
    // `registry()` — so the fast path must force the registry once or an
    // env-armed process would never notice (`Once` is a single atomic load
    // after completion).
    static ENV_SEEDED: Once = Once::new();
    ENV_SEEDED.call_once(|| {
        let _ = registry();
    });
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    armed_slow(name)
}

#[cold]
fn armed_slow(name: &str) -> Option<u64> {
    lock(registry()).get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so this module's tests all run under
    // one lock (mirroring the convention in tests/tests/fault_injection.rs).
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_is_none() {
        let _g = serialized();
        disarm_all();
        assert_eq!(armed(WORKER_PANIC), None);
        assert_eq!(armed("no_such_point"), None);
    }

    #[test]
    fn arm_and_disarm_round_trip() {
        let _g = serialized();
        arm(WORKER_PANIC, 2);
        arm(MERGE_DELAY, 50);
        assert_eq!(armed(WORKER_PANIC), Some(2));
        assert_eq!(armed(MERGE_DELAY), Some(50));
        assert_eq!(armed(DEADLINE_MID_FOLD), None);
        disarm_all();
        assert_eq!(armed(WORKER_PANIC), None);
        assert_eq!(armed(MERGE_DELAY), None);
    }

    #[test]
    fn spec_parsing() {
        let _g = serialized();
        let mut map = HashMap::new();
        parse_spec_into("worker_panic@1, merge_delay@50,bare,,junk@x", &mut map);
        assert_eq!(map.get("worker_panic"), Some(&1));
        assert_eq!(map.get("merge_delay"), Some(&50));
        assert_eq!(map.get("bare"), Some(&0));
        assert_eq!(map.get("junk"), Some(&0));
        assert_eq!(map.len(), 4);
    }
}
