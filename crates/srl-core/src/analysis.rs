//! Interprocedural monotone-spine analysis over the lowered IR.
//!
//! The VM's fold fusion (`bytecode::fuse_set_fold`) proves order-independence
//! *locally*: it recognises combiner bodies whose accumulator parameter is
//! only ever threaded through `insert` into the result. That proof stops at
//! the lambda boundary, so a call-threaded combiner like the powerset's
//! `λ(x, T). sift(x, T)` — where `sift` ultimately folds `finsert`, a pure
//! insert spine — classified `Ordered` and never sharded.
//!
//! This module computes per-definition **spine summaries** bottom-up across
//! the call graph: for each definition, the first parameter (if any) that is
//! used only in *monotone spine position* — threaded through `insert` (or
//! through a callee's own spine parameter) into the result, never inspected
//! by a condition, selector, equality, reduce, or any other consuming
//! primitive. A fold combiner whose accumulator flows through such a chain
//! computes `base ∪ {inserted elements}`: a commutative-associative
//! extension of its set argument, hence a proper homomorphism in the
//! Section 7 sense, safe to shard and merge in any partition.
//!
//! The summary is deliberately a *may-not-observe* proof, not a full
//! abstract interpretation: any construct the walk does not recognise blocks
//! the proof (`SpineBlock` says which), so the analysis is sound by
//! construction — it can only fail to prove, never prove falsely.
//! Recursion (rejected by `Program::validate`, but constructible via
//! `Program::define`) is handled with an in-progress marker: a cycle simply
//! yields no summary.

use crate::bytecode::reads_slot;
use crate::lower::{CompiledProgram, LExpr, LId};

/// Why a spine proof failed, recorded per reduce instruction so `disasm`,
/// `srl analyze`, and the REPL can report the obstacle, not just the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpineBlock {
    /// The combiner's result does not thread the accumulator parameter on
    /// every path (it is dropped or replaced, so the fold may forget
    /// prior elements and the order of arrival becomes observable).
    NotThreaded,
    /// The accumulator parameter is read outside spine position — inspected
    /// by a condition, selector, equality, fold, or other consuming
    /// primitive whose result can depend on what arrived earlier.
    Inspected,
    /// The accumulator is passed to a call on the result path, but the
    /// callee (by definition index) has no spine-parameter summary, so the
    /// proof cannot cross that call.
    CalleeNoSpine(u32),
}

/// Per-definition spine summaries for a compiled program.
///
/// `spine_param(def)` is the first parameter slot of `def` proved to be used
/// only in monotone spine position (see module docs), or `None` when no
/// parameter has that property.
#[derive(Clone, Debug, Default)]
pub struct DefSummaries {
    spine: Vec<Option<u16>>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Unvisited,
    InProgress,
    Done(Option<u16>),
}

impl DefSummaries {
    /// Computes summaries for every definition, bottom-up across the call
    /// graph (definitions may forward-reference, so this memoizes on
    /// demand; a call cycle marks the definitions involved as summary-free
    /// rather than looping).
    pub fn compute(program: &CompiledProgram) -> DefSummaries {
        let mut b = Builder {
            program,
            state: vec![State::Unvisited; program.defs().len()],
        };
        let spine = (0..program.defs().len() as u32)
            .map(|d| b.spine_param(d))
            .collect();
        DefSummaries { spine }
    }

    /// The proved spine parameter slot of `def`, if any.
    pub fn spine_param(&self, def: u32) -> Option<u16> {
        self.spine.get(def as usize).copied().flatten()
    }
}

struct Builder<'a> {
    program: &'a CompiledProgram,
    state: Vec<State>,
}

impl Builder<'_> {
    fn spine_param(&mut self, def: u32) -> Option<u16> {
        match self.state[def as usize] {
            State::Done(s) => s,
            // A cycle: no proof for anything on it (sound — recursion can
            // re-inspect the accumulator through arbitrarily many frames).
            State::InProgress => None,
            State::Unvisited => {
                self.state[def as usize] = State::InProgress;
                let d = &self.program.defs()[def as usize];
                let (body, arity) = (d.body, d.params.len() as u16);
                let found = (0..arity).find(|&p| {
                    walk(self.program, self.program.nodes(), body, p, &mut |c| {
                        self.spine_param(c)
                    })
                    .is_ok()
                });
                self.state[def as usize] = State::Done(found);
                found
            }
        }
    }
}

/// Decides whether slot `y` is used only in monotone spine position in the
/// expression tree rooted at `id` (an arena index into `nodes`).
///
/// - `Ok(None)` — a purely local spine: `y` is threaded through `insert`
///   chains, `if` branches (condition not reading `y`), and `let` bodies
///   straight into the result. This is exactly the intraprocedural proof
///   codegen already trusted for `ReduceKind::Monotone`.
/// - `Ok(Some(via))` — a call-threaded spine: the same shape, except the
///   thread passes through the spine parameter of definition `via`
///   (the outermost such call), whose own summary carries the proof.
/// - `Err(block)` — no proof; `block` names the first obstacle found.
pub fn spine_verdict(
    program: &CompiledProgram,
    summaries: &DefSummaries,
    nodes: &[LExpr],
    id: LId,
    y: u16,
) -> Result<Option<u32>, SpineBlock> {
    walk(program, nodes, id, y, &mut |def| summaries.spine_param(def))
}

/// The shared walk: `lookup` resolves callee spine summaries, either from a
/// frozen [`DefSummaries`] or recursively during [`DefSummaries::compute`].
fn walk(
    program: &CompiledProgram,
    nodes: &[LExpr],
    id: LId,
    y: u16,
    lookup: &mut dyn FnMut(u32) -> Option<u16>,
) -> Result<Option<u32>, SpineBlock> {
    match &nodes[id.index()] {
        LExpr::Local(s) if *s == u32::from(y) => Ok(None),
        LExpr::Insert(e, s) => {
            if reads_slot(nodes, *e, y) {
                return Err(SpineBlock::Inspected);
            }
            walk(program, nodes, *s, y, lookup)
        }
        LExpr::If(c, t, e) => {
            if reads_slot(nodes, *c, y) {
                return Err(SpineBlock::Inspected);
            }
            let vt = walk(program, nodes, *t, y, lookup)?;
            let ve = walk(program, nodes, *e, y, lookup)?;
            Ok(vt.or(ve))
        }
        LExpr::Let { value, body } => {
            if reads_slot(nodes, *value, y) {
                return Err(SpineBlock::Inspected);
            }
            walk(program, nodes, *body, y, lookup)
        }
        LExpr::Call { def, args } => {
            let callee = &program.defs()[*def as usize];
            match lookup(*def) {
                // The callee threads its parameter `j` through its own
                // spine; the call is on *our* spine iff `y` flows only
                // into that argument. (An arity mismatch compiles to
                // `FailArity`, so the summary must not apply.)
                Some(j) if callee.params.len() == args.len() => {
                    let j = usize::from(j);
                    for (i, a) in args.iter().enumerate() {
                        if i != j && reads_slot(nodes, *a, y) {
                            return Err(SpineBlock::Inspected);
                        }
                    }
                    let inner = walk(program, nodes, args[j], y, lookup)?;
                    Ok(Some(inner.unwrap_or(*def)))
                }
                _ => {
                    if args.iter().any(|a| reads_slot(nodes, *a, y)) {
                        Err(SpineBlock::CalleeNoSpine(*def))
                    } else {
                        Err(SpineBlock::NotThreaded)
                    }
                }
            }
        }
        _ => {
            if reads_slot(nodes, id, y) {
                Err(SpineBlock::Inspected)
            } else {
                Err(SpineBlock::NotThreaded)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::program::Program;

    fn finsert_body() -> crate::ast::Expr {
        insert(
            sel(var("p"), 1),
            insert(insert(sel(var("p"), 2), sel(var("p"), 1)), var("T")),
        )
    }

    fn sift_body() -> crate::ast::Expr {
        set_reduce(
            var("T"),
            lam("y", "e", tuple([var("y"), var("e")])),
            lam("pair", "acc", call("finsert", [var("pair"), var("acc")])),
            empty_set(),
            var("x"),
        )
    }

    #[test]
    fn insert_spine_parameter_is_summarised() {
        // finsert threads T (slot 1) through a pure insert chain.
        let p = Program::srl().define("finsert", ["p", "T"], finsert_body());
        let s = DefSummaries::compute(&p.compile());
        assert_eq!(s.spine_param(0), Some(1));
    }

    #[test]
    fn call_threaded_spine_is_proved_across_the_graph() {
        // sift folds finsert over T: sift's own T is *inspected* (it is the
        // folded set), so sift has no spine param — but the fold combiner
        // inside it threads its accumulator through finsert's spine.
        let p = Program::srl()
            .define("finsert", ["p", "T"], finsert_body())
            .define("sift", ["x", "T"], sift_body());
        let s = DefSummaries::compute(&p.compile());
        assert_eq!(s.spine_param(0), Some(1), "finsert spines T");
        assert_eq!(s.spine_param(1), None, "sift folds over its T");
    }

    #[test]
    fn inspected_and_dropped_parameters_are_rejected() {
        let p = Program::srl()
            .define(
                "inspect",
                ["S"],
                if_(
                    eq(var("S"), empty_set()),
                    var("S"),
                    insert(atom(0), var("S")),
                ),
            )
            .define("drop", ["S"], empty_set())
            .define("choose_it", ["S"], insert(choose(var("S")), rest(var("S"))));
        let s = DefSummaries::compute(&p.compile());
        // `inspect` reads S in the condition; `drop` never threads it;
        // `choose_it` passes S through order-observing primitives.
        assert_eq!(s.spine_param(0), None);
        assert_eq!(s.spine_param(1), None);
        assert_eq!(s.spine_param(2), None);
    }

    #[test]
    fn identity_and_branching_spines_are_accepted() {
        let p = Program::srl().define("id", ["S"], var("S")).define(
            "maybe",
            ["x", "S"],
            if_(eq(var("x"), atom(0)), insert(atom(1), var("S")), var("S")),
        );
        let s = DefSummaries::compute(&p.compile());
        assert_eq!(s.spine_param(0), Some(0));
        assert_eq!(s.spine_param(1), Some(1));
    }

    #[test]
    fn recursive_definitions_do_not_loop_and_get_no_summary() {
        // Program::define does not validate, so a recursive def is
        // constructible; the cycle guard must terminate without a proof.
        let p = Program::srl().define("spin", ["S"], call("spin", [insert(atom(0), var("S"))]));
        let s = DefSummaries::compute(&p.compile());
        assert_eq!(s.spine_param(0), None);
    }

    #[test]
    fn verdicts_carry_the_blocking_reason() {
        let p = Program::srl()
            .define("finsert", ["p", "T"], finsert_body())
            .define("sift", ["x", "T"], sift_body());
        let cp = p.compile();
        let summaries = DefSummaries::compute(&cp);

        // λ(x, T). sift(x, T): T flows into sift's folded-set argument and
        // sift has no spine — the proof stops at that call.
        let e = cp.lower_expr(&call("sift", [var("x"), var("T")]), &["x", "T"]);
        assert_eq!(
            spine_verdict(&cp, &summaries, e.nodes(), e.root(), 1),
            Err(SpineBlock::CalleeNoSpine(cp.def_id("sift").unwrap()))
        );

        // λ(x, T). finsert(x, T): a call-threaded spine via finsert.
        let e = cp.lower_expr(&call("finsert", [var("x"), var("T")]), &["x", "T"]);
        assert_eq!(
            spine_verdict(&cp, &summaries, e.nodes(), e.root(), 1),
            Ok(Some(cp.def_id("finsert").unwrap()))
        );

        // The element parameter x is inspected by finsert, not spined.
        assert_eq!(
            spine_verdict(&cp, &summaries, e.nodes(), e.root(), 0),
            Err(SpineBlock::Inspected)
        );
    }
}
