//! Runtime values of the set-reduce language.
//!
//! Every value carries a total order (`Ord`). This order is the
//! "implementation-supplied" order the paper's Section 2 semantics demand:
//! `choose(S)` returns the minimal element of `S` in this order and `rest(S)`
//! removes it, so `set-reduce` always traverses a set in ascending order.
//! Users of the language may observe the order but, per the paper, should not
//! encode information in it; the `srl-analysis` crate provides the machinery
//! to check whether a program's result in fact depends on it.
//!
//! ## Representation: `Arc`-shared payloads, copy-on-write
//!
//! Collection values (`Set`, `Tuple`, `List`) hold their payload behind an
//! [`Arc`], so `Value::clone()` is **O(1)**: it bumps a reference count
//! instead of deep-copying a set/`Vec`. This matters because the
//! evaluator's semantics equations are clone-heavy by construction —
//! `set-reduce` hands a clone of each element and of the `extra` value to
//! every iteration, and `rest(S)` produces "`S` without its minimum", which
//! naively copies the whole set |S| times over a full traversal.
//!
//! Mutation goes through [`Arc::make_mut`]: a uniquely-owned payload is
//! updated in place, a shared one is copied first (copy-on-write). The
//! observable semantics — the value order, what `choose`/`rest` return, every
//! `EvalStats` counter — are completely unchanged by the sharing; only the
//! number of machine-level copies differs. Equality, ordering and hashing
//! all go through the payload (never the pointer), so two structurally equal
//! values compare equal whether or not they share storage.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::bignat::BigNat;
use crate::setrepr::SetRepr;

/// An element of the (finite, ordered) base domain `D = {0, …, n-1}`.
///
/// Atoms are identified by their rank in the domain ordering; an optional
/// human-readable name is carried only for display and never participates in
/// equality or ordering.
#[derive(Clone)]
pub struct Atom {
    /// Rank of the atom in the domain ordering `≤`.
    pub index: u64,
    /// Optional display name (e.g. a vertex label or an employee name).
    /// Shared so that cloning a named atom never allocates.
    pub name: Option<Arc<str>>,
}

impl Atom {
    /// An unnamed atom with the given rank.
    pub fn new(index: u64) -> Self {
        Atom { index, name: None }
    }

    /// A named atom with the given rank.
    pub fn named(index: u64, name: impl Into<String>) -> Self {
        Atom {
            index,
            name: Some(name.into().into()),
        }
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl Eq for Atom {}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        self.index.cmp(&other.index)
    }
}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}#{}", self.index),
            None => write!(f, "d{}", self.index),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}"),
            None => write!(f, "d{}", self.index),
        }
    }
}

/// A finite, ordered set of values.
///
/// The representation is a sorted vector ([`SetRepr`]); iteration order *is*
/// the value order — exactly the order `set-reduce` scans.
pub type ValueSet = SetRepr;

/// A runtime value of the set-reduce language.
///
/// The ordering between values of *different* shapes is an arbitrary but
/// fixed lexicographic convention (booleans < atoms < naturals < tuples <
/// sets < lists); within a well-typed program only values of the same type
/// are ever compared, so that convention is unobservable.
// The manual `PartialEq` below is the derived structural equality plus an
// `Arc::ptr_eq` fast path (pointer equality implies value equality for a
// total structural order), and every component's `Hash` matches its `Eq`
// (atoms hash by rank only, sets by their live window) — so `k1 == k2`
// still implies `hash(k1) == hash(k2)` and the derive is sound.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, Hash)]
pub enum Value {
    /// A boolean constant.
    Bool(bool),
    /// An element of the finite base domain.
    Atom(Atom),
    /// A natural number (arithmetic extension of Section 3 / Section 5).
    Nat(BigNat),
    /// A fixed-arity tuple. The payload is `Arc`-shared: cloning is O(1).
    /// Tuples are never mutated in place, so the payload is a slice — one
    /// heap block, one pointer hop on the `sel`/compare hot paths.
    Tuple(Arc<[Value]>),
    /// A finite set, kept sorted in the value order. `Arc`-shared payload.
    Set(Arc<ValueSet>),
    /// A finite list (the LRL extension of Sections 3 and 5). `Arc`-shared
    /// payload.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience constructor: boolean.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Convenience constructor: unnamed atom with rank `i`.
    pub fn atom(i: u64) -> Self {
        Value::Atom(Atom::new(i))
    }

    /// Convenience constructor: named atom.
    pub fn named_atom(i: u64, name: impl Into<String>) -> Self {
        Value::Atom(Atom::named(i, name))
    }

    /// Convenience constructor: natural number from a machine word.
    pub fn nat(n: u64) -> Self {
        Value::Nat(BigNat::from_u64(n))
    }

    /// Convenience constructor: tuple.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Tuple(items.into_iter().collect())
    }

    /// Convenience constructor: set (duplicates collapse).
    pub fn set(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(Arc::new(items.into_iter().collect()))
    }

    /// Convenience constructor: list.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(Arc::new(items.into_iter().collect()))
    }

    /// The empty set.
    pub fn empty_set() -> Self {
        Value::Set(Arc::new(ValueSet::new()))
    }

    /// The empty list.
    pub fn empty_list() -> Self {
        Value::List(Arc::new(Vec::new()))
    }

    /// Returns the boolean payload if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the atom payload if this is an atom.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the natural payload if this is a natural.
    pub fn as_nat(&self) -> Option<&BigNat> {
        match self {
            Value::Nat(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the tuple components if this is a tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the set payload if this is a set.
    pub fn as_set(&self) -> Option<&ValueSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The paper's `choose(S)`: the minimal element of a non-empty set.
    /// Returned owned — the columnar set tiers materialise the atom on the
    /// fly (two words, no allocation) instead of borrowing a stored value.
    pub fn choose(&self) -> Option<Value> {
        self.as_set().and_then(ValueSet::first)
    }

    /// Cardinality for sets / length for lists and tuples; `None` otherwise.
    pub fn len(&self) -> Option<usize> {
        match self {
            Value::Tuple(t) => Some(t.len()),
            Value::Set(s) => Some(s.len()),
            Value::List(l) => Some(l.len()),
            _ => None,
        }
    }

    /// True if this is a set, list or tuple with no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Total number of scalar leaves in the value; used by the evaluator's
    /// size budget so that exponential fragments (set-height 2, LRL) fail
    /// gracefully instead of exhausting memory.
    pub fn weight(&self) -> usize {
        match self {
            Value::Bool(_) | Value::Atom(_) => 1,
            Value::Nat(n) => 1 + n.bit_len() / 64,
            Value::Tuple(items) => 1 + items.iter().map(Value::weight).sum::<usize>(),
            Value::List(items) => 1 + items.iter().map(Value::weight).sum::<usize>(),
            Value::Set(items) => {
                1 + match items.value_slice() {
                    Some(vs) => vs.iter().map(Value::weight).sum::<usize>(),
                    // Columnar tiers know their element weights without a
                    // walk: atoms weigh 1, arity-k rows weigh 1 + k.
                    None => items
                        .columnar_weight_sum()
                        .expect("non-slice tiers are columnar"),
                }
            }
        }
    }

    /// The set-height of this *value* (Definition 2.2 lifted to values):
    /// 0 for scalars, max over components for tuples/lists, 1 + max element
    /// height for sets (empty set has height 1).
    pub fn set_height(&self) -> usize {
        match self {
            Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => 0,
            Value::Tuple(items) => items.iter().map(Value::set_height).max().unwrap_or(0),
            Value::List(items) => items.iter().map(Value::set_height).max().unwrap_or(0),
            Value::Set(items) => {
                1 + match items.value_slice() {
                    Some(vs) => vs.iter().map(Value::set_height).max().unwrap_or(0),
                    // Columnar tiers hold only atoms and atom tuples, each
                    // of height 0.
                    None => 0,
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Atom(a), Value::Atom(b)) => a == b,
            (Value::Nat(a), Value::Nat(b)) => a == b,
            // Shared payloads compare equal without being walked: `Eq` is
            // total and structural, so pointer equality implies value
            // equality.
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Set(a), Value::Set(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::List(a), Value::List(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        // Same order as the former derived implementation: discriminant
        // order (booleans < atoms < naturals < tuples < sets < lists), then
        // lexicographic payload comparison — with a pointer-equality fast
        // path for shared payloads.
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Atom(_) => 1,
                Value::Nat(_) => 2,
                Value::Tuple(_) => 3,
                Value::Set(_) => 4,
                Value::List(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Atom(a), Value::Atom(b)) => a.cmp(b),
            (Value::Nat(a), Value::Nat(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Value::Set(a), Value::Set(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Value::List(a), Value::List(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Atom(a) => write!(f, "{a:?}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Tuple(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(items) => {
                write!(f, "<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// Builds the domain `D = {d_0, …, d_{n-1}}` as a set of atoms, the standard
/// input universe of Section 3.
pub fn domain_set(n: u64) -> Value {
    Value::set((0..n).map(Value::atom))
}

/// Builds the set of pairs `{[a, b] | a ≤ b}` over a domain of size `n` —
/// the explicit representation of the ordering the paper mentions in
/// Section 4 ("we can assume it is available to us as a set of pairs").
pub fn leq_relation(n: u64) -> Value {
    let mut pairs = ValueSet::new();
    for a in 0..n {
        for b in a..n {
            pairs.insert(Value::tuple([Value::atom(a), Value::atom(b)]));
        }
    }
    Value::Set(Arc::new(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_equality_ignores_name() {
        assert_eq!(Value::atom(3), Value::named_atom(3, "carol"));
        assert_ne!(Value::atom(3), Value::atom(4));
    }

    #[test]
    fn atom_ordering_by_index() {
        assert!(Atom::new(1) < Atom::new(2));
        assert!(Atom::named(1, "z") < Atom::named(2, "a"));
    }

    #[test]
    fn set_collapses_duplicates_and_sorts() {
        let s = Value::set([
            Value::atom(3),
            Value::atom(1),
            Value::atom(3),
            Value::atom(2),
        ]);
        let set = s.as_set().unwrap();
        let items: Vec<_> = set.iter().collect();
        assert_eq!(items, vec![Value::atom(1), Value::atom(2), Value::atom(3)]);
    }

    #[test]
    fn choose_returns_minimum() {
        let s = Value::set([Value::atom(5), Value::atom(2), Value::atom(9)]);
        assert_eq!(s.choose(), Some(Value::atom(2)));
        assert_eq!(Value::empty_set().choose(), None);
        assert_eq!(Value::bool(true).choose(), None);
    }

    #[test]
    fn value_ordering_is_total_on_same_shape() {
        assert!(Value::atom(1) < Value::atom(2));
        assert!(Value::nat(3) < Value::nat(10));
        assert!(
            Value::tuple([Value::atom(1), Value::atom(5)])
                < Value::tuple([Value::atom(2), Value::atom(0)])
        );
        assert!(Value::set([Value::atom(1)]) < Value::set([Value::atom(2)]));
    }

    #[test]
    fn set_height_of_values() {
        assert_eq!(Value::bool(true).set_height(), 0);
        assert_eq!(Value::atom(0).set_height(), 0);
        assert_eq!(Value::nat(7).set_height(), 0);
        assert_eq!(
            Value::tuple([Value::atom(0), Value::atom(1)]).set_height(),
            0
        );
        assert_eq!(Value::empty_set().set_height(), 1);
        assert_eq!(Value::set([Value::atom(0)]).set_height(), 1);
        let set_of_sets = Value::set([Value::set([Value::atom(0)]), Value::empty_set()]);
        assert_eq!(set_of_sets.set_height(), 2);
        let tuple_with_set = Value::tuple([Value::atom(0), Value::set([Value::atom(1)])]);
        assert_eq!(tuple_with_set.set_height(), 1);
    }

    #[test]
    fn weight_counts_leaves() {
        assert_eq!(Value::atom(0).weight(), 1);
        assert_eq!(Value::tuple([Value::atom(0), Value::atom(1)]).weight(), 3);
        assert_eq!(Value::set([Value::atom(0), Value::atom(1)]).weight(), 3);
        assert_eq!(Value::empty_set().weight(), 1);
    }

    #[test]
    fn domain_set_has_n_elements() {
        let d = domain_set(5);
        assert_eq!(d.len(), Some(5));
        assert_eq!(d.choose(), Some(Value::atom(0)));
    }

    #[test]
    fn leq_relation_size() {
        // |{(a,b) | a <= b}| over n elements = n(n+1)/2
        let r = leq_relation(5);
        assert_eq!(r.len(), Some(15));
        assert!(r
            .as_set()
            .unwrap()
            .contains(&Value::tuple([Value::atom(2), Value::atom(4)])));
        assert!(!r
            .as_set()
            .unwrap()
            .contains(&Value::tuple([Value::atom(4), Value::atom(2)])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Value::bool(true)), "true");
        assert_eq!(format!("{}", Value::atom(3)), "d3");
        assert_eq!(format!("{}", Value::named_atom(3, "carol")), "carol#3");
        assert_eq!(
            format!("{}", Value::tuple([Value::atom(1), Value::atom(2)])),
            "[d1, d2]"
        );
        assert_eq!(
            format!("{}", Value::set([Value::atom(2), Value::atom(1)])),
            "{d1, d2}"
        );
        assert_eq!(
            format!("{}", Value::list([Value::atom(1), Value::atom(1)])),
            "<d1, d1>"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::atom(1).as_bool(), None);
        assert!(Value::nat(3).as_nat().is_some());
        assert!(Value::tuple([Value::atom(1)]).as_tuple().is_some());
        assert!(Value::empty_set().as_set().is_some());
        assert!(Value::empty_list().as_list().is_some());
        assert!(Value::empty_set().is_empty());
        assert!(!Value::set([Value::atom(1)]).is_empty());
        assert!(!Value::atom(1).is_empty());
    }
}
