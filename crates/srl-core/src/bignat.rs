//! Arbitrary-precision natural numbers.
//!
//! The unrestricted fragments of the set-reduce language (`SRL + new`, `LRL`,
//! and the arithmetic extension of Section 3) compute primitive recursive
//! functions, whose values overflow any fixed-width machine integer almost
//! immediately (the paper's own example is `x^(2^n)` by repeated squaring).
//! The evaluator therefore uses this small, dependency-free natural-number
//! type: a little-endian vector of 64-bit limbs with no leading zero limb.
//!
//! Only the operations the paper needs are provided: successor/predecessor,
//! addition, saturating subtraction, multiplication, powers, shifts, bit
//! access, division/remainder by a power of two, and comparisons. All
//! operations are total on naturals (subtraction saturates at zero, matching
//! the usual primitive-recursive "monus").

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number.
///
/// Invariant: `limbs` is little-endian (least significant limb first) and has
/// no trailing zero limb; zero is represented by an empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNat {
    limbs: Vec<u64>,
}

impl BigNat {
    /// The natural number zero.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The natural number one.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// Builds a natural from a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigNat { limbs: vec![v] }
        }
    }

    /// Builds a natural from a `usize`.
    pub fn from_usize(v: usize) -> Self {
        Self::from_u64(v as u64)
    }

    /// Returns the value as a `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the value as a `usize` if it fits.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian; bit 0 is the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to 1.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        let off = i % 64;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << off;
        self.normalize();
    }

    /// Clears bit `i`.
    pub fn clear_bit(&mut self, i: usize) {
        let limb = i / 64;
        let off = i % 64;
        if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1u64 << off);
        }
        self.normalize();
    }

    /// Index of the lowest set bit, or `None` for zero.
    ///
    /// This is the paper's `Rlog` (Section 5): `Rlog(n)` = minimum `k` such
    /// that `Bit(n, k)` is 1.
    pub fn lowest_set_bit(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the highest set bit, or `None` for zero.
    ///
    /// This is the paper's `Log` (Section 5): `Log(n)` = maximum `k` such
    /// that `Bit(n, k)` is 1.
    pub fn highest_set_bit(&self) -> Option<usize> {
        if self.is_zero() {
            None
        } else {
            Some(self.bit_len() - 1)
        }
    }

    /// Successor: `self + 1`.
    pub fn succ(&self) -> Self {
        self.add(&BigNat::one())
    }

    /// Predecessor, saturating at zero.
    pub fn pred(&self) -> Self {
        self.saturating_sub(&BigNat::one())
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = ai.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Saturating subtraction ("monus"): `max(self - other, 0)`.
    pub fn saturating_sub(&self, other: &Self) -> Self {
        if self <= other {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "saturating_sub: borrow out of a larger number");
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication (schoolbook; all the paper's workloads are small).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication by a machine word.
    pub fn mul_u64(&self, m: u64) -> Self {
        self.mul(&BigNat::from_u64(m))
    }

    /// `self`ᵉ by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> Self {
        let mut base = self.clone();
        let mut acc = BigNat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// 2ᵏ, the paper's `Exp(2, k)` used in the Gödel coding of sets.
    pub fn pow2(k: usize) -> Self {
        let mut n = BigNat::zero();
        n.set_bit(k);
        n
    }

    /// Left shift by `k` bits (multiplication by 2ᵏ).
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() || k == 0 {
            return self.clone();
        }
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `k` bits (the paper's `Div(n, k)` = ⌊n / 2ᵏ⌋).
    pub fn shr(&self, k: usize) -> Self {
        let limb_shift = k / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = k % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (64 - bit_shift);
                out.push(lo | hi);
            }
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// The paper's `Mod(n, j)` = n mod 2ʲ: keeps only the lowest `j` bits.
    pub fn mod_pow2(&self, j: usize) -> Self {
        let limb = j / 64;
        let off = j % 64;
        if limb >= self.limbs.len() {
            return self.clone();
        }
        let mut out = self.limbs[..=limb].to_vec();
        if off == 0 {
            out.pop();
        } else {
            let mask = (1u64 << off) - 1;
            *out.last_mut().expect("non-empty by construction") &= mask;
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Parity: true iff odd.
    pub fn is_odd(&self) -> bool {
        self.bit(0)
    }

    /// Renders the value in binary (most significant bit first), mainly for
    /// debugging the Gödel codings of Theorem 5.2.
    pub fn to_binary_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bits = self.bit_len();
        let mut s = String::with_capacity(bits);
        for i in (0..bits).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        s
    }

    /// Renders the value in decimal.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Repeated division by 10^19 (the largest power of ten fitting a limb).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits_rev: Vec<String> = Vec::new();
        let mut cur = self.limbs.clone();
        while !cur.is_empty() {
            let mut rem: u128 = 0;
            let mut next: Vec<u64> = vec![0; cur.len()];
            for i in (0..cur.len()).rev() {
                let acc = (rem << 64) | cur[i] as u128;
                next[i] = (acc / CHUNK as u128) as u64;
                rem = acc % CHUNK as u128;
            }
            while next.last() == Some(&0) {
                next.pop();
            }
            if next.is_empty() {
                digits_rev.push(format!("{rem}"));
            } else {
                digits_rev.push(format!("{rem:019}"));
            }
            cur = next;
        }
        digits_rev.reverse();
        digits_rev.concat()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({})", self.to_decimal_string())
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        BigNat::from_u64(v)
    }
}

impl From<usize> for BigNat {
    fn from(v: usize) -> Self {
        BigNat::from_usize(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigNat {
        BigNat::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigNat::zero().is_zero());
        assert!(!BigNat::one().is_zero());
        assert_eq!(BigNat::zero().to_u64(), Some(0));
        assert_eq!(BigNat::one().to_u64(), Some(1));
    }

    #[test]
    fn add_small() {
        assert_eq!(n(2).add(&n(3)), n(5));
        assert_eq!(n(0).add(&n(7)), n(7));
        assert_eq!(n(7).add(&n(0)), n(7));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = n(u64::MAX);
        let b = n(1);
        let s = a.add(&b);
        assert_eq!(s.to_u64(), None);
        assert_eq!(s.bit_len(), 65);
        assert!(s.bit(64));
        assert!(!s.bit(0));
    }

    #[test]
    fn saturating_sub_basic() {
        assert_eq!(n(10).saturating_sub(&n(3)), n(7));
        assert_eq!(n(3).saturating_sub(&n(10)), n(0));
        assert_eq!(n(3).saturating_sub(&n(3)), n(0));
    }

    #[test]
    fn saturating_sub_with_borrow() {
        let a = n(u64::MAX).add(&n(5)); // 2^64 + 4
        let b = n(10);
        let d = a.saturating_sub(&b);
        assert_eq!(d, n(u64::MAX).saturating_sub(&n(5)));
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(6).mul(&n(7)), n(42));
        assert_eq!(n(0).mul(&n(7)), n(0));
        assert_eq!(n(7).mul(&n(0)), n(0));
        assert_eq!(n(1).mul(&n(7)), n(7));
    }

    #[test]
    fn mul_large() {
        // (2^64)^2 = 2^128
        let a = BigNat::pow2(64);
        let sq = a.mul(&a);
        assert_eq!(sq, BigNat::pow2(128));
    }

    #[test]
    fn pow_and_pow2() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(3).pow(0), n(1));
        assert_eq!(n(3).pow(4), n(81));
        assert_eq!(BigNat::pow2(10), n(1024));
        assert_eq!(BigNat::pow2(0), n(1));
    }

    #[test]
    fn repeated_squaring_matches_pow() {
        // The paper's observation: allowing * in the accumulator computes
        // x^(2^n) by repeated squaring. Check x^(2^6) for x = 3.
        let mut acc = n(3);
        for _ in 0..6 {
            acc = acc.mul(&acc);
        }
        assert_eq!(acc, n(3).pow(64));
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(3), n(8));
        assert_eq!(n(5).shl(0), n(5));
        assert_eq!(n(8).shr(3), n(1));
        assert_eq!(n(8).shr(4), n(0));
        assert_eq!(BigNat::pow2(100).shr(100), n(1));
        assert_eq!(BigNat::pow2(100).shr(101), n(0));
        assert_eq!(n(0b1011).shr(1), n(0b101));
    }

    #[test]
    fn shift_roundtrip() {
        for k in [0usize, 1, 5, 63, 64, 65, 127, 200] {
            let x = n(0xDEAD_BEEF);
            assert_eq!(x.shl(k).shr(k), x, "k = {k}");
        }
    }

    #[test]
    fn bits() {
        let x = n(0b1010_0110);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(x.bit(2));
        assert!(!x.bit(3));
        assert!(x.bit(5));
        assert!(x.bit(7));
        assert!(!x.bit(8));
        assert!(!x.bit(1000));
        assert_eq!(x.lowest_set_bit(), Some(1));
        assert_eq!(x.highest_set_bit(), Some(7));
        assert_eq!(BigNat::zero().lowest_set_bit(), None);
        assert_eq!(BigNat::zero().highest_set_bit(), None);
    }

    #[test]
    fn set_and_clear_bit() {
        let mut x = BigNat::zero();
        x.set_bit(70);
        assert!(x.bit(70));
        assert_eq!(x, BigNat::pow2(70));
        x.clear_bit(70);
        assert!(x.is_zero());
    }

    #[test]
    fn mod_pow2_matches_definition() {
        let x = n(0b110_1011);
        assert_eq!(x.mod_pow2(0), n(0));
        assert_eq!(x.mod_pow2(1), n(1));
        assert_eq!(x.mod_pow2(3), n(0b011));
        assert_eq!(x.mod_pow2(4), n(0b1011));
        assert_eq!(x.mod_pow2(100), x);
    }

    #[test]
    fn succ_pred() {
        assert_eq!(n(0).succ(), n(1));
        assert_eq!(n(41).succ(), n(42));
        assert_eq!(n(42).pred(), n(41));
        assert_eq!(n(0).pred(), n(0));
        assert_eq!(n(u64::MAX).succ().pred(), n(u64::MAX));
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(n(5) > n(3));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
        assert!(BigNat::pow2(64) > n(u64::MAX));
        assert!(BigNat::pow2(128) > BigNat::pow2(64));
    }

    #[test]
    fn bit_len() {
        assert_eq!(BigNat::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(2).bit_len(), 2);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!(n(256).bit_len(), 9);
        assert_eq!(BigNat::pow2(200).bit_len(), 201);
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(BigNat::zero().to_decimal_string(), "0");
        assert_eq!(n(12345).to_decimal_string(), "12345");
        assert_eq!(n(u64::MAX).to_decimal_string(), u64::MAX.to_string(),);
        // 2^128 = 340282366920938463463374607431768211456
        assert_eq!(
            BigNat::pow2(128).to_decimal_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn binary_rendering() {
        assert_eq!(BigNat::zero().to_binary_string(), "0");
        assert_eq!(n(0b1011).to_binary_string(), "1011");
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", n(99)), "99");
        assert_eq!(format!("{:?}", n(99)), "BigNat(99)");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(BigNat::from(7u64), n(7));
        assert_eq!(BigNat::from(7usize), n(7));
        assert_eq!(n(7).to_usize(), Some(7));
    }
}
