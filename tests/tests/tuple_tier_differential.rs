//! Differential test: generic vs. columnar *tuple-set* storage.
//!
//! The struct-of-arrays rows tier (`srl-core::setrepr::Store::Rows`:
//! k parallel sorted-lexicographic `u32` columns for sets of fixed-arity
//! plain-atom tuples) promises to be **pure representation**, exactly
//! like the atom tiers before it: for every program, identical `Value`
//! results, identical *printed* results (named-component copies
//! included), and byte-identical `EvalStats` whether the tier is enabled
//! or disabled, on every backend (tree-walk, sequential VM, pooled VM at
//! 2 and 4 threads). This suite drives the full 2×4 matrix over the
//! E1–E9 srl-bench workloads through their *relational* lens — pair-edge
//! closures (E5), table joins (E9), product relations — proves via the
//! per-tier engagement breakdown (`Evaluator::tier_engagement_breakdown`)
//! that the rows tier actually engages where fixed-arity tuples
//! accumulate and provably stays out when disabled, and stresses the
//! promotion/demotion edges the adaptive storage decisions hinge on
//! (arity changes mid-fold, non-atom components, named duplicates, the
//! inline-capacity threshold).
//!
//! The toggle (`set_atom_tier_enabled`) gates every columnar tier,
//! including rows; inputs are rebuilt under each configuration's toggle
//! so the "off" runs really evaluate generic-tier values.

use std::sync::Arc;

use srl_core::dsl::*;
use srl_core::setrepr::set_atom_tier_enabled;
use srl_core::{
    Dialect, Env, EvalError, EvalLimits, EvalStats, Evaluator, ExecBackend, Expr, Program,
    TierEngagements, Value,
};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::{difference, intersection, member, union};

/// Restores the ambient tier toggle when dropped, so a failing assertion
/// in one test cannot leak a disabled tier into the rest of its thread.
struct TierGuard(bool);

impl TierGuard {
    fn set(on: bool) -> Self {
        TierGuard(set_atom_tier_enabled(on))
    }
}

impl Drop for TierGuard {
    fn drop(&mut self) {
        set_atom_tier_enabled(self.0);
    }
}

/// Deep structural rebuild: every set in the result is re-constructed
/// under the *current* toggle, so the value's storage tiers reflect the
/// configuration under measurement rather than the one it was built in.
fn rebuild(v: &Value) -> Value {
    match v {
        Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => v.clone(),
        Value::Tuple(items) => Value::tuple(items.iter().map(rebuild)),
        Value::Set(items) => Value::set(items.iter().map(|e| rebuild(&e))),
        Value::List(items) => Value::list(items.iter().map(rebuild)),
    }
}

/// A set of pair tuples `(i, j)` — the canonical rows-tier inhabitant.
fn pair_set(pairs: impl IntoIterator<Item = (u64, u64)>) -> Value {
    Value::set(
        pairs
            .into_iter()
            .map(|(i, j)| Value::tuple([Value::atom(i), Value::atom(j)])),
    )
}

fn backends() -> Vec<(&'static str, ExecBackend)> {
    vec![
        ("tree-walk", ExecBackend::TreeWalk),
        ("vm[1]", ExecBackend::vm()),
        ("vm[2]", ExecBackend::vm_with_threads(2)),
        ("vm[4]", ExecBackend::vm_with_threads(4)),
    ]
}

struct Outcome {
    config: String,
    tier_on: bool,
    result: Result<(Value, EvalStats), EvalError>,
    engagements: TierEngagements,
}

/// Runs `f` under every (tier, backend) configuration over one shared
/// compiled program. `inputs` are rebuilt under each configuration's
/// toggle and handed to `f` in order.
fn run_matrix(
    program: &Program,
    limits: EvalLimits,
    inputs: &[Value],
    mut f: impl FnMut(&mut Evaluator, &[Value]) -> Result<Value, EvalError>,
) -> Vec<Outcome> {
    let compiled = Arc::new(program.compile());
    let mut out = Vec::new();
    for tier_on in [true, false] {
        let _guard = TierGuard::set(tier_on);
        let rebuilt: Vec<Value> = inputs.iter().map(rebuild).collect();
        for (name, backend) in backends() {
            let mut ev = Evaluator::with_compiled(program, Arc::clone(&compiled), limits)
                .expect("compiled from this program")
                .with_backend(backend);
            let result = f(&mut ev, &rebuilt).map(|v| (v, *ev.stats()));
            out.push(Outcome {
                config: format!("tier-{} {name}", if tier_on { "on" } else { "off" }),
                tier_on,
                result,
                engagements: ev.tier_engagement_breakdown(),
            });
        }
    }
    out
}

/// Asserts every configuration produced the same value (structurally
/// *and* as printed — named-atom copies must not drift), byte-identical
/// `EvalStats`, and that the disabled tier never reported an engagement
/// on *any* tier. Returns the value and the minimum **rows**-tier
/// engagement count over the tier-on configurations (so callers can
/// assert the rows tier provably engaged on every backend, not just one).
fn assert_tier_identical(label: &str, outcomes: &[Outcome]) -> (Value, u64) {
    let (first, rest) = outcomes.split_first().expect("matrix is non-empty");
    let (v0, s0) = first
        .result
        .as_ref()
        .unwrap_or_else(|e| panic!("{label} [{}]: failed: {e}", first.config));
    for o in rest {
        let (v, s) = o
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{label} [{}]: failed: {e}", o.config));
        assert_eq!(v0, v, "{label} [{}]: values differ", o.config);
        assert_eq!(
            format!("{v0}"),
            format!("{v}"),
            "{label} [{}]: printed values differ",
            o.config
        );
        assert_eq!(s0, s, "{label} [{}]: EvalStats differ", o.config);
    }
    for o in outcomes.iter().filter(|o| !o.tier_on) {
        assert_eq!(
            o.engagements.total(),
            0,
            "{label} [{}]: disabled tier reported engagements",
            o.config
        );
    }
    let rows_min = outcomes
        .iter()
        .filter(|o| o.tier_on)
        .map(|o| o.engagements.rows)
        .min()
        .expect("tier-on configurations exist");
    (v0.clone(), rows_min)
}

/// Identity over an expression with named inputs, under benchmark limits.
fn assert_expr_identical(
    program: &Program,
    names: &[&str],
    inputs: &[Value],
    expr: &Expr,
    label: &str,
) -> (Value, u64) {
    let outcomes = run_matrix(program, EvalLimits::benchmark(), inputs, |ev, vals| {
        let mut env = Env::new();
        for (name, value) in names.iter().zip(vals) {
            env.insert(*name, value.clone());
        }
        ev.eval(expr, &env)
    });
    assert_tier_identical(label, &outcomes)
}

// ---------------------------------------------------------------------------
// The srl-bench workloads, E1–E9, through their relational lens: the
// rows tier must be unobservable in values, display, and stats, and it
// must provably engage where fixed-arity atom tuples accumulate.
// ---------------------------------------------------------------------------

#[test]
fn e1_apath_agrees_and_engages_rows() {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    // The alternating-path edges are pair tuples: the traversed relation
    // lives on the rows tier on every backend.
    let program = apath_program();
    let graph = AlternatingGraph::random(6, 0.25, 13);
    let inputs = [graph.nodes_value(), graph.edges_value(), graph.ands_value()];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::APATH, vals)
    });
    let (_, rows_min) = assert_tier_identical("E1 APATH", &outcomes);
    assert!(rows_min > 0, "E1: rows tier did not engage on some backend");
}

#[test]
fn e2_powerset_of_a_relation_agrees() {
    use srl_stdlib::blowup::{names, powerset_program};

    // Powerset over a *pair-tuple* ground set: the subsets are tuple sets
    // that promote as they cross the inline capacity.
    let program = powerset_program();
    let inputs = [pair_set((0..5u64).map(|i| (i, i + 1)))];
    let outcomes = run_matrix(&program, EvalLimits::default(), &inputs, |ev, vals| {
        ev.call(names::POWERSET, vals)
    });
    let (v, _) = assert_tier_identical("E2 powerset(pairs)", &outcomes);
    assert_eq!(v.len(), Some(1usize << 5));
}

#[test]
fn e3_basrl_arithmetic_agrees() {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let program = arithmetic_program();
    let d = domain(16);
    let inputs = vec![d, Value::atom(5), Value::atom(4)];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::ADD, vals)
    });
    assert_tier_identical("E3 add", &outcomes);
}

#[test]
fn e4_permutation_product_agrees() {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    // Permutations are tuple relations: the iterated product is the E4
    // tuple-accumulating workload.
    let program = perm_program();
    let instance = IteratedProductInstance::random(5, 5, 17);
    let inputs = [
        padded_domain(&instance),
        instance.to_srl_value(),
        Value::atom(2),
    ];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::IP, vals)
    });
    assert_tier_identical("E4 IP", &outcomes);
}

#[test]
fn e5_tc_dtc_agree_and_engage_rows() {
    use srl_bench::queries;
    use workloads::digraph::Digraph;

    // The E5 closures accumulate the pair *relation*: the core rows-tier
    // workload. Engagement must hold on every backend.
    let program = Program::new(Dialect::full());
    for n in [6usize, 14] {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let inputs = [g.vertices_value(), g.edges_value()];
        for (label, expr) in [
            ("E5 TC", queries::tc_query()),
            ("E5 DTC", queries::dtc_query()),
        ] {
            let (_, rows_min) = assert_expr_identical(
                &program,
                &["D", "E"],
                &inputs,
                &expr,
                &format!("{label} n={n}"),
            );
            if n == 14 {
                assert!(
                    rows_min > 0,
                    "{label} n={n}: rows tier did not engage on some backend"
                );
            }
        }
    }
}

#[test]
fn e6_lrl_doubling_agrees() {
    use srl_stdlib::blowup::{lrl_doubling_program, names};

    let program = lrl_doubling_program();
    let inputs = [Value::list((0..5u64).map(Value::atom))];
    let outcomes = run_matrix(&program, EvalLimits::default(), &inputs, |ev, vals| {
        ev.call(names::DOUBLING, vals)
    });
    assert_tier_identical("E6 LRL doubling", &outcomes);
}

#[test]
fn e7_tm_simulation_agrees() {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    // TM configurations are tuples threaded through the simulation folds.
    let program = compile(&even_parity());
    let n = 12usize;
    let input: Vec<u8> = (0..n)
        .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
        .collect();
    let inputs = [position_domain(n), encode_input(&input)];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::ACCEPTS, vals)
    });
    assert_tier_identical("E7 accepts", &outcomes);
}

#[test]
fn e8_order_dependence_probes_agree_on_tuples() {
    use srl_stdlib::hom;

    // The E8 hom probes over *tuple* ground sets: scans and keep-last
    // folds must observe exactly the same traversal order either way.
    let program = Program::srl();
    let inputs = [
        pair_set([(0, 1), (2, 3), (4, 5), (6, 7)]),
        pair_set([(6, 7)]),
    ];
    assert_expr_identical(
        &program,
        &["S", "P"],
        &inputs,
        &hom::purple_first(var("S"), var("P")),
        "E8 purple_first(pairs)",
    );
    assert_expr_identical(
        &program,
        &["S", "P"],
        &inputs,
        &hom::even(var("S")),
        "E8 even(pairs)",
    );
}

#[test]
fn e9_relational_queries_agree_and_engage_rows() {
    use srl_bench::queries;
    use workloads::tables::CompanyDatabase;

    // The E9 tables are fixed-arity atom-tuple relations; the join
    // traverses one and produces another — both on the rows tier.
    let program = Program::new(Dialect::full());
    let db = CompanyDatabase::generate(32, 8, 4, 47);
    let inputs = [db.employees_value(), db.departments_value()];
    let (_, rows_min) = assert_expr_identical(
        &program,
        &["EMP", "DEPT"],
        &inputs,
        &queries::company_join(),
        "E9 join",
    );
    assert!(
        rows_min > 0,
        "E9 join: rows tier did not engage on some backend"
    );
    assert_expr_identical(
        &program,
        &["EMP", "DEPT"],
        &inputs,
        &queries::employees_in_department(db.departments[0].id),
        "E9 select/project",
    );
}

#[test]
fn product_relation_agrees_and_engages_rows() {
    use srl_bench::queries;

    // A × B: every accumulated element is a plain pair — the purest
    // rows-tier workload (bulk unions of column slices).
    let program = Program::new(Dialect::full());
    let inputs = [atom_set(0..12u64), atom_set(0..10u64)];
    let (v, rows_min) = assert_expr_identical(
        &program,
        &["A", "B"],
        &inputs,
        &queries::product_relation(),
        "A × B",
    );
    assert_eq!(v.len(), Some(120));
    assert!(
        rows_min > 0,
        "product: rows tier did not engage on some backend"
    );
}

// ---------------------------------------------------------------------------
// Mixed-shape adversaries: promotions, demotions, and cross-tier merges
// mid-evaluation.
// ---------------------------------------------------------------------------

#[test]
fn arity_change_mid_fold_agrees() {
    // The combiner inserts the pair for members of T and its first
    // component (a bare atom) otherwise: the accumulator promotes to the
    // rows tier while same-arity inserts land, then demotes in place on
    // the first foreign shape. Identity must survive on every backend.
    let program = Program::srl();
    let expr = set_reduce(
        var("S"),
        lam("x", "t", tuple([var("x"), member(var("x"), var("t"))])),
        lam(
            "p",
            "acc",
            if_(
                sel(var("p"), 2),
                insert(sel(var("p"), 1), var("acc")),
                insert(sel(sel(var("p"), 1), 1), var("acc")),
            ),
        ),
        empty_set(),
        var("T"),
    );
    let pairs = pair_set((0..48u64).map(|i| (i, i + 1)));
    let members = pair_set((0..24u64).map(|i| (2 * i, 2 * i + 1)));
    let inputs = [pairs, members];
    assert_expr_identical(&program, &["S", "T"], &inputs, &expr, "arity flip");
}

#[test]
fn widening_tuple_contents_agree() {
    // Mixed-arity unions, nat-component tuples, and tuple∪atom mixes all
    // force demotion out of the rows tier mid-merge.
    let program = Program::srl();
    let unary = Value::set((0..20u64).map(|i| Value::tuple([Value::atom(i)])));
    let pairs = pair_set((0..20u64).map(|i| (i, i)));
    let with_nats = Value::set((0..20u64).map(|i| Value::tuple([Value::atom(i), Value::nat(i)])));
    for (label, a, b) in [
        ("unary ∪ pairs", unary.clone(), pairs.clone()),
        ("pairs ∪ unary", pairs.clone(), unary.clone()),
        ("pairs ∪ nats", pairs.clone(), with_nats.clone()),
        ("pairs ∪ atoms", pairs.clone(), atom_set(0..20u64)),
        ("pairs ∖ nats", pairs.clone(), with_nats),
    ] {
        let inputs = [a, b];
        let expr = if label.contains('∖') {
            difference(var("A"), var("B"))
        } else {
            union(var("A"), var("B"))
        };
        assert_expr_identical(&program, &["A", "B"], &inputs, &expr, label);
    }
}

#[test]
fn named_component_first_wins_survives_the_tier() {
    // Tuples with named components are equal to their plain-rank twins
    // but display differently; first-wins must keep exactly the same copy
    // whether the target set is columnar or generic (a named duplicate
    // must not widen a row store or replace its plain copy).
    let program = Program::srl();
    let named = Value::set(
        (0..15u64)
            .map(|i| Value::tuple([Value::named_atom(i, format!("v{i}")), Value::atom(i + 1)])),
    );
    let plain = pair_set((0..30u64).map(|i| (i, i + 1)));
    let inputs = [plain, named];
    // `union(x, y)` folds over `x` inserting into `y`: the base set's
    // copies arrive first and win. With N as base the named copies stay…
    let (v, _) = assert_expr_identical(
        &program,
        &["A", "N"],
        &inputs,
        &union(var("A"), var("N")),
        "fold A into N",
    );
    assert_eq!(v.len(), Some(30));
    assert!(format!("{v}").contains("v0"), "{v}");
    // …and with the columnar A as base the plain ranks stay: a named
    // duplicate answered `false` without widening the storage.
    let (v, _) = assert_expr_identical(
        &program,
        &["A", "N"],
        &inputs,
        &union(var("N"), var("A")),
        "fold N into A",
    );
    assert_eq!(v.len(), Some(30));
    assert!(!format!("{v}").contains("v0"), "{v}");
}

// ---------------------------------------------------------------------------
// Promotion edges: the storage decision flips at the inline capacity.
// ---------------------------------------------------------------------------

#[test]
fn tuple_storage_threshold_edges_agree() {
    let program = Program::srl();
    let cases: Vec<(&str, Vec<(u64, u64)>)> = vec![
        // Inline capacity edge: 4 stays inline, 5 promotes to rows.
        ("len 3", (0..3).map(|i| (i, i + 1)).collect()),
        ("len 4", (0..4).map(|i| (i, i + 1)).collect()),
        ("len 5", (0..5).map(|i| (i, i + 1)).collect()),
        // Shared-prefix columns stress the per-column narrowing.
        ("shared prefix", (0..40).map(|i| (i / 8, i)).collect()),
        // Wide arity-3-like spread via big second components.
        ("wide ids", (0..40).map(|i| (i, i * 1_000)).collect()),
    ];
    for (label, ps) in cases {
        let inputs = [
            pair_set(ps.iter().copied()),
            pair_set(ps.iter().map(|&(i, j)| (i, j + 1))),
        ];
        let probe = ps.last().copied().unwrap_or((0, 0));
        for (op, expr) in [
            ("union", union(var("A"), var("B"))),
            ("intersection", intersection(var("A"), var("B"))),
            ("difference", difference(var("A"), var("B"))),
            (
                "member",
                member(tuple([atom(probe.0), atom(probe.1)]), var("A")),
            ),
        ] {
            assert_expr_identical(
                &program,
                &["A", "B"],
                &inputs,
                &expr,
                &format!("{label} {op}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: random tuple sets across arities, the full matrix,
// cross-checked against native sets.
// ---------------------------------------------------------------------------

/// Deterministic case stream (SplitMix64 — same construction as the other
/// property suites; failures print the case index for exact replay).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Up to 60 tuples of the given arity, drawn dense (small universe) or
    /// sparse (wide universe), so generated sets land on every tier.
    fn tuple_set(&mut self, arity: usize) -> Vec<Vec<u64>> {
        let len = self.below(60);
        let universe = if self.below(2) == 0 { 16 } else { 100_000 };
        (0..len)
            .map(|_| (0..arity).map(|_| self.below(universe)).collect())
            .collect()
    }
}

fn tuples_value(rows: &[Vec<u64>]) -> Value {
    Value::set(
        rows.iter()
            .map(|r| Value::tuple(r.iter().map(|&i| Value::atom(i)))),
    )
}

#[test]
fn random_tuple_set_algebra_is_tier_invariant() {
    let program = Program::srl();
    let mut g = Gen::new(29);
    for case in 0..16 {
        let arity = 1 + (case % 3);
        let a = g.tuple_set(arity);
        let b = g.tuple_set(arity);
        let probe: Vec<u64> = (0..arity as u64).map(|_| g.below(16)).collect();
        let inputs = [tuples_value(&a), tuples_value(&b)];
        for (op, expr) in [
            ("union", union(var("A"), var("B"))),
            ("intersection", intersection(var("A"), var("B"))),
            ("difference", difference(var("A"), var("B"))),
            (
                "member",
                member(tuple(probe.iter().map(|&i| atom(i))), var("A")),
            ),
        ] {
            let (v, _) = assert_expr_identical(
                &program,
                &["A", "B"],
                &inputs,
                &expr,
                &format!("case {case} {op}"),
            );
            // Cross-check against native sets: the tier must not change
            // *what* is computed either.
            let sa: std::collections::BTreeSet<&Vec<u64>> = a.iter().collect();
            let sb: std::collections::BTreeSet<&Vec<u64>> = b.iter().collect();
            match op {
                "member" => assert_eq!(
                    v,
                    Value::Bool(sa.contains(&probe)),
                    "case {case} member: a={a:?} probe={probe:?}"
                ),
                _ => {
                    let expect: Vec<Vec<u64>> = match op {
                        "union" => sa.union(&sb).map(|r| (*r).clone()).collect(),
                        "intersection" => sa.intersection(&sb).map(|r| (*r).clone()).collect(),
                        _ => sa.difference(&sb).map(|r| (*r).clone()).collect(),
                    };
                    assert_eq!(
                        v,
                        tuples_value(&expect),
                        "case {case} {op}: a={a:?} b={b:?}"
                    );
                }
            }
        }
    }
}
