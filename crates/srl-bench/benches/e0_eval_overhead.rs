//! E0 — evaluator overhead: isolates the representation costs the zero-copy
//! refactor (PR 1) and the sorted-vec set backend (PR 2) removed, on a
//! nested-set reduce (the worst case for deep cloning: every element is
//! itself a set).
//!
//! Measurements per size n (a set of n sets of n atoms):
//!
//! * `srl_rebuild_reduce` — the real evaluator running
//!   `set-reduce(S, id, insert, {}, {})` over a pre-compiled program,
//!   which clones every element into the accumulator. With `Arc`-shared
//!   payloads each clone is O(1).
//! * `native_share_sortedvec` — the same traversal hand-written against the
//!   live set backend (`SetRepr`): `elem.clone()` (reference-count bump) +
//!   binary-search insert into a sorted vector.
//! * `native_share_btreeset` — identical loop accumulating into a
//!   `BTreeSet<Value>`, the pre-PR-2 backend. The gap to
//!   `native_share_sortedvec` is the isolated node-churn cost the sorted
//!   vector removed.
//! * `native_deep_clone` — identical loop, but every element is copied
//!   structurally, emulating what the pre-PR-1 representation paid per
//!   iteration.
//!
//! A `rest_chain` pair does the same for `rest(rest(…))`: the slice-window
//! `pop_first` on a COW sorted vector versus the seed's rebuild of the set
//! minus its minimum each step (BTreeSet clone + remove).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::ast::Lambda;
use srl_core::dsl::*;
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::program::{Env, Program};
use srl_core::setrepr::SetRepr;
use srl_core::value::Value;

/// Structural copy of a value — the cost model of the pre-refactor
/// representation, where `clone()` copied every node.
fn deep_copy(v: &Value) -> Value {
    match v {
        Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => v.clone(),
        Value::Tuple(items) => Value::tuple(items.iter().map(deep_copy)),
        Value::Set(items) => Value::set(items.iter().map(|e| deep_copy(&e))),
        Value::List(items) => Value::list(items.iter().map(deep_copy)),
    }
}

fn nested_set(n: u64) -> Value {
    Value::set((0..n).map(|i| Value::set((0..n).map(|j| Value::atom(i * n + j)))))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_eval_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    // Compile once; the measured region is evaluation alone.
    let program = Program::new(srl_core::Dialect::full());
    let compiled = std::sync::Arc::new(program.compile());
    for n in [8u64, 16, 32] {
        let input = nested_set(n);
        let rebuild = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", input.clone());
        let mut ev = Evaluator::with_compiled(
            &program,
            std::sync::Arc::clone(&compiled),
            EvalLimits::benchmark(),
        )
        .expect("compiled from this program");
        let lowered = ev.lower(&rebuild, &env);
        group.bench_with_input(BenchmarkId::new("srl_rebuild_reduce", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.eval_lowered(&lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_share_sortedvec", n), &n, |b, _| {
            b.iter(|| {
                let items = input.as_set().unwrap();
                let mut acc = SetRepr::new();
                for elem in items {
                    acc.insert(elem.clone());
                }
                acc.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_share_btreeset", n), &n, |b, _| {
            b.iter(|| {
                let items = input.as_set().unwrap();
                let mut acc: BTreeSet<Value> = BTreeSet::new();
                for elem in items {
                    acc.insert(elem.clone());
                }
                acc.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_deep_clone", n), &n, |b, _| {
            b.iter(|| {
                let items = input.as_set().unwrap();
                let mut acc = SetRepr::new();
                for elem in items {
                    acc.insert(deep_copy(&elem));
                }
                acc.len()
            })
        });
        // rest(rest(…)) until empty: slice-window pop_first vs the seed's
        // full rebuild per step (both native, so only the representation
        // cost differs — exactly two implementations of the evaluator's
        // `Rest` operator).
        let flat = Value::set((0..n * n).map(Value::atom));
        group.bench_with_input(BenchmarkId::new("rest_chain_cow", n), &n, |b, _| {
            b.iter(|| {
                let mut s = flat.clone();
                let mut steps = 0u64;
                while let Value::Set(ref mut items) = s {
                    if items.is_empty() {
                        break;
                    }
                    std::sync::Arc::make_mut(items).pop_first();
                    steps += 1;
                }
                steps
            })
        });
        group.bench_with_input(BenchmarkId::new("rest_chain_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let mut s: BTreeSet<Value> = flat.as_set().unwrap().iter().collect();
                let mut steps = 0u64;
                while let Some(min) = s.iter().next().cloned() {
                    // The seed's rest(): copy the whole set, then remove.
                    let mut copy = s.clone();
                    copy.remove(&min);
                    s = copy;
                    steps += 1;
                }
                steps
            })
        });
        // Skewed bulk union on the *generic* (Value-level) tier: tuple
        // elements keep the operands off the columnar tiers, so this pins
        // the galloping fast path of `merge_union_sorted` itself. The long
        // side has n*n elements, the short side 8 spread across its range —
        // above the skew threshold the merge locates the long runs by
        // exponential probe and copies them wholesale, so the balanced
        // variant (two halves of the same elements) is the linear-merge
        // contrast.
        let pair = |i: u64| Value::tuple([Value::atom(i), Value::atom(i + 1)]);
        let long: SetRepr = {
            let mut s = SetRepr::new();
            for i in 0..n * n {
                s.insert(pair(2 * i));
            }
            s
        };
        let short: SetRepr = {
            let mut s = SetRepr::new();
            for k in 0..8u64 {
                s.insert(pair(2 * (k * (n * n / 8).max(1)) + 1));
            }
            s
        };
        let half = |r: std::ops::Range<u64>| {
            let mut s = SetRepr::new();
            for i in r {
                s.insert(pair(2 * i));
            }
            s
        };
        let (left, right) = (half(0..n * n / 2), half(n * n / 2..n * n));
        group.bench_with_input(BenchmarkId::new("skewed_merge_union", n), &n, |b, _| {
            b.iter(|| long.merge_union(&short).len())
        });
        group.bench_with_input(BenchmarkId::new("balanced_merge_union", n), &n, |b, _| {
            b.iter(|| left.merge_union(&right).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
