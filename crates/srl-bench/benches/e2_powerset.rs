//! E2 — Example 3.12: the exponential cost of set-height 2 (powerset), versus
//! the linear cost of a same-shaped set-height-1 query (rebuilding the set).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::value::Value;
use srl_stdlib::blowup::{names, powerset_program};

fn bench(c: &mut Criterion) {
    // Compiled once; the measured region is evaluation alone.
    let program = powerset_program();
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e2_powerset");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [2u64, 4, 6, 8, 10] {
        let input = Value::set((0..n).map(Value::atom));
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_powerset", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.call(names::POWERSET, std::slice::from_ref(&input))
                    .unwrap()
            })
        });
        // Backend axis: the unsuffixed variant above runs the default
        // backend (the bytecode VM); this one pins the reference tree-walk.
        let mut tree =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::TreeWalk);
        group.bench_with_input(BenchmarkId::new("srl_powerset_tree", n), &n, |b, _| {
            b.iter(|| {
                tree.reset_stats();
                tree.call(names::POWERSET, std::slice::from_ref(&input))
                    .unwrap()
            })
        });
        // Par axis: the VM with a 4-worker pool. The powerset's folds are
        // call-threaded (Generic, ordered), so this variant currently pins
        // the *absence* of sharding overhead rather than a speedup — the
        // interprocedural monotone-spine analysis is the ROADMAP follow-up
        // that would let these folds split.
        let mut par =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::vm_with_threads(4));
        group.bench_with_input(BenchmarkId::new("srl_powerset_par", n), &n, |b, _| {
            b.iter(|| {
                par.reset_stats();
                par.call(names::POWERSET, std::slice::from_ref(&input))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_powerset", n), &n, |b, _| {
            b.iter(|| {
                let items: Vec<u64> = (0..n).collect();
                let mut subsets: Vec<Vec<u64>> = vec![vec![]];
                for &x in &items {
                    let mut extended: Vec<Vec<u64>> = subsets
                        .iter()
                        .cloned()
                        .map(|mut s| {
                            s.push(x);
                            s
                        })
                        .collect();
                    subsets.append(&mut extended);
                }
                subsets.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
