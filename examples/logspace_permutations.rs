//! Iterated permutation multiplication in BASRL (Lemma 4.10): the L-complete
//! problem solved with a constant-size accumulator.
//!
//! Run with `cargo run -p srl-examples --bin logspace_permutations`.

use srl_core::eval::run_program;
use srl_core::{EvalLimits, Value};
use srl_examples::print_header;
use srl_stdlib::perm::{names, padded_domain, perm_program};
use workloads::permutation::IteratedProductInstance;

fn main() {
    let program = perm_program();
    print_header("Composing random permutations in BASRL");
    for n in [4usize, 6, 8] {
        let instance = IteratedProductInstance::random_square(n, 7);
        let product = instance.product();
        let (value, stats) = run_program(
            &program,
            names::IP,
            &[
                padded_domain(&instance),
                instance.to_srl_value(),
                Value::atom(0),
            ],
            EvalLimits::benchmark(),
        )
        .unwrap();
        let image = value.as_tuple().unwrap()[1].clone();
        println!(
            "n = {n}: SRL says 0 ↦ {image}, native product says 0 ↦ {}; max accumulator weight = {}",
            product.apply(0),
            stats.max_accumulator_weight
        );
    }
    println!("\nThe accumulator stays the same size as n grows — the logspace signature of Theorem 4.13.");
}
