//! The type language of SRL.
//!
//! Types are built from the booleans, a single ordered base type of domain
//! elements ("atoms"), the naturals (an extension discussed in Section 3 and
//! used in Section 5), fixed-arity tuples, `set of`, and `list of` (the LRL
//! extension). Type variables exist only so that `emptyset` — which the paper
//! gives the polymorphic type `set(alpha)` — can be checked; they are always
//! resolved away by unification before evaluation.
//!
//! The three syntactic measures the paper's theorems hinge on are defined
//! here: `set_height` (Definition 2.2), `tuple_width` and `tuple_nesting`
//! (Proposition 3.8).

use std::fmt;

use crate::value::Value;

/// A type of the set-reduce language.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The booleans.
    Bool,
    /// The single ordered base type of domain elements.
    Atom,
    /// Natural numbers (ℕ) — the unbounded-successor extension.
    Nat,
    /// A fixed-arity tuple; components are selected positionally (`sel_i`).
    Tuple(Vec<Type>),
    /// A finite set of elements of the given type.
    Set(Box<Type>),
    /// A finite list of elements of the given type (LRL).
    List(Box<Type>),
    /// A type variable, used only during inference (e.g. for `emptyset`).
    Var(u32),
}

impl Type {
    /// `set of t`.
    pub fn set_of(t: Type) -> Type {
        Type::Set(Box::new(t))
    }

    /// `list of t`.
    pub fn list_of(t: Type) -> Type {
        Type::List(Box::new(t))
    }

    /// `tuple(t1, …, tk)`.
    pub fn tuple_of(ts: impl IntoIterator<Item = Type>) -> Type {
        Type::Tuple(ts.into_iter().collect())
    }

    /// The relation type `set of [Atom; arity]` used to encode input
    /// relations of a vocabulary (Section 3).
    pub fn relation(arity: usize) -> Type {
        Type::set_of(Type::tuple_of(std::iter::repeat_n(Type::Atom, arity)))
    }

    /// Definition 2.2: `set-height(base) = 0`,
    /// `set-height(set of α) = 1 + set-height(α)`; tuples and lists take the
    /// maximum over their components.
    pub fn set_height(&self) -> usize {
        match self {
            Type::Bool | Type::Atom | Type::Nat | Type::Var(_) => 0,
            Type::Tuple(ts) => ts.iter().map(Type::set_height).max().unwrap_or(0),
            Type::Set(t) => 1 + t.set_height(),
            Type::List(t) => t.set_height(),
        }
    }

    /// List-height, the analogue of Definition 2.2 for the LRL extension.
    pub fn list_height(&self) -> usize {
        match self {
            Type::Bool | Type::Atom | Type::Nat | Type::Var(_) => 0,
            Type::Tuple(ts) => ts.iter().map(Type::list_height).max().unwrap_or(0),
            Type::Set(t) => t.list_height(),
            Type::List(t) => 1 + t.list_height(),
        }
    }

    /// Maximum tuple width (arity) occurring anywhere in the type
    /// (Proposition 3.8's `w`). Non-tuple types have width 1.
    pub fn tuple_width(&self) -> usize {
        match self {
            Type::Bool | Type::Atom | Type::Nat | Type::Var(_) => 1,
            Type::Tuple(ts) => ts
                .iter()
                .map(Type::tuple_width)
                .max()
                .unwrap_or(1)
                .max(ts.len().max(1)),
            Type::Set(t) | Type::List(t) => t.tuple_width(),
        }
    }

    /// Maximum tuple nesting depth (Proposition 3.8's `l`). Non-tuple types
    /// have nesting 0.
    pub fn tuple_nesting(&self) -> usize {
        match self {
            Type::Bool | Type::Atom | Type::Nat | Type::Var(_) => 0,
            Type::Tuple(ts) => 1 + ts.iter().map(Type::tuple_nesting).max().unwrap_or(0),
            Type::Set(t) | Type::List(t) => t.tuple_nesting(),
        }
    }

    /// True iff equality on this type is axiomatised directly (rule 6 of the
    /// grammar requires the compared type to "include an equality relation"):
    /// booleans, atoms, naturals, and tuples thereof. Equality on sets and
    /// lists must be *expressed* with `set-reduce` (the stdlib does so).
    pub fn has_primitive_equality(&self) -> bool {
        match self {
            Type::Bool | Type::Atom | Type::Nat => true,
            Type::Tuple(ts) => ts.iter().all(Type::has_primitive_equality),
            Type::Set(_) | Type::List(_) | Type::Var(_) => false,
        }
    }

    /// True iff the type carries a total order usable by `≤` and by the
    /// `choose` mechanism: same as primitive equality in this implementation.
    pub fn has_primitive_order(&self) -> bool {
        self.has_primitive_equality()
    }

    /// True iff no type variable occurs in the type.
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Bool | Type::Atom | Type::Nat => true,
            Type::Var(_) => false,
            Type::Tuple(ts) => ts.iter().all(Type::is_ground),
            Type::Set(t) | Type::List(t) => t.is_ground(),
        }
    }

    /// True iff the type mentions `Nat` anywhere. The paper's Section 5
    /// remarks that it is the combination `set of ℕ` (or unbounded successor)
    /// that pushes the language to primitive recursive power.
    pub fn mentions_nat(&self) -> bool {
        match self {
            Type::Nat => true,
            Type::Bool | Type::Atom | Type::Var(_) => false,
            Type::Tuple(ts) => ts.iter().any(Type::mentions_nat),
            Type::Set(t) | Type::List(t) => t.mentions_nat(),
        }
    }

    /// True iff a `set of` type with a `Nat` element type occurs — the
    /// specific combination Section 3 forbids for membership in P.
    pub fn has_set_of_nat(&self) -> bool {
        match self {
            Type::Bool | Type::Atom | Type::Nat | Type::Var(_) => false,
            Type::Tuple(ts) => ts.iter().any(Type::has_set_of_nat),
            Type::Set(t) => t.mentions_nat() || t.has_set_of_nat(),
            Type::List(t) => t.has_set_of_nat(),
        }
    }

    /// Infers the type of a closed value, if it has one (heterogeneous or
    /// empty collections are given element type `Var(0)`).
    pub fn of_value(v: &Value) -> Type {
        match v {
            Value::Bool(_) => Type::Bool,
            Value::Atom(_) => Type::Atom,
            Value::Nat(_) => Type::Nat,
            Value::Tuple(items) => Type::Tuple(items.iter().map(Type::of_value).collect()),
            Value::Set(items) => match items.iter().next() {
                Some(first) => Type::set_of(Type::of_value(&first)),
                None => Type::set_of(Type::Var(0)),
            },
            Value::List(items) => match items.first() {
                Some(first) => Type::list_of(Type::of_value(first)),
                None => Type::list_of(Type::Var(0)),
            },
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Atom => write!(f, "atom"),
            Type::Nat => write!(f, "nat"),
            Type::Var(i) => write!(f, "'a{i}"),
            Type::Tuple(ts) => {
                write!(f, "[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
            Type::Set(t) => write!(f, "set of {t}"),
            Type::List(t) => write!(f, "list of {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_height_matches_definition_2_2() {
        assert_eq!(Type::Atom.set_height(), 0);
        assert_eq!(Type::Bool.set_height(), 0);
        assert_eq!(Type::set_of(Type::Atom).set_height(), 1);
        assert_eq!(Type::set_of(Type::set_of(Type::Atom)).set_height(), 2);
        assert_eq!(
            Type::tuple_of([Type::Atom, Type::set_of(Type::Atom)]).set_height(),
            1
        );
        assert_eq!(
            Type::set_of(Type::tuple_of([Type::Atom, Type::set_of(Type::Atom)])).set_height(),
            2
        );
    }

    #[test]
    fn list_height_analogous() {
        assert_eq!(Type::list_of(Type::Atom).list_height(), 1);
        assert_eq!(Type::list_of(Type::list_of(Type::Atom)).list_height(), 2);
        assert_eq!(Type::set_of(Type::Atom).list_height(), 0);
    }

    #[test]
    fn tuple_width_and_nesting() {
        let t = Type::tuple_of([Type::Atom, Type::Atom, Type::Atom]);
        assert_eq!(t.tuple_width(), 3);
        assert_eq!(t.tuple_nesting(), 1);

        // [atom, [atom, atom, atom, atom]] — width 4, nesting 2.
        let nested = Type::tuple_of([
            Type::Atom,
            Type::tuple_of([Type::Atom, Type::Atom, Type::Atom, Type::Atom]),
        ]);
        assert_eq!(nested.tuple_width(), 4);
        assert_eq!(nested.tuple_nesting(), 2);

        assert_eq!(Type::Atom.tuple_width(), 1);
        assert_eq!(Type::Atom.tuple_nesting(), 0);
        assert_eq!(Type::set_of(nested.clone()).tuple_width(), 4);
        assert_eq!(Type::set_of(nested).tuple_nesting(), 2);
    }

    #[test]
    fn relation_type_shape() {
        let r = Type::relation(2);
        assert_eq!(r, Type::set_of(Type::tuple_of([Type::Atom, Type::Atom])));
        assert_eq!(r.set_height(), 1);
        assert_eq!(r.tuple_width(), 2);
    }

    #[test]
    fn primitive_equality_excludes_sets() {
        assert!(Type::Bool.has_primitive_equality());
        assert!(Type::Atom.has_primitive_equality());
        assert!(Type::Nat.has_primitive_equality());
        assert!(Type::tuple_of([Type::Atom, Type::Bool]).has_primitive_equality());
        assert!(!Type::set_of(Type::Atom).has_primitive_equality());
        assert!(!Type::tuple_of([Type::Atom, Type::set_of(Type::Atom)]).has_primitive_equality());
        assert!(!Type::list_of(Type::Atom).has_primitive_equality());
    }

    #[test]
    fn nat_detection() {
        assert!(Type::Nat.mentions_nat());
        assert!(Type::set_of(Type::Nat).mentions_nat());
        assert!(!Type::set_of(Type::Atom).mentions_nat());
        assert!(Type::set_of(Type::Nat).has_set_of_nat());
        assert!(Type::set_of(Type::tuple_of([Type::Atom, Type::Nat])).has_set_of_nat());
        assert!(!Type::tuple_of([Type::Nat, Type::set_of(Type::Atom)]).has_set_of_nat());
    }

    #[test]
    fn groundness() {
        assert!(Type::set_of(Type::Atom).is_ground());
        assert!(!Type::set_of(Type::Var(0)).is_ground());
        assert!(!Type::tuple_of([Type::Atom, Type::Var(3)]).is_ground());
    }

    #[test]
    fn type_of_value() {
        assert_eq!(Type::of_value(&Value::bool(true)), Type::Bool);
        assert_eq!(Type::of_value(&Value::atom(3)), Type::Atom);
        assert_eq!(Type::of_value(&Value::nat(3)), Type::Nat);
        assert_eq!(
            Type::of_value(&Value::tuple([Value::atom(0), Value::bool(false)])),
            Type::tuple_of([Type::Atom, Type::Bool])
        );
        assert_eq!(
            Type::of_value(&Value::set([Value::atom(0), Value::atom(1)])),
            Type::set_of(Type::Atom)
        );
        assert_eq!(
            Type::of_value(&Value::empty_set()),
            Type::set_of(Type::Var(0))
        );
    }

    #[test]
    fn display() {
        assert_eq!(Type::set_of(Type::Atom).to_string(), "set of atom");
        assert_eq!(
            Type::tuple_of([Type::Atom, Type::Bool]).to_string(),
            "[atom, bool]"
        );
        assert_eq!(Type::list_of(Type::Nat).to_string(), "list of nat");
        assert_eq!(Type::Var(2).to_string(), "'a2");
    }
}
