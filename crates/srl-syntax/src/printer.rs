//! Pretty-printer: renders expressions and programs in the paper's concrete
//! syntax (`set-reduce(s, lambda(x, y) …, …)`, `if … then … else …`,
//! selectors `e.1`), so generated programs can be read next to the paper.

use srl_core::ast::{Expr, Lambda};
use srl_core::program::Program;

/// Renders an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, &mut out);
    out
}

/// Renders a two-parameter lambda.
pub fn print_lambda(lambda: &Lambda) -> String {
    format!(
        "lambda({}, {}) {}",
        lambda.x,
        lambda.y,
        print_expr(&lambda.body)
    )
}

/// Renders a whole program, one definition per line block.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for def in &program.defs {
        let params: Vec<&str> = def.params.iter().map(|p| p.name.as_str()).collect();
        out.push_str(&format!(
            "{}({}) =\n  {}\n\n",
            def.name,
            params.join(", "),
            print_expr(&def.body)
        ));
    }
    out
}

fn write_expr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Const(v) => out.push_str(&v.to_string()),
        Expr::Var(v) => out.push_str(v),
        Expr::If(c, t, e) => {
            out.push_str("if ");
            write_expr(c, out);
            out.push_str(" then ");
            write_expr(t, out);
            out.push_str(" else ");
            write_expr(e, out);
        }
        Expr::Tuple(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, out);
            }
            out.push(']');
        }
        Expr::Sel(i, e) => {
            // Keyword-delimited forms (`if`/`let`) must be parenthesised
            // under a selector: `if c then t else u.1` re-parses with the
            // selector on `u`. Numeric literals are parenthesised too —
            // `5.1` does lex as Number-Dot-Number and re-parses correctly,
            // but `(5).1` is the canonical form (a bare `5.1` reads as a
            // decimal fraction). Everything else is self-delimiting.
            if sel_operand_needs_parens(e) {
                out.push('(');
                write_expr(e, out);
                out.push(')');
            } else {
                write_expr(e, out);
            }
            out.push_str(&format!(".{i}"));
        }
        Expr::Eq(a, b) => binary(out, a, " = ", b),
        Expr::Leq(a, b) => binary(out, a, " <= ", b),
        Expr::EmptySet => out.push_str("emptyset"),
        Expr::Insert(e, s) => fun(out, "insert", &[e, s]),
        Expr::Choose(s) => fun(out, "choose", &[s]),
        Expr::Rest(s) => fun(out, "rest", &[s]),
        Expr::SetReduce {
            set,
            app,
            acc,
            base,
            extra,
        } => {
            out.push_str("set-reduce(");
            write_expr(set, out);
            out.push_str(", ");
            out.push_str(&print_lambda(app));
            out.push_str(", ");
            out.push_str(&print_lambda(acc));
            out.push_str(", ");
            write_expr(base, out);
            out.push_str(", ");
            write_expr(extra, out);
            out.push(')');
        }
        Expr::ListReduce {
            list,
            app,
            acc,
            base,
            extra,
        } => {
            out.push_str("list-reduce(");
            write_expr(list, out);
            out.push_str(", ");
            out.push_str(&print_lambda(app));
            out.push_str(", ");
            out.push_str(&print_lambda(acc));
            out.push_str(", ");
            write_expr(base, out);
            out.push_str(", ");
            write_expr(extra, out);
            out.push(')');
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, out);
            }
            out.push(')');
        }
        Expr::Let { name, value, body } => {
            out.push_str("let ");
            out.push_str(name);
            out.push_str(" = ");
            write_expr(value, out);
            out.push_str(" in ");
            write_expr(body, out);
        }
        Expr::New(s) => fun(out, "new", &[s]),
        Expr::NatConst(n) => out.push_str(&n.to_string()),
        Expr::Succ(e) => fun(out, "succ", &[e]),
        Expr::NatAdd(a, b) => binary(out, a, " + ", b),
        Expr::NatMul(a, b) => binary(out, a, " * ", b),
        Expr::EmptyList => out.push_str("emptylist"),
        Expr::Cons(e, l) => fun(out, "cons", &[e, l]),
        Expr::Head(l) => fun(out, "head", &[l]),
        Expr::Tail(l) => fun(out, "tail", &[l]),
    }
}

fn sel_operand_needs_parens(e: &Expr) -> bool {
    matches!(
        e,
        Expr::If(..)
            | Expr::Let { .. }
            | Expr::NatConst(_)
            | Expr::Const(srl_core::value::Value::Nat(_))
    )
}

fn binary(out: &mut String, a: &Expr, op: &str, b: &Expr) {
    out.push('(');
    write_expr(a, out);
    out.push_str(op);
    write_expr(b, out);
    out.push(')');
}

fn fun(out: &mut String, name: &str, args: &[&Expr]) {
    out.push_str(name);
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(a, out);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dsl::*;
    use srl_core::value::Value;

    #[test]
    fn literals_and_operators() {
        assert_eq!(print_expr(&bool_(true)), "true");
        assert_eq!(print_expr(&atom(3)), "d3");
        assert_eq!(print_expr(&eq(var("x"), atom(1))), "(x = d1)");
        assert_eq!(print_expr(&leq(var("x"), var("y"))), "(x <= y)");
        assert_eq!(print_expr(&sel(var("t"), 2)), "t.2");
        assert_eq!(
            print_expr(&insert(var("x"), empty_set())),
            "insert(x, emptyset)"
        );
        assert_eq!(print_expr(&const_v(Value::nat(0))), "0");
    }

    #[test]
    fn if_tuple_let_call() {
        assert_eq!(
            print_expr(&if_(var("b"), atom(1), atom(2))),
            "if b then d1 else d2"
        );
        assert_eq!(print_expr(&tuple([var("a"), var("b")])), "[a, b]");
        assert_eq!(
            print_expr(&let_in("x", atom(1), var("x"))),
            "let x = d1 in x"
        );
        assert_eq!(
            print_expr(&call("union", [var("A"), var("B")])),
            "union(A, B)"
        );
    }

    #[test]
    fn set_reduce_shape_matches_paper_syntax() {
        let e = set_reduce(
            var("S"),
            lam("x", "e", var("x")),
            lam("v", "acc", insert(var("v"), var("acc"))),
            empty_set(),
            var("R"),
        );
        let text = print_expr(&e);
        assert!(text.starts_with("set-reduce(S, lambda(x, e) x, lambda(v, acc) insert(v, acc)"));
        assert!(text.ends_with("emptyset, R)"));
    }

    #[test]
    fn extensions_print() {
        assert_eq!(print_expr(&new_value(var("S"))), "new(S)");
        assert_eq!(print_expr(&nat_add(nat(1), nat(2))), "(1 + 2)");
        assert_eq!(
            print_expr(&cons(atom(1), empty_list())),
            "cons(d1, emptylist)"
        );
        assert_eq!(print_expr(&head(var("L"))), "head(L)");
    }

    #[test]
    fn selectors_of_keyword_forms_are_parenthesised() {
        assert_eq!(
            print_expr(&sel(if_(var("b"), var("t"), var("u")), 1)),
            "(if b then t else u).1"
        );
        assert_eq!(
            print_expr(&sel(let_in("x", var("v"), var("x")), 2)),
            "(let x = v in x).2"
        );
        assert_eq!(print_expr(&sel(nat(5), 1)), "(5).1");
        // Self-delimiting operands stay bare.
        assert_eq!(print_expr(&sel(sel(var("t"), 1), 2)), "t.1.2");
        assert_eq!(print_expr(&sel(eq(var("a"), var("b")), 1)), "(a = b).1");
        assert_eq!(print_expr(&sel(call("f", [var("x")]), 1)), "f(x).1");
    }

    #[test]
    fn whole_programs_print_with_headers() {
        let program = srl_stdlib::arith::arithmetic_program();
        let text = print_program(&program);
        assert!(text.contains("inc(D, a) ="));
        assert!(text.contains("set-reduce("));
        // Every definition name appears.
        for def in &program.defs {
            assert!(text.contains(&format!("{}(", def.name)), "{}", def.name);
        }
    }
}
