//! E6 — Theorem 5.2 / Corollary 5.5: primitive recursion compiled to SRL+new
//! vs. the PrTerm evaluator; the LRL doubling blow-up.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machines::primrec::library;
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::value::Value;
use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
use srl_stdlib::primrec_compile::{compile, decode_nat, encode_nat};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_primrec");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    // Compiled once; the measured region is evaluation alone (`eval_compiled`
    // would re-lower the compiled-PR program on every call).
    let add = compile(&library::add()).unwrap();
    let mul = compile(&library::mul()).unwrap();
    let add_compiled = Arc::new(add.program.compile());
    let mul_compiled = Arc::new(mul.program.compile());
    for n in [4u64, 8, 16] {
        let mut add_ev = Evaluator::with_compiled(
            &add.program,
            Arc::clone(&add_compiled),
            EvalLimits::benchmark(),
        )
        .expect("compiled from this program");
        let mut mul_ev = Evaluator::with_compiled(
            &mul.program,
            Arc::clone(&mul_compiled),
            EvalLimits::benchmark(),
        )
        .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_new_add", n), &n, |b, &n| {
            let args = [encode_nat(n), encode_nat(n / 2)];
            b.iter(|| {
                add_ev.reset_stats();
                decode_nat(&add_ev.call(&add.entry, &args).unwrap()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("primrec_add", n), &n, |b, &n| {
            b.iter(|| library::add().eval_u64(&[n, n / 2]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("srl_new_mul", n), &n, |b, &n| {
            let args = [encode_nat(n.min(8)), encode_nat(3)];
            b.iter(|| {
                mul_ev.reset_stats();
                decode_nat(&mul_ev.call(&mul.entry, &args).unwrap()).unwrap()
            })
        });
    }
    let doubling = lrl_doubling_program();
    let doubling_compiled = Arc::new(doubling.compile());
    for n in [2u64, 6, 10] {
        let input = Value::list((0..n).map(Value::atom));
        let mut ev = Evaluator::with_compiled(
            &doubling,
            Arc::clone(&doubling_compiled),
            EvalLimits::benchmark(),
        )
        .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("lrl_doubling", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.call(blow_names::DOUBLING, std::slice::from_ref(&input))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
