//! Load generator for the `srl-serve` line protocol: an in-process server
//! driven by an **open-loop arrival schedule** over a fixed connection
//! pool, reporting request-latency percentiles, shed rate and the
//! program-cache counters. The recorded numbers live in `BENCH_8.json`.
//!
//! Three scenarios run by default:
//!
//! - **warm** — a fixed experiment-flavored request mix (E2 powerset, E3
//!   BASRL add, E1 membership/APATH, E9 projection, plus `analyze` and
//!   `check` traffic) over a handful of program texts, so after the first
//!   round every compile is a cache hit;
//! - **cold** — the same mix, but every request's program text carries a
//!   unique definition-name suffix, so every compile is a cache miss
//!   (the compile-per-request worst case);
//! - **overload** — the warm mix at a higher arrival rate against
//!   `--max-inflight 2`, demonstrating structured shedding: shed requests
//!   get the `overloaded` taxonomy immediately instead of queueing.
//!
//! Open loop means request *start times* are fixed by the schedule (index
//! `i` departs at `i / rps` seconds), not by completions — a saturated
//! server falls behind the schedule and the latency distribution shows
//! it. Each sender thread owns one connection and the requests `i ≡ j
//! (mod connections)`, so a slow response delays only its own lane's
//! later departures (noted honestly: a fully open loop would need one
//! connection per request).
//!
//! ```text
//! loadgen [--json] [--requests N] [--rps R] [--connections C]
//! ```
//!
//! `SRL_BENCH_SMOKE=1` shrinks the run to a CI-sized smoke (it must
//! finish in seconds and is asserted only to complete with zero
//! evaluation errors).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use srl_core::api::{self, Json};
use srl_core::pipeline::PipelineConfig;
use srl_serve::{ServeConfig, Server, ServerHandle};

/// One request template of the mix: a label for the report and the
/// prebuilt request line.
#[derive(Clone)]
struct MixEntry {
    #[allow(dead_code, reason = "labels document the mix in source form")]
    label: &'static str,
    line: String,
}

/// `examples/srl/<name>` resolved relative to this crate.
fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/srl")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read example {}: {e}", path.display()))
}

/// The warm request mix: experiment-flavored traffic over a small set of
/// program texts (every text repeats, so the compile cache converges to
/// all-hits), against tenant `tenant`.
fn build_mix(tenant: &str) -> Vec<MixEntry> {
    let powerset = example("powerset.srl");
    let arith = example("arith.srl");
    let membership = example("membership.srl");
    let apath = example("apath.srl");
    let arith_domain = format!(
        "{{{}}}",
        (0..12)
            .map(|i| format!("d{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let run = |label, program: &str, call: Option<&str>, args: &[&str]| {
        let call = match call {
            Some(name) => format!(", \"call\": \"{name}\""),
            None => String::new(),
        };
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(
                ", \"args\": [{}]",
                args.iter()
                    .map(|a| format!("\"{}\"", api::escape(a)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        MixEntry {
            label,
            line: format!(
                "{{\"v\": 1, \"kind\": \"run\", \"tenant\": \"{tenant}\", \"program\": \"{}\"{call}{args}}}",
                api::escape(program)
            ),
        }
    };
    vec![
        run(
            "e2_powerset",
            &powerset,
            Some("powerset"),
            &["{d1, d2, d3, d4, d5, d6, d7}"],
        ),
        run("e3_arith_add", &arith, Some("add"), &[&arith_domain, "d4", "d3"]),
        run("e1_membership", &membership, None, &[]),
        MixEntry {
            label: "e9_projection",
            line: format!(
                "{{\"v\": 1, \"kind\": \"run\", \"tenant\": \"{tenant}\", \"expr\": \
                 \"set-reduce(S, lambda(x, e) x.2, lambda(y, acc) insert(y, acc), emptyset, emptyset)\"}}"
            ),
        },
        MixEntry {
            label: "analyze_powerset",
            line: format!(
                "{{\"v\": 1, \"kind\": \"analyze\", \"tenant\": \"{tenant}\", \"program\": \"{}\"}}",
                api::escape(&powerset)
            ),
        },
        MixEntry {
            label: "e1_check_apath",
            line: format!(
                "{{\"v\": 1, \"kind\": \"check\", \"tenant\": \"{tenant}\", \"program\": \"{}\"}}",
                api::escape(&apath)
            ),
        },
    ]
}

/// The cold variant of a mix line: appends a unique one-definition suffix
/// to the program text (same work, unique fingerprint — every compile is a
/// miss). Expression-only lines have no program to perturb and are kept.
fn make_cold(line: &str, i: usize) -> String {
    match line.find("\"program\": \"") {
        Some(at) => {
            let insert_at = at + "\"program\": \"".len();
            let suffix = format!("cold_{i}(cx) = cx\\n");
            format!("{}{}{}", &line[..insert_at], suffix, &line[insert_at..])
        }
        None => line.to_string(),
    }
}

/// One measured request outcome.
struct Sample {
    latency: Duration,
    shed: bool,
    errored: bool,
}

struct ScenarioReport {
    name: &'static str,
    requests: usize,
    rps: u64,
    p50_us: u128,
    p99_us: u128,
    max_us: u128,
    wall_ms: u128,
    shed: usize,
    errors: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

/// Sends `line` and reads one response line.
fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    // One write per request: body and newline in a single TCP segment.
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .expect("send request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("response line");
    response
}

fn connect(handle: &ServerHandle) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

/// The overload mix: one heavy query (powerset of 10 atoms, ~1k subsets)
/// per tenant, so arrivals genuinely exceed the service rate and the
/// admission gate has something to shed.
fn build_heavy_mix(tenant: &str) -> Vec<MixEntry> {
    let powerset = example("powerset.srl");
    let atoms: Vec<String> = (1..=10).map(|i| format!("d{i}")).collect();
    vec![MixEntry {
        label: "e2_powerset_10",
        line: format!(
            "{{\"v\": 1, \"kind\": \"run\", \"tenant\": \"{tenant}\", \"program\": \"{}\", \
             \"call\": \"powerset\", \"args\": [\"{{{}}}\"]}}",
            api::escape(&powerset),
            atoms.join(", ")
        ),
    }]
}

/// Runs one scenario: a fresh in-process server, `requests` requests from
/// the per-tenant mixes at `rps` arrivals per second over `connections`
/// sender threads.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &'static str,
    requests: usize,
    rps: u64,
    connections: usize,
    tenants: usize,
    max_inflight: usize,
    cold: bool,
    heavy: bool,
) -> ScenarioReport {
    let handle = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight,
        session_threads: connections,
        default_config: PipelineConfig::new(),
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");

    let tenant_names: Vec<String> = (0..tenants).map(|t| format!("t{t}")).collect();
    // Setup (untimed): bind the projection input in every tenant.
    let pairs: Vec<String> = (0..300).map(|i| format!("[d{i}, d{}]", i + 300)).collect();
    {
        let (mut reader, mut writer) = connect(&handle);
        for tenant in &tenant_names {
            let bound = round_trip(
                &mut reader,
                &mut writer,
                &format!(
                    "{{\"v\": 1, \"kind\": \"bind\", \"tenant\": \"{tenant}\", \"name\": \"S\", \"value\": \"{{{}}}\"}}",
                    pairs.join(", ")
                ),
            );
            assert!(bound.contains("\"ok\": true"), "setup bind failed: {bound}");
        }
    }

    // Build every request line up front, off the timed path. Request `i`
    // goes to tenant `i % tenants`, drawing the mix entry `i % mix.len()`.
    let mixes: Vec<Vec<MixEntry>> = tenant_names
        .iter()
        .map(|t| {
            if heavy {
                build_heavy_mix(t)
            } else {
                build_mix(t)
            }
        })
        .collect();
    let lines: Vec<String> = (0..requests)
        .map(|i| {
            let mix = &mixes[i % mixes.len()];
            let line = &mix[i % mix.len()].line;
            if cold {
                make_cold(line, i)
            } else {
                line.clone()
            }
        })
        .collect();

    // Open-loop schedule: request `i` departs at `base + i / rps`, lane
    // `i % connections` carries it.
    let started = Instant::now();
    let base = started + Duration::from_millis(20);
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for lane in 0..connections {
            let lane_lines: Vec<(usize, &str)> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % connections == lane)
                .map(|(i, line)| (i, line.as_str()))
                .collect();
            let handle = &handle;
            workers.push(scope.spawn(move || {
                let (mut reader, mut writer) = connect(handle);
                let mut lane_samples = Vec::with_capacity(lane_lines.len());
                for (i, line) in lane_lines {
                    let departs = base + Duration::from_micros(i as u64 * 1_000_000 / rps);
                    if let Some(wait) = departs.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let sent = Instant::now();
                    let response = round_trip(&mut reader, &mut writer, line);
                    let shed = response.contains("\"kind\": \"overloaded\"");
                    lane_samples.push(Sample {
                        latency: sent.elapsed(),
                        shed,
                        errored: !shed && response.contains("\"error\""),
                    });
                }
                lane_samples
            }));
        }
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("sender lane"))
            .collect()
    });
    let wall_ms = started.elapsed().as_millis();

    // Final counters from the server's own accounting.
    let (mut cache_hits, mut cache_misses, mut cache_evictions) = (0u64, 0u64, 0u64);
    {
        let (mut reader, mut writer) = connect(&handle);
        for tenant in &tenant_names {
            let stats = round_trip(
                &mut reader,
                &mut writer,
                &format!("{{\"v\": 1, \"kind\": \"stats\", \"tenant\": \"{tenant}\"}}"),
            );
            let stats = Json::parse(stats.trim()).expect("stats is JSON");
            let cache = stats.get("cache").expect("stats carries cache counters");
            cache_hits += cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
            cache_misses += cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
            cache_evictions += cache.get("evictions").and_then(Json::as_u64).unwrap_or(0);
        }
    }
    handle.shutdown();

    let mut latencies: Vec<u128> = samples.iter().map(|s| s.latency.as_micros()).collect();
    latencies.sort_unstable();
    let percentile = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    ScenarioReport {
        name,
        requests,
        rps,
        p50_us: percentile(50),
        p99_us: percentile(99),
        max_us: *latencies.last().expect("at least one sample"),
        wall_ms,
        shed: samples.iter().filter(|s| s.shed).count(),
        errors: samples.iter().filter(|s| s.errored).count(),
        cache_hits,
        cache_misses,
        cache_evictions,
    }
}

fn report_json(reports: &[ScenarioReport]) -> String {
    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "  {{\n    \"scenario\": \"{}\",\n    \"requests\": {},\n    \"rps\": {},\n    \"p50_us\": {},\n    \"p99_us\": {},\n    \"max_us\": {},\n    \"wall_ms\": {},\n    \"shed\": {},\n    \"shed_rate\": {:.4},\n    \"errors\": {},\n    \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"cache_evictions\": {}\n  }}",
                r.name,
                r.requests,
                r.rps,
                r.p50_us,
                r.p99_us,
                r.max_us,
                r.wall_ms,
                r.shed,
                r.shed as f64 / r.requests as f64,
                r.errors,
                r.cache_hits,
                r.cache_misses,
                r.cache_evictions
            )
        })
        .collect();
    format!("[\n{}\n]", rows.join(",\n"))
}

fn main() {
    let mut json = false;
    let mut requests = 600usize;
    let mut rps = 150u64;
    let mut connections = 8usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("--requests N");
            }
            "--rps" => {
                rps = it.next().and_then(|w| w.parse().ok()).expect("--rps R");
            }
            "--connections" => {
                connections = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("--connections C");
            }
            other => panic!("unexpected argument `{other}`"),
        }
    }
    let smoke = std::env::var("SRL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        requests = 60;
        rps = 120;
        connections = 4;
    }

    let tenants = 4;
    let reports = vec![
        run_scenario(
            "warm",
            requests,
            rps,
            connections,
            tenants,
            64,
            false,
            false,
        ),
        run_scenario("cold", requests, rps, connections, tenants, 64, true, false),
        // Overload: a heavy query at double the arrival rate into two
        // admission slots — the point is the shed rate and that shed
        // responses return immediately, not the latency of survivors.
        run_scenario(
            "overload_max_inflight_2",
            requests,
            rps * 2,
            connections,
            tenants,
            2,
            false,
            true,
        ),
    ];

    for r in &reports {
        assert_eq!(
            r.errors, 0,
            "{}: the mix must evaluate cleanly (sheds are counted separately)",
            r.name
        );
    }
    if json {
        println!("{}", report_json(&reports));
    } else {
        println!(
            "{:<24} {:>8} {:>6} {:>9} {:>9} {:>9} {:>8} {:>6} {:>7} {:>7} {:>6}",
            "scenario",
            "requests",
            "rps",
            "p50_us",
            "p99_us",
            "max_us",
            "wall_ms",
            "shed",
            "hits",
            "misses",
            "evict"
        );
        for r in &reports {
            println!(
                "{:<24} {:>8} {:>6} {:>9} {:>9} {:>9} {:>8} {:>6} {:>7} {:>7} {:>6}",
                r.name,
                r.requests,
                r.rps,
                r.p50_us,
                r.p99_us,
                r.max_us,
                r.wall_ms,
                r.shed,
                r.cache_hits,
                r.cache_misses,
                r.cache_evictions
            );
        }
    }
}
