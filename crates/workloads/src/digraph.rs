//! Directed graphs: generators, native reachability baselines, and encodings
//! into SRL values.
//!
//! These are the workloads behind the Section 4 experiments: `TC` (transitive
//! closure, Corollary 4.2 / NL) and `DTC` (deterministic transitive closure,
//! Corollary 4.4 / L) are evaluated on digraphs generated here, against the
//! native closures computed here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srl_core::value::Value;

/// A directed graph on vertices `0 .. n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digraph {
    /// Number of vertices.
    pub n: usize,
    /// Edge list (may contain self-loops, never duplicates).
    pub edges: Vec<(usize, usize)>,
}

impl Digraph {
    /// Creates a graph from an edge list, deduplicating and dropping
    /// out-of-range edges.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        es.sort_unstable();
        es.dedup();
        Digraph { n, edges: es }
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Digraph {
            n,
            edges: Vec::new(),
        }
    }

    /// A simple directed path `0 → 1 → … → n-1`.
    pub fn path(n: usize) -> Self {
        Digraph::new(n, (1..n).map(|i| (i - 1, i)))
    }

    /// A directed cycle `0 → 1 → … → n-1 → 0`.
    pub fn cycle(n: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        if n > 0 {
            edges.push((n - 1, 0));
        }
        Digraph::new(n, edges)
    }

    /// An Erdős–Rényi-style random digraph: each ordered pair (u, v), u ≠ v,
    /// is an edge independently with probability `p`.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    edges.push((u, v));
                }
            }
        }
        Digraph::new(n, edges)
    }

    /// A random *functional* graph: every vertex has exactly one outgoing
    /// edge. On such graphs every path is deterministic, so plain transitive
    /// closure and deterministic transitive closure coincide — the workload
    /// for the DTC = L experiment.
    pub fn random_functional(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = (0..n).map(|u| (u, rng.gen_range(0..n)));
        Digraph::new(n, edges)
    }

    /// Out-neighbours of `u`.
    pub fn successors(&self, u: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == u)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Adjacency test.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.binary_search(&(u, v)).is_ok()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Vertices reachable from `source` (including `source`), by BFS — the
    /// native NL-style baseline.
    pub fn reachable_from(&self, source: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        if source >= self.n {
            return seen;
        }
        let mut queue = std::collections::VecDeque::from([source]);
        seen[source] = true;
        while let Some(u) = queue.pop_front() {
            for v in self.successors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// The full reflexive-transitive closure as a boolean matrix
    /// (`closure[u][v]` iff there is a path from u to v), by Warshall's
    /// algorithm. This is the native meaning of the paper's `TC(φ)`.
    #[allow(clippy::needless_range_loop)]
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        let mut c = vec![vec![false; self.n]; self.n];
        for u in 0..self.n {
            c[u][u] = true;
        }
        for &(u, v) in &self.edges {
            c[u][v] = true;
        }
        for k in 0..self.n {
            for i in 0..self.n {
                if c[i][k] {
                    for j in 0..self.n {
                        if c[k][j] {
                            c[i][j] = true;
                        }
                    }
                }
            }
        }
        c
    }

    /// The *deterministic* reflexive-transitive closure: `dtc[u][v]` iff `v`
    /// is reachable from `u` along edges (x, y) such that y is the **unique**
    /// successor of x (the paper's `φ_d` of Section 4).
    pub fn deterministic_transitive_closure(&self) -> Vec<Vec<bool>> {
        let unique_succ: Vec<Option<usize>> = (0..self.n)
            .map(|u| {
                let succ = self.successors(u);
                if succ.len() == 1 {
                    Some(succ[0])
                } else {
                    None
                }
            })
            .collect();
        let mut c = vec![vec![false; self.n]; self.n];
        for (u, row) in c.iter_mut().enumerate() {
            row[u] = true;
            let mut cur = u;
            // Follow the unique-successor chain; it either terminates or
            // enters a cycle within n steps.
            for _ in 0..self.n {
                match unique_succ[cur] {
                    Some(next) => {
                        row[next] = true;
                        cur = next;
                    }
                    None => break,
                }
            }
        }
        c
    }

    /// The vertex set `{d_0, …, d_{n-1}}` as an SRL value.
    pub fn vertices_value(&self) -> Value {
        Value::set((0..self.n as u64).map(Value::atom))
    }

    /// The edge relation as an SRL set of `[from, to]` pairs.
    pub fn edges_value(&self) -> Value {
        Value::set(
            self.edges
                .iter()
                .map(|&(u, v)| Value::tuple([Value::atom(u as u64), Value::atom(v as u64)])),
        )
    }

    /// Reads a closure matrix back out of an SRL set of `[from, to]` pairs.
    pub fn closure_from_value(value: &Value, n: usize) -> Option<Vec<Vec<bool>>> {
        let set = value.as_set()?;
        let mut c = vec![vec![false; n]; n];
        for item in set {
            let t = item.as_tuple()?;
            if t.len() != 2 {
                return None;
            }
            let u = t[0].as_atom()?.index as usize;
            let v = t[1].as_atom()?.index as usize;
            if u < n && v < n {
                c[u][v] = true;
            }
        }
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_dedups_and_filters() {
        let g = Digraph::new(3, [(0, 1), (0, 1), (1, 2), (5, 1), (1, 7)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = Digraph::path(4);
        assert_eq!(p.edge_count(), 3);
        assert!(p.has_edge(2, 3));
        let c = Digraph::cycle(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(3, 0));
        assert_eq!(Digraph::cycle(0).edge_count(), 0);
    }

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let a = Digraph::random(10, 0.3, 7);
        let b = Digraph::random(10, 0.3, 7);
        let c = Digraph::random(10, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn functional_graph_has_one_successor_each() {
        let g = Digraph::random_functional(20, 3);
        for u in 0..20 {
            assert_eq!(g.successors(u).len(), 1, "vertex {u}");
        }
    }

    #[test]
    fn bfs_reachability_on_path() {
        let g = Digraph::path(5);
        let r = g.reachable_from(1);
        assert_eq!(r, vec![false, true, true, true, true]);
        let r = g.reachable_from(4);
        assert_eq!(r, vec![false, false, false, false, true]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn transitive_closure_matches_bfs() {
        let g = Digraph::random(12, 0.2, 42);
        let tc = g.transitive_closure();
        for u in 0..12 {
            let bfs = g.reachable_from(u);
            for v in 0..12 {
                assert_eq!(tc[u][v], bfs[v], "({u},{v})");
            }
        }
    }

    #[test]
    fn dtc_follows_only_unique_successors() {
        // 0 → 1 → 2, and 1 → 3 as well: from 0, DTC stops at 1 because 1 has
        // two successors; TC reaches everything.
        let g = Digraph::new(4, [(0, 1), (1, 2), (1, 3)]);
        let dtc = g.deterministic_transitive_closure();
        assert!(dtc[0][1]);
        assert!(!dtc[0][2]);
        assert!(!dtc[0][3]);
        let tc = g.transitive_closure();
        assert!(tc[0][2] && tc[0][3]);
    }

    #[test]
    fn dtc_equals_tc_on_functional_graphs() {
        let g = Digraph::random_functional(16, 9);
        assert_eq!(g.transitive_closure(), g.deterministic_transitive_closure());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dtc_handles_cycles() {
        let g = Digraph::cycle(5);
        let dtc = g.deterministic_transitive_closure();
        for u in 0..5 {
            for v in 0..5 {
                assert!(dtc[u][v], "({u},{v})");
            }
        }
    }

    #[test]
    fn srl_encodings_roundtrip() {
        let g = Digraph::new(3, [(0, 1), (2, 1)]);
        assert_eq!(g.vertices_value().len(), Some(3));
        assert_eq!(g.edges_value().len(), Some(2));
        let closure = Digraph::closure_from_value(&g.edges_value(), 3).unwrap();
        assert!(closure[0][1]);
        assert!(closure[2][1]);
        assert!(!closure[1][0]);
        assert_eq!(Digraph::closure_from_value(&Value::atom(1), 3), None);
    }
}
