//! `SetRepr` — the backing store of [`Value::Set`]: inline for small sets,
//! a sorted vector with a slice window once it grows.
//!
//! The paper's cost model is driven by the set primitives (`choose`, `rest`,
//! `insert`, `set-reduce`), so the representation behind `Value::Set` is the
//! system's universal data structure. The original backing store was a
//! `BTreeSet<Value>`; profiling after the zero-copy refactor showed its node
//! churn (pointer-chasing iteration, per-node allocation on insert/clone)
//! dominating reduce-heavy workloads, and it was replaced by a sorted
//! `Vec<Value>`. This revision adds a second tier below the vector:
//!
//! * **Inline small sets.** Most accumulator sets in BASRL runs hold at most
//!   [`INLINE_CAP`] elements (bounded accumulators are the whole point of
//!   Theorem 4.13), so those live in a fixed inline array — no heap
//!   allocation for the element storage at all. The set spills to the
//!   vector representation on the first insert past the cap and stays
//!   spilled (re-smallification happens naturally on [`Clone`], which
//!   compacts).
//! * **Sorted vector with a slice window** for everything larger: iteration
//!   — what `set-reduce` does for every element — walks contiguous memory;
//!   membership and `insert` are a binary search (plus a tail shift on
//!   insertion; reduces that rebuild a set meet the common case of inserting
//!   at the end, which is a pure push); `choose` is the first element of the
//!   live window, O(1); `rest` is a slice window: popping the minimum just
//!   advances the window start, O(1) on a uniquely-owned set, so a full
//!   `rest`-chain drain is O(n) instead of O(n log n).
//!
//! The bulk operations [`SetRepr::merge_union`] and
//! [`SetRepr::merge_sorted_difference`] are O(n+m) two-pointer merges over
//! the sorted representations. They exist for callers that would otherwise
//! drive `insert` element-by-element through the evaluator — the bytecode
//! VM's fused `union` fold (`crate::vm`) sits on `merge_union`, and native
//! harness code building differences of relations can use
//! `merge_sorted_difference` instead of re-deriving it per element.
//!
//! ## Invariants
//!
//! The live elements (`as_slice`) are strictly sorted ascending in the total
//! [`Value`] order and duplicate-free — in the inline representation these
//! are `slots[..len]`, in the spilled representation `items[start..]`. Dead
//! slots (inline slots past `len`, spilled slots before `start`) hold
//! placeholder booleans and are never observed: equality, ordering, hashing,
//! iteration and length all go through the live window. [`Clone`] compacts —
//! it copies only the live elements (back into the inline form when they
//! fit) — so an `Arc::make_mut` on a shared, partially-drained set re-bases
//! it for free.
//!
//! Everything observable — the element order, what `choose`/`rest` return,
//! first-wins deduplication (two values can compare equal while differing in
//! display, e.g. named vs. unnamed atoms) and therefore every `EvalStats`
//! counter — matches the original `BTreeSet` representation exactly;
//! `tests/tests/set_backend_differential.rs` pits the two against each other
//! operation-by-operation, across the spill boundary.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Sets of up to this many elements are stored inline, without a heap
/// allocation for the element storage.
pub const INLINE_CAP: usize = 4;

/// Placeholder stored in dead slots; never observed.
const PAD: Value = Value::Bool(false);

/// A finite set of [`Value`]s: inline array when small, sorted vector with a
/// slice window once spilled.
///
/// Iteration order *is* the value order — exactly the order `set-reduce`
/// scans. See the module docs for the representation invariants.
pub struct SetRepr {
    store: Store,
}

enum Store {
    /// `slots[..len]` live, sorted, duplicate-free; the rest is [`PAD`].
    Small { len: u8, slots: [Value; INLINE_CAP] },
    /// `items[start..]` live (`rest` advances `start` instead of shifting).
    Spilled { items: Vec<Value>, start: usize },
}

impl SetRepr {
    /// The empty set.
    pub fn new() -> Self {
        SetRepr {
            store: Store::Small {
                len: 0,
                slots: [PAD; INLINE_CAP],
            },
        }
    }

    /// Builds the set from an already-sorted, deduplicated vector (private:
    /// callers are the merge ops and `FromIterator`, which establish the
    /// invariant themselves).
    fn from_sorted_vec(items: Vec<Value>) -> Self {
        if items.len() <= INLINE_CAP {
            let mut slots = [PAD; INLINE_CAP];
            let len = items.len() as u8;
            for (slot, v) in slots.iter_mut().zip(items) {
                *slot = v;
            }
            SetRepr {
                store: Store::Small { len, slots },
            }
        } else {
            SetRepr {
                store: Store::Spilled { items, start: 0 },
            }
        }
    }

    /// The live elements, ascending. This is the whole observable state.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match &self.store {
            Store::Small { len, slots } => &slots[..*len as usize],
            Store::Spilled { items, start } => &items[*start..],
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Small { len, .. } => *len as usize,
            Store::Spilled { items, start } => items.len() - start,
        }
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the elements in ascending value order.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.as_slice().iter()
    }

    /// The minimal element — the paper's `choose(S)` — if non-empty.
    #[inline]
    pub fn first(&self) -> Option<&Value> {
        self.as_slice().first()
    }

    /// Membership test (binary search).
    pub fn contains(&self, value: &Value) -> bool {
        self.as_slice().binary_search(value).is_ok()
    }

    /// Inserts `value`, keeping the set sorted and duplicate-free. Returns
    /// `true` if the value was new. Like `BTreeSet::insert`, an equal element
    /// that is already present is **kept** (first-wins: equal values may
    /// still differ in display, e.g. named vs. unnamed atoms).
    pub fn insert(&mut self, value: Value) -> bool {
        let pos = match self.as_slice().binary_search(&value) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        match &mut self.store {
            Store::Small { len, slots } => {
                let n = *len as usize;
                if n < INLINE_CAP {
                    // Shift the tail one slot right; the rotated-in value is
                    // the PAD from slot n, immediately overwritten.
                    slots[pos..=n].rotate_right(1);
                    slots[pos] = value;
                    *len += 1;
                } else {
                    // Spill: move the inline elements into a vector.
                    let mut items = Vec::with_capacity(2 * INLINE_CAP);
                    items.extend(slots.iter_mut().map(|s| std::mem::replace(s, PAD)));
                    items.insert(pos, value);
                    self.store = Store::Spilled { items, start: 0 };
                }
            }
            Store::Spilled { items, start } => {
                // Shifts only the tail after the insertion point; the common
                // ascending-rebuild case (pos == len) is a plain push.
                items.insert(*start + pos, value);
            }
        }
        true
    }

    /// Removes and returns the minimal element. Inline sets shift (at most
    /// [`INLINE_CAP`] moves); spilled sets are amortized O(1): the window
    /// start advances and the dead slot is overwritten with a placeholder.
    /// Once the dead prefix outgrows the live window the backing vector is
    /// compacted, so a uniquely-owned set driven as a worklist (`insert`
    /// interleaved with `rest`) stays O(live size), not O(total operations).
    pub fn pop_first(&mut self) -> Option<Value> {
        match &mut self.store {
            Store::Small { len, slots } => {
                let n = *len as usize;
                if n == 0 {
                    return None;
                }
                let value = std::mem::replace(&mut slots[0], PAD);
                // The PAD now at slot 0 rotates to the end of the live range.
                slots[..n].rotate_left(1);
                *len -= 1;
                Some(value)
            }
            Store::Spilled { items, start } => {
                if *start == items.len() {
                    return None;
                }
                let value = std::mem::replace(&mut items[*start], PAD);
                *start += 1;
                if *start * 2 > items.len() {
                    // At least as many pops since the last compaction as
                    // elements moved here, so the drain amortizes to O(1)
                    // per pop.
                    items.drain(..*start);
                    *start = 0;
                }
                Some(value)
            }
        }
    }

    /// `self ∪ other` as an O(n+m) two-pointer merge over the two sorted
    /// representations. On equal elements **`self`'s copy is kept** — the
    /// same first-wins rule as folding `other`'s elements into `self` with
    /// [`SetRepr::insert`], which this is the bulk form of (the VM's fused
    /// `union` fold and native relation-building callers use it instead of
    /// per-element inserts through the evaluator).
    pub fn merge_union(&self, other: &SetRepr) -> SetRepr {
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        SetRepr::from_sorted_vec(out)
    }

    /// `self \ other` as an O(n+m) two-pointer sweep over the two sorted
    /// representations — the bulk form of testing each element of `self`
    /// for membership in `other` and keeping the misses.
    pub fn merge_sorted_difference(&self, other: &SetRepr) -> SetRepr {
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = Vec::new();
        let mut j = 0;
        for v in a {
            while j < b.len() && b[j] < *v {
                j += 1;
            }
            if j < b.len() && b[j] == *v {
                j += 1;
            } else {
                out.push(v.clone());
            }
        }
        SetRepr::from_sorted_vec(out)
    }

    /// Number of backing slots currently held (live + dead). Exposed for
    /// tests that pin the amortized-compaction guarantee.
    #[doc(hidden)]
    pub fn backing_slots(&self) -> usize {
        match &self.store {
            Store::Small { .. } => INLINE_CAP,
            Store::Spilled { items, .. } => items.len(),
        }
    }

    /// True if the elements are stored inline (no heap allocation for the
    /// element storage). Exposed for tests pinning the spill boundary.
    #[doc(hidden)]
    pub fn is_inline(&self) -> bool {
        matches!(self.store, Store::Small { .. })
    }
}

impl Default for SetRepr {
    fn default() -> Self {
        SetRepr::new()
    }
}

/// Cloning compacts: only the live elements are copied, back into the inline
/// form when they fit, so a shared, partially-drained set re-bases on
/// copy-on-write.
impl Clone for SetRepr {
    fn clone(&self) -> Self {
        SetRepr::from_sorted_vec(self.as_slice().to_vec())
    }
}

/// Builds the set from arbitrary (unsorted, possibly duplicated) values.
/// Deduplication is first-wins, matching a sequence of `BTreeSet::insert`s:
/// the stable sort keeps equal values in arrival order and `dedup` keeps the
/// first of each run.
impl FromIterator<Value> for SetRepr {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut items: Vec<Value> = iter.into_iter().collect();
        items.sort();
        items.dedup();
        SetRepr::from_sorted_vec(items)
    }
}

impl Extend<Value> for SetRepr {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a SetRepr {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for SetRepr {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        // Unify the two stores into one owned vector of the live elements
        // (dead slots are placeholders, not elements).
        match self.store {
            Store::Small { len, slots } => {
                let mut out: Vec<Value> = slots.into_iter().collect();
                out.truncate(len as usize);
                out.into_iter()
            }
            Store::Spilled { mut items, start } => {
                items.drain(..start);
                items.into_iter()
            }
        }
    }
}

impl PartialEq for SetRepr {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for SetRepr {}

impl PartialOrd for SetRepr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic on the ascending element sequence — the same order
/// `BTreeSet<Value>` exposed, so the total [`Value`] order (and with it every
/// `choose`/`rest`/`set-reduce` traversal) is unchanged.
impl Ord for SetRepr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for SetRepr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Like the std collections: length, then elements in order.
        self.len().hash(state);
        for v in self {
            v.hash(state);
        }
    }
}

/// Renders like `BTreeSet` did: `{elem, elem, …}`.
impl fmt::Debug for SetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(ixs: impl IntoIterator<Item = u64>) -> SetRepr {
        ixs.into_iter().map(Value::atom).collect()
    }

    #[test]
    fn from_iter_sorts_and_dedups_first_wins() {
        let s: SetRepr = [
            Value::atom(3),
            Value::named_atom(1, "first"),
            Value::atom(1),
            Value::atom(2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 3);
        // Equal atoms collapse to the *first* occurrence (the named one).
        assert_eq!(format!("{:?}", s.first().unwrap()), "first#1");
    }

    #[test]
    fn insert_keeps_sorted_and_reports_novelty() {
        let mut s = SetRepr::new();
        assert!(s.insert(Value::atom(5)));
        assert!(s.insert(Value::atom(1)));
        assert!(s.insert(Value::atom(3)));
        assert!(!s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().cloned().collect();
        assert_eq!(got, vec![Value::atom(1), Value::atom(3), Value::atom(5)]);
        assert!(s.contains(&Value::atom(3)));
        assert!(!s.contains(&Value::atom(4)));
    }

    #[test]
    fn insert_keeps_existing_on_duplicate() {
        let mut s = SetRepr::new();
        s.insert(Value::named_atom(2, "kept"));
        assert!(!s.insert(Value::atom(2)));
        assert_eq!(format!("{:?}", s.first().unwrap()), "kept#2");
    }

    #[test]
    fn small_sets_stay_inline_and_spill_on_growth() {
        let mut s = SetRepr::new();
        for i in 0..INLINE_CAP as u64 {
            assert!(s.is_inline(), "inline up to the cap");
            s.insert(Value::atom(i * 2));
        }
        assert!(s.is_inline(), "exactly at the cap is still inline");
        // The spilling insert lands in the middle and keeps the order.
        s.insert(Value::atom(3));
        assert!(!s.is_inline(), "past the cap spills to the vector");
        let got: Vec<_> = s.iter().cloned().collect();
        assert_eq!(
            got,
            [0u64, 2, 3, 4, 6].map(Value::atom).to_vec(),
            "order preserved across the spill"
        );
        // Once spilled, stays spilled in place — but a clone re-smallifies
        // when the live window fits inline again.
        s.pop_first();
        s.pop_first();
        assert!(!s.is_inline());
        assert_eq!(s.len(), 3);
        let compacted = s.clone();
        assert!(compacted.is_inline(), "clone compacts back inline");
        assert_eq!(compacted, s);
    }

    #[test]
    fn pop_first_drains_ascending_in_place() {
        for seed in [vec![4, 2, 9], vec![4, 2, 9, 11, 7, 5]] {
            // Covers both the inline and the spilled store.
            let mut s = atoms(seed.iter().copied());
            let mut expect: Vec<u64> = seed.clone();
            expect.sort_unstable();
            for e in expect {
                assert_eq!(s.first(), Some(&Value::atom(e)));
                assert_eq!(s.pop_first(), Some(Value::atom(e)));
            }
            assert_eq!(s.pop_first(), None);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn window_is_invisible_to_eq_ord_hash_and_clone() {
        use std::collections::hash_map::DefaultHasher;
        // Large enough to be spilled, so the drained window exists.
        let mut drained = atoms([1, 2, 3, 4, 5, 6]);
        drained.pop_first();
        let fresh = atoms([2, 3, 4, 5, 6]);
        assert_eq!(drained, fresh);
        assert_eq!(drained.cmp(&fresh), Ordering::Equal);
        let hash = |s: &SetRepr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&drained), hash(&fresh));
        let compacted = drained.clone();
        assert_eq!(compacted, fresh);
        assert_eq!(compacted.backing_slots(), 5, "clone copies only the window");
    }

    #[test]
    fn insert_into_drained_window_lands_in_window() {
        let mut s = atoms([1, 5, 9, 13, 17]);
        s.pop_first();
        assert!(s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().cloned().collect();
        assert_eq!(got, [3u64, 5, 9, 13, 17].map(Value::atom).to_vec());
        // Re-inserting the popped minimum is a fresh element again.
        assert!(s.insert(Value::atom(1)));
        assert_eq!(s.first(), Some(&Value::atom(1)));
    }

    #[test]
    fn interleaved_pop_and_insert_keeps_backing_storage_bounded() {
        // The worklist pattern `S = insert(x, rest(S))`, iterated: without
        // amortized compaction the dead prefix would grow by one slot per
        // round on a uniquely-owned set.
        let mut s = atoms(0u64..8);
        for round in 0..10_000u64 {
            let popped = s.pop_first().expect("non-empty");
            assert_eq!(popped, Value::atom(round), "FIFO over ranks");
            s.insert(Value::atom(round + 8));
            assert_eq!(s.len(), 8, "round {round}");
        }
        assert!(
            s.backing_slots() <= 2 * s.len(),
            "backing storage grew unboundedly: {} slots for {} live elements",
            s.backing_slots(),
            s.len()
        );
    }

    #[test]
    fn ordering_is_lexicographic_on_elements() {
        assert!(atoms([1]) < atoms([2]));
        assert!(atoms([1, 2]) < atoms([1, 3]));
        assert!(atoms([1]) < atoms([1, 2]), "a strict prefix sorts first");
        assert!(atoms([0, 1]) < atoms([1]), "smaller minimum sorts first");
        assert_eq!(atoms([]).cmp(&atoms([])), Ordering::Equal);
        // Inline and spilled stores compare by elements alone.
        let spilled = atoms([1, 2, 3, 4, 5, 6]);
        let mut drained = spilled.clone();
        for _ in 0..3 {
            drained.pop_first();
        }
        assert_eq!(drained.cmp(&atoms([4, 5, 6])), Ordering::Equal);
    }

    #[test]
    fn owned_iteration_skips_dead_slots() {
        let mut s = atoms([7, 3, 5]);
        s.pop_first();
        let got: Vec<_> = s.into_iter().collect();
        assert_eq!(got, vec![Value::atom(5), Value::atom(7)]);
        let mut s = atoms([7, 3, 5, 11, 9, 1]);
        s.pop_first();
        let got: Vec<_> = s.into_iter().collect();
        assert_eq!(got, [3u64, 5, 7, 9, 11].map(Value::atom).to_vec());
    }

    #[test]
    fn merge_union_is_first_wins_and_sorted() {
        let a = atoms([1, 3, 5, 7, 9, 11]);
        let b = atoms([2, 3, 4, 11, 12]);
        let u = a.merge_union(&b);
        let got: Vec<_> = u.iter().cloned().collect();
        assert_eq!(
            got,
            [1u64, 2, 3, 4, 5, 7, 9, 11, 12].map(Value::atom).to_vec()
        );
        // Ties keep self's copy — the same rule as insert-into-self.
        let named: SetRepr = [Value::named_atom(2, "mine")].into_iter().collect();
        let other: SetRepr = [Value::atom(2)].into_iter().collect();
        let u = named.merge_union(&other);
        assert_eq!(format!("{:?}", u.first().unwrap()), "mine#2");
        // Matches the element-by-element fold exactly.
        let mut folded = a.clone();
        for v in b.iter() {
            folded.insert(v.clone());
        }
        assert_eq!(a.merge_union(&b), folded);
        // Identities.
        assert_eq!(a.merge_union(&SetRepr::new()), a);
        assert_eq!(SetRepr::new().merge_union(&b), b);
    }

    #[test]
    fn merge_sorted_difference_matches_per_element_membership() {
        let a = atoms([1, 2, 3, 5, 8, 13]);
        let b = atoms([2, 4, 8, 9]);
        let d = a.merge_sorted_difference(&b);
        let got: Vec<_> = d.iter().cloned().collect();
        assert_eq!(got, [1u64, 3, 5, 13].map(Value::atom).to_vec());
        let expected: SetRepr = a.iter().filter(|v| !b.contains(v)).cloned().collect();
        assert_eq!(d, expected);
        assert_eq!(a.merge_sorted_difference(&SetRepr::new()), a);
        assert!(SetRepr::new().merge_sorted_difference(&b).is_empty());
        assert!(a.merge_sorted_difference(&a).is_empty());
    }

    #[test]
    fn merge_results_fit_inline_when_small() {
        let a = atoms([1, 2]);
        let b = atoms([2, 3]);
        assert!(a.merge_union(&b).is_inline());
        let big = atoms(0..10);
        assert!(!big.merge_union(&a).is_inline());
        assert!(big.merge_sorted_difference(&atoms(0..7)).is_inline());
    }

    #[test]
    fn debug_renders_as_a_set() {
        assert_eq!(format!("{:?}", atoms([2, 1])), "{d1, d2}");
    }
}
