//! A tiny interactive session over the pipeline.
//!
//! Three kinds of input line:
//!
//! * `f(x, y) = body` — adds (or replaces) a definition in the session
//!   program; the whole line set is re-validated through the pipeline, and
//!   rejected definitions leave the session unchanged;
//! * `S := {d1, d2}` — binds an input name to a value literal (the
//!   environment queries evaluate against);
//! * anything else — parsed as an expression and evaluated, with free
//!   variables resolved against the bound inputs.
//!
//! Colon commands: `:help`, `:defs`, `:env`, `:backend vm [threads]|tree`,
//! `:timeout MS|off`, `:load FILE`, `:disasm`, `:classify`,
//! `:complete [PARTIAL]`, `:quit`. Reads stdin to exhaustion, so it is
//! scriptable: `echo 'choose({d3, d5})' | srl repl`.
//!
//! `:complete` is the completion engine a line editor would call on Tab,
//! exposed as a command because the loop reads plain stdin: a partial line
//! starting with `:` completes the command vocabulary, anything else
//! completes its trailing identifier against the session's definition and
//! input-binding names.

use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;
use std::sync::Arc;

use srl_core::pipeline::{Compiled, PipelineConfig, Source};
use srl_core::program::Program;
use srl_core::{Dialect, Env, ExecBackend};
use srl_syntax::frontend::TextFrontend;

const REPL_HELP: &str = "\
definitions   f(x) = insert(x, emptyset)
inputs        S := {d1, d2}
expressions   f(choose(S))
commands      :help :defs :env :backend vm [threads]|tree :timeout MS|off
              :load FILE :disasm :classify :complete [PARTIAL] :quit
";

/// The colon-command vocabulary, for completion (alphabetical; aliases like
/// `:q` resolve in `handle_command` but only canonical names complete).
const COMMANDS: &[&str] = &[
    "backend", "classify", "complete", "defs", "disasm", "env", "help", "load", "quit", "timeout",
];

/// Completion candidates for a partial input line — the pure engine behind
/// `:complete` (and behind Tab, should the loop ever grow a line editor).
///
/// * a line starting with `:` completes the colon-command vocabulary (only
///   the command word itself: arguments like file paths are not completed);
/// * any other line completes its **trailing identifier** against the
///   session's definition names and input-binding names.
///
/// Each candidate is the whole line with the partial word completed, so a
/// caller can substitute it for the input directly. An empty partial word
/// offers every name, which doubles as a vocabulary listing.
fn completions(session: &Session, line: &str) -> Vec<String> {
    if let Some(partial) = line.strip_prefix(':') {
        if partial.contains(char::is_whitespace) {
            return Vec::new();
        }
        return COMMANDS
            .iter()
            .filter(|c| c.starts_with(partial))
            .map(|c| format!(":{c}"))
            .collect();
    }
    // The trailing identifier: the longest ident-shaped suffix (the same
    // alphabet `looks_like_definition` accepts for definition heads).
    let start = line
        .char_indices()
        .rev()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-'))
        .map(|(i, c)| i + c.len_utf8())
        .unwrap_or(0);
    let (head, partial) = line.split_at(start);
    let mut names: Vec<&str> = session
        .program
        .defs
        .iter()
        .map(|d| d.name.as_str())
        .chain(session.env.iter().map(|(name, _)| name))
        .filter(|name| name.starts_with(partial))
        .collect();
    names.sort_unstable();
    names.dedup();
    names.into_iter().map(|n| format!("{head}{n}")).collect()
}

/// Parses a backend word (plus an optional thread count for the VM) the way
/// `:backend` and `--backend` accept it; the error names the offending word
/// and lists every valid option, so a typo round-trips into something
/// actionable instead of a bare usage line.
fn parse_backend(word: Option<&str>, threads: Option<&str>) -> Result<ExecBackend, String> {
    let backend = match word {
        Some("vm") => ExecBackend::vm(),
        Some("tree") | Some("tree-walk") => ExecBackend::TreeWalk,
        Some(other) => {
            return Err(format!(
                "unknown backend `{other}` (valid backends: vm, tree, tree-walk)"
            ))
        }
        None => {
            return Err("missing backend name (valid backends: vm, tree, tree-walk)".to_string())
        }
    };
    match (threads, backend) {
        (None, backend) => Ok(backend),
        (Some(word), ExecBackend::Vm { .. }) => match word.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(ExecBackend::vm_with_threads(n)),
            _ => Err(format!("thread count must be a number ≥ 1, got `{word}`")),
        },
        (Some(_), ExecBackend::TreeWalk) => {
            Err("the tree-walk backend has no worker pool (threads apply to vm only)".to_string())
        }
    }
}

/// Parses a `:timeout` / `--timeout-ms` operand: a positive millisecond
/// count arms a wall-clock deadline, `off` or `0` disarms it.
fn parse_timeout(word: Option<&str>) -> Result<Option<u64>, String> {
    match word {
        Some("off") | Some("0") => Ok(None),
        Some(word) => match word.parse::<u64>() {
            Ok(ms) => Ok(Some(ms)),
            Err(_) => Err(format!(
                "timeout must be a millisecond count or `off`, got `{word}`"
            )),
        },
        None => Err("missing timeout (a millisecond count, or `off`)".to_string()),
    }
}

/// Short display form of a backend for the `:backend` confirmation line.
fn backend_name(backend: ExecBackend) -> String {
    match backend {
        ExecBackend::TreeWalk => "tree-walk".to_string(),
        ExecBackend::Vm { threads } if threads <= 1 => "vm".to_string(),
        ExecBackend::Vm { threads } => format!("vm ({threads} threads)"),
    }
}

/// The interactive session: the same tenant state `srl serve` keeps per
/// tenant — a [`PipelineConfig`], a definition set, and an input-binding
/// environment — driven from stdin instead of a socket.
struct Session {
    config: PipelineConfig,
    program: Program,
    artifact: Option<Compiled>,
    env: Env,
}

impl Session {
    fn new(backend: ExecBackend) -> Self {
        Session {
            config: PipelineConfig::new().with_backend(backend),
            program: Program::new(Dialect::full()),
            artifact: None,
            env: Env::new(),
        }
    }

    /// Arms (or, with `None`, disarms) the per-query wall-clock deadline.
    /// The cached artifact captured the old limits, so it must be rebuilt.
    fn set_timeout(&mut self, ms: Option<u64>) {
        self.config.limits = match ms {
            Some(ms) => self.config.limits.with_deadline_ms(ms),
            None => self.config.limits.with_deadline(None),
        };
        self.artifact = None;
    }

    /// The compiled artifact for the current program, built on demand and
    /// cached until the program changes.
    fn artifact(&mut self) -> &Compiled {
        if self.artifact.is_none() {
            self.artifact = Some(
                self.config
                    .pipeline()
                    .prepare(self.program.clone())
                    .expect("session program was validated when it was built"),
            );
        }
        self.artifact.as_ref().unwrap()
    }

    /// Merges `incoming` definitions (replacing same-named ones) and
    /// re-validates; on error the session keeps its previous program.
    fn merge_defs(&mut self, incoming: Program) -> Result<Vec<String>, String> {
        let mut candidate = self.program.clone();
        let mut added = Vec::new();
        for def in incoming.defs {
            candidate.defs.retain(|d| d.name != def.name);
            added.push(def.name.clone());
            candidate.defs.push(Arc::clone(&def));
        }
        match self.config.pipeline().prepare(candidate) {
            Ok(artifact) => {
                self.program = artifact.program().clone();
                self.artifact = Some(artifact);
                Ok(added)
            }
            Err(e) => Err(format!("error: {e}")),
        }
    }
}

/// `srl repl [--backend vm|tree] [--threads N] [--timeout-ms N]`.
pub fn repl(rest: &[String]) -> ExitCode {
    // Flags are collected first and combined once, order-independently, so
    // `--backend tree --threads 4` is rejected like `srl run` rejects it
    // instead of one flag silently overriding the other.
    let mut backend_word: Option<&str> = None;
    let mut threads_word: Option<&str> = None;
    let mut timeout_word: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => match it.next() {
                Some(word) => backend_word = Some(word.as_str()),
                None => {
                    eprintln!("error: missing backend name (valid backends: vm, tree, tree-walk)");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next() {
                Some(word) => threads_word = Some(word.as_str()),
                None => {
                    eprintln!("error: --threads needs a worker count");
                    return ExitCode::from(2);
                }
            },
            "--timeout-ms" => match it.next() {
                Some(word) => timeout_word = Some(word.as_str()),
                None => {
                    eprintln!("error: --timeout-ms needs a millisecond count");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}` to `srl repl`");
                return ExitCode::from(2);
            }
        }
    }
    let backend = match parse_backend(backend_word.or(Some("vm")), threads_word) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let timeout = match timeout_word {
        Some(word) => match parse_timeout(Some(word)) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!("srl repl — :help for commands, :quit to leave");
    }
    let mut session = Session::new(backend);
    if timeout.is_some() {
        session.set_timeout(timeout);
    }
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("srl> ");
            let _ = std::io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        if !handle_line(&mut session, line.trim()) {
            break;
        }
    }
    ExitCode::SUCCESS
}

/// Processes one line; returns `false` to leave the loop.
fn handle_line(session: &mut Session, line: &str) -> bool {
    if line.is_empty() || line.starts_with("//") {
        return true;
    }
    if let Some(command) = line.strip_prefix(':') {
        return handle_command(session, command);
    }
    // `name := value` binds an input. The name must be referenceable as a
    // variable afterwards — a keyword or atom-shaped word (`d3`) would bind
    // successfully but could never be read back in an expression.
    if let Some((name, literal)) = line.split_once(":=") {
        let name = name.trim();
        let literal = literal.trim();
        if !matches!(
            srl_syntax::parse_expr(name),
            Ok(srl_core::Expr::Var(v)) if v == name
        ) {
            eprintln!(
                "error: `{name}` cannot be used as an input name (it is not a plain variable)"
            );
            return true;
        }
        match srl_syntax::parse_value(literal) {
            Ok(value) => {
                println!("{name} = {value}");
                session.env.insert(name, value);
            }
            Err(e) => eprintln!("{}", e.to_diagnostic("<repl>", literal)),
        }
        return true;
    }
    // A definition if an ident-headed parameter list is followed by `=`.
    if looks_like_definition(line) {
        match srl_syntax::parse_program(line) {
            Ok(incoming) => match session.merge_defs(incoming) {
                Ok(added) => println!("defined {}", added.join(", ")),
                Err(e) => eprintln!("{e}"),
            },
            Err(e) => eprintln!("{}", e.to_diagnostic("<repl>", line)),
        }
        return true;
    }
    // Otherwise: an expression over the bound inputs.
    match srl_syntax::parse_expr(line) {
        Ok(expr) => {
            let env = session.env.clone();
            // An explicit evaluator (not `Compiled::eval`) keeps the
            // columnar-tier engagement diagnostics observable.
            let mut evaluator = session.artifact().evaluator();
            match evaluator.eval(&expr, &env) {
                Ok(value) => {
                    let stats = *evaluator.stats();
                    let tiers = evaluator.tier_engagement_breakdown();
                    println!("{value}");
                    println!(
                        "  [steps {} | reduce iterations {} | inserts {}]",
                        stats.steps, stats.reduce_iterations, stats.inserts
                    );
                    if tiers.total() > 0 {
                        println!(
                            "  [tiers: atoms {} | bits {} | rows {}]",
                            tiers.atoms, tiers.bits, tiers.rows
                        );
                    }
                }
                Err(e) => eprintln!("evaluation error: {e}"),
            }
        }
        Err(e) => eprintln!("{}", e.to_diagnostic("<repl>", line)),
    }
    true
}

fn handle_command(session: &mut Session, command: &str) -> bool {
    let mut words = command.split_whitespace();
    match words.next() {
        Some("q") | Some("quit") | Some("exit") => return false,
        Some("help") => print!("{REPL_HELP}"),
        Some("defs") => {
            if session.program.defs.is_empty() {
                println!("(no definitions)");
            } else {
                for def in &session.program.defs {
                    let params: Vec<&str> = def.params.iter().map(|p| p.name.as_str()).collect();
                    println!("{}({})", def.name, params.join(", "));
                }
            }
        }
        Some("env") => {
            if session.env.is_empty() {
                println!("(no inputs bound)");
            } else {
                for (name, value) in session.env.iter() {
                    println!("{name} = {value}");
                }
            }
        }
        Some("backend") => match parse_backend(words.next(), words.next()) {
            Ok(backend) => {
                session.config.backend = backend;
                session.artifact = None;
                println!("backend: {}", backend_name(backend));
            }
            Err(e) => eprintln!("error: {e} — usage: :backend vm [threads]|tree"),
        },
        Some("timeout") => match parse_timeout(words.next()) {
            Ok(Some(ms)) => {
                session.set_timeout(Some(ms));
                println!("timeout: {ms} ms");
            }
            Ok(None) => {
                session.set_timeout(None);
                println!("timeout: off");
            }
            Err(e) => eprintln!("error: {e} — usage: :timeout MS|off"),
        },
        Some("load") => match words.next() {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => {
                    let source = Source::new(path, text);
                    match session.config.pipeline().check_source(&source) {
                        Ok(checked) => match session.merge_defs(checked.program().clone()) {
                            Ok(added) => println!("loaded {}: {}", path, added.join(", ")),
                            Err(e) => eprintln!("{e}"),
                        },
                        Err(e) => eprintln!("{}", e.render(&source)),
                    }
                }
                Err(e) => eprintln!("cannot read `{path}`: {e}"),
            },
            None => eprintln!("usage: :load FILE"),
        },
        Some("disasm") => {
            print!(
                "{}",
                srl_syntax::disasm_program(session.artifact().compiled())
            );
        }
        Some("complete") => {
            // The raw remainder, not the whitespace-split words: the partial
            // line being completed may itself contain spaces.
            let partial = command
                .strip_prefix("complete")
                .map(str::trim_start)
                .unwrap_or("");
            let candidates = completions(session, partial);
            if candidates.is_empty() {
                println!("(no completions)");
            }
            for candidate in candidates {
                println!("{candidate}");
            }
        }
        Some("classify") => {
            let report = srl_analysis::analyze_compiled(session.artifact().compiled());
            if report.spines.is_empty() {
                println!("(no definitions)");
            }
            for s in &report.spines {
                match &s.spine_param {
                    Some(p) => println!("{}: spine parameter `{p}`", s.def),
                    None => println!("{}: no spine parameter", s.def),
                }
            }
            for f in &report.folds {
                let place = match &f.def {
                    Some(d) => format!("{d} b{}", f.block),
                    None => format!("b{}", f.block),
                };
                println!(
                    "[{place}] {}{} class={} cost={} — {}",
                    if f.is_list { "list-" } else { "" },
                    f.kind,
                    f.class.label(),
                    f.unit_cost,
                    f.reason,
                );
            }
        }
        _ => eprintln!("unknown command `:{command}` (:help lists commands)"),
    }
    true
}

/// `name(p1, …) = …` — an identifier, a parenthesised parameter list, `=`.
/// (`(a = b)` starts with `(`; a call `f(x)` has no `=` after the list.)
fn looks_like_definition(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
    {
        i += 1;
    }
    if i == 0 {
        return false;
    }
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'(' {
        return false;
    }
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    let rest = line[i + 1..].trim_start();
                    return rest.starts_with('=');
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::Value;

    #[test]
    fn definition_lines_are_recognised() {
        assert!(looks_like_definition("f(x) = x"));
        assert!(looks_like_definition("set_union(A, B) =\n  x"));
        assert!(!looks_like_definition("f(x)"));
        assert!(!looks_like_definition("(a = b)"));
        assert!(!looks_like_definition("insert(x, emptyset)"));
        assert!(!looks_like_definition(":defs"));
    }

    #[test]
    fn session_defines_binds_and_evaluates() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(
            &mut session,
            "singleton(x) = insert(x, emptyset)"
        ));
        assert!(handle_line(&mut session, "S := {d1, d2}"));
        assert_eq!(session.program.defs.len(), 1);
        assert_eq!(
            session.env.get("S"),
            Some(&Value::set([Value::atom(1), Value::atom(2)]))
        );
        // Expressions evaluate against the environment.
        let env = session.env.clone();
        let expr = srl_syntax::parse_expr("singleton(choose(S))").unwrap();
        let (value, _) = session.artifact().eval(&expr, &env).unwrap();
        assert_eq!(value, Value::set([Value::atom(1)]));
    }

    #[test]
    fn unreferenceable_input_names_are_rejected() {
        let mut session = Session::new(ExecBackend::default());
        for bad in ["if", "d3", "x.1", "insert", ""] {
            assert!(handle_line(&mut session, &format!("{bad} := {{d1}}")));
        }
        assert!(session.env.is_empty(), "no bad name may bind");
        assert!(handle_line(&mut session, "S := {d1}"));
        assert_eq!(session.env.len(), 1);
    }

    #[test]
    fn bad_definitions_leave_the_session_unchanged() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(&mut session, "f(x) = x"));
        // Recursive definition is rejected by the pipeline's check stage...
        assert!(handle_line(&mut session, "g(x) = g(x)"));
        // ...so the session still has exactly the first definition.
        assert_eq!(session.program.def_names(), vec!["f"]);
    }

    #[test]
    fn redefinition_replaces() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(&mut session, "f(x) = x"));
        assert!(handle_line(&mut session, "f(x) = [x, x]"));
        assert_eq!(session.program.defs.len(), 1);
        assert_eq!(
            session.program.lookup("f").unwrap().body,
            srl_core::dsl::tuple([srl_core::dsl::var("x"), srl_core::dsl::var("x")])
        );
    }

    #[test]
    fn backend_words_parse_with_optional_threads() {
        assert_eq!(parse_backend(Some("vm"), None), Ok(ExecBackend::vm()));
        assert_eq!(parse_backend(Some("tree"), None), Ok(ExecBackend::TreeWalk));
        assert_eq!(
            parse_backend(Some("vm"), Some("4")),
            Ok(ExecBackend::vm_with_threads(4))
        );
        // Unknown names round-trip into an error that names the word and
        // lists the valid options (the :backend bugfix).
        let err = parse_backend(Some("turbo"), None).unwrap_err();
        assert!(err.contains("`turbo`"), "{err}");
        assert!(err.contains("vm, tree, tree-walk"), "{err}");
        let err = parse_backend(None, None).unwrap_err();
        assert!(err.contains("valid backends"), "{err}");
        assert!(parse_backend(Some("vm"), Some("0")).is_err());
        assert!(parse_backend(Some("tree"), Some("4")).is_err());
    }

    #[test]
    fn backend_command_reports_unknown_names() {
        let mut session = Session::new(ExecBackend::default());
        // A bad name must not change the session backend…
        assert!(handle_line(&mut session, ":backend turbo"));
        assert_eq!(session.config.backend, ExecBackend::default());
        // …while valid names (with an optional thread count) do.
        assert!(handle_line(&mut session, ":backend tree"));
        assert_eq!(session.config.backend, ExecBackend::TreeWalk);
        assert!(handle_line(&mut session, ":backend vm 4"));
        assert_eq!(session.config.backend, ExecBackend::vm_with_threads(4));
    }

    #[test]
    fn timeout_words_parse() {
        assert_eq!(parse_timeout(Some("250")), Ok(Some(250)));
        assert_eq!(parse_timeout(Some("off")), Ok(None));
        assert_eq!(parse_timeout(Some("0")), Ok(None));
        let err = parse_timeout(Some("soon")).unwrap_err();
        assert!(err.contains("`soon`"), "{err}");
        assert!(parse_timeout(None).is_err());
    }

    #[test]
    fn timeout_command_arms_and_disarms_the_deadline() {
        let mut session = Session::new(ExecBackend::default());
        assert_eq!(session.config.limits.deadline, None);
        assert!(handle_line(&mut session, ":timeout 250"));
        assert_eq!(
            session.config.limits.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        // A bad operand must not change the armed deadline…
        assert!(handle_line(&mut session, ":timeout soon"));
        assert_eq!(
            session.config.limits.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        // …and `off` disarms it.
        assert!(handle_line(&mut session, ":timeout off"));
        assert_eq!(session.config.limits.deadline, None);
    }

    #[test]
    fn timeout_change_invalidates_the_cached_artifact() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(&mut session, "f(x) = x"));
        assert!(session.artifact.is_some(), "merge_defs caches an artifact");
        assert!(handle_line(&mut session, ":timeout 250"));
        assert!(
            session.artifact.is_none(),
            ":timeout must drop the artifact compiled under the old limits"
        );
        // The rebuilt artifact evaluates under the new deadline.
        assert_eq!(
            session.artifact().limits().deadline,
            Some(std::time::Duration::from_millis(250))
        );
    }

    #[test]
    fn classify_command_reports_the_session_program() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(&mut session, "grow(x, T) = insert(x, T)"));
        assert!(handle_line(
            &mut session,
            "collect(S) = set-reduce(S, lambda(x, e) x, lambda(x, acc) grow(x, acc), emptyset, emptyset)"
        ));
        // The command runs against the cached artifact without error…
        assert!(handle_line(&mut session, ":classify"));
        // …and the report it prints shows the call-threaded spine proof.
        let report = srl_analysis::analyze_compiled(session.artifact().compiled());
        assert_eq!(report.spines.len(), 2);
        assert_eq!(report.spines[0].spine_param.as_deref(), Some("T"));
        let fold = &report.folds[0];
        assert!(fold.order_independent());
        assert!(fold.reason.contains("`grow`"), "{}", fold.reason);
    }

    #[test]
    fn colon_commands_complete_from_the_vocabulary() {
        let session = Session::new(ExecBackend::default());
        assert_eq!(completions(&session, ":d"), vec![":defs", ":disasm"]);
        assert_eq!(completions(&session, ":qu"), vec![":quit"]);
        assert_eq!(completions(&session, ":zz"), Vec::<String>::new());
        // A bare `:` lists the whole vocabulary…
        assert_eq!(completions(&session, ":").len(), COMMANDS.len());
        // …and arguments are not completed (only the command word is).
        assert_eq!(completions(&session, ":load exam"), Vec::<String>::new());
    }

    #[test]
    fn identifiers_complete_against_defs_and_bindings() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(
            &mut session,
            "singleton(x) = insert(x, emptyset)"
        ));
        assert!(handle_line(&mut session, "sift(x, T) = insert(x, T)"));
        assert!(handle_line(&mut session, "Stuff := {d1, d2}"));
        // The trailing identifier completes; the head of the line survives.
        assert_eq!(
            completions(&session, "insert(si"),
            vec!["insert(sift", "insert(singleton"]
        );
        assert_eq!(completions(&session, "choose(St"), vec!["choose(Stuff"]);
        // An empty partial word offers everything, sorted and deduplicated.
        assert_eq!(
            completions(&session, ""),
            vec!["Stuff", "sift", "singleton"]
        );
        assert_eq!(
            completions(&session, "union("),
            vec!["union(Stuff", "union(sift", "union(singleton"]
        );
        // No candidate → empty, and the command prints its placeholder.
        assert_eq!(completions(&session, "zebra"), Vec::<String>::new());
        assert!(handle_line(&mut session, ":complete si"));
        assert!(handle_line(&mut session, ":complete"));
    }

    #[test]
    fn rebinding_an_input_does_not_duplicate_its_completion() {
        let mut session = Session::new(ExecBackend::default());
        assert!(handle_line(&mut session, "S := {d1}"));
        assert!(handle_line(&mut session, "S := {d2}"));
        assert_eq!(completions(&session, "S"), vec!["S"]);
    }

    #[test]
    fn quit_commands_end_the_loop() {
        let mut session = Session::new(ExecBackend::default());
        assert!(!handle_line(&mut session, ":quit"));
        assert!(!handle_line(&mut session, ":q"));
        assert!(handle_line(&mut session, ":help"));
        assert!(handle_line(&mut session, "// comment"));
        assert!(handle_line(&mut session, ""));
    }
}
