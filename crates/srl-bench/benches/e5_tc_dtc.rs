//! E5 — Corollaries 4.2 / 4.4: the SRL TC/DTC combinators vs. native closures
//! and the FO+TC formula evaluator.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_bench::queries;
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::program::{Env, Program};
use workloads::digraph::Digraph;

fn bench(c: &mut Criterion) {
    // Compiled and lowered once; the measured region is evaluation alone.
    let program = Program::new(srl_core::Dialect::full());
    let compiled = Arc::new(program.compile());
    let tc_expr = queries::tc_query();
    let dtc_expr = queries::dtc_query();
    let mut group = c.benchmark_group("e5_tc_dtc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    // `SRL_BENCH_SMOKE=1` trims the size sweep so CI's bench smoke finishes
    // quickly (the n = 14 tree-walk closure alone runs for seconds).
    let sizes: &[usize] = if std::env::var_os("SRL_BENCH_SMOKE").is_some() {
        &[6, 10]
    } else {
        &[6, 10, 14]
    };
    for &n in sizes {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        let tc_lowered = ev.lower(&tc_expr, &env);
        let dtc_lowered = ev.lower(&dtc_expr, &env);
        group.bench_with_input(BenchmarkId::new("srl_tc", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.eval_lowered(&tc_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srl_dtc", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.eval_lowered(&dtc_lowered, &env).unwrap()
            })
        });
        // Backend axis: the unsuffixed variants above run the default
        // backend (the bytecode VM); these pin the reference tree-walk.
        let mut tree =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::TreeWalk);
        group.bench_with_input(BenchmarkId::new("srl_tc_tree", n), &n, |b, _| {
            b.iter(|| {
                tree.reset_stats();
                tree.eval_lowered(&tc_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srl_dtc_tree", n), &n, |b, _| {
            b.iter(|| {
                tree.reset_stats();
                tree.eval_lowered(&dtc_lowered, &env).unwrap()
            })
        });
        // Par axis: the VM sharding the proper-hom folds (the
        // select-over-cartesian inside each pivot's join, and DTC's
        // deterministic-edge filter) across a 4-worker pool. Statistics
        // stay byte-identical; only wall clock moves (and only on hosts
        // with cores to fan out to).
        let mut par =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::vm_with_threads(4));
        group.bench_with_input(BenchmarkId::new("srl_tc_par", n), &n, |b, _| {
            b.iter(|| {
                par.reset_stats();
                par.eval_lowered(&tc_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srl_dtc_par", n), &n, |b, _| {
            b.iter(|| {
                par.reset_stats();
                par.eval_lowered(&dtc_lowered, &env).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_warshall", n), &n, |b, _| {
            b.iter(|| g.transitive_closure())
        });
        let structure = fo_logic::Structure::from_digraph(g.n, &g.edges);
        let formula = fo_logic::formula::library::reachability_tc();
        group.bench_with_input(BenchmarkId::new("fo_tc_query", n), &n, |b, _| {
            b.iter(|| {
                let mut assignment = fo_logic::Assignment::new();
                assignment.insert("s".into(), 0);
                assignment.insert("t".into(), n - 1);
                fo_logic::eval(&structure, &formula, &assignment)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
