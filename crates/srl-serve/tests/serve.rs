//! End-to-end tests of the line-protocol server over real TCP connections:
//! request/response round trips, program-cache accounting (hits, misses,
//! LRU eviction, cross-tenant isolation, reuse-after-error), admission
//! control (deterministic shedding via the `merge_delay` fault point), and
//! the hardened-execution paths driven through a live connection
//! (`worker_panic` → structured `internal` response with the pool still
//! serving; a mid-fold deadline → partial stats in the error body).
//!
//! The fault registry is process-global, so every test serializes on one
//! mutex and disarms on entry and exit (the convention of
//! `tests/tests/fault_injection.rs`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use srl_core::api::Json;
use srl_core::faultpoint;
use srl_core::pipeline::PipelineConfig;
use srl_serve::{ServeConfig, Server, ServerHandle};

/// Serializes the tests in this binary around the process-global registry
/// (and the global panic hook the worker-panic test replaces).
fn serialized() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    guard
}

/// Spawns a server on an OS-assigned port.
fn spawn(config: ServeConfig) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    };
    Server::bind(config)
        .expect("bind 127.0.0.1:0")
        .spawn()
        .expect("spawn session threads")
}

/// One client connection speaking the line protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Sends one request line without waiting for the response.
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .expect("send");
    }

    /// Reads one response line and parses it.
    fn receive(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response line");
        assert!(
            line.ends_with('\n'),
            "framing: exactly one line per response"
        );
        Json::parse(line.trim()).expect("response is valid JSON")
    }

    /// Round trip.
    fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.receive()
    }
}

/// The `error.kind` of a response, if it is an error body.
fn error_kind(response: &Json) -> Option<&str> {
    response.get("error")?.get("kind")?.as_str()
}

/// The `error.exit` of a response, if it is an error body.
fn error_exit(response: &Json) -> Option<u64> {
    response.get("error")?.get("exit")?.as_u64()
}

const SINGLETON: &str = "singleton(x) = insert(x, emptyset)";

/// A run request over `SINGLETON` as one escaped request line.
fn singleton_run(arg: &str) -> String {
    format!(
        "{{\"v\": 1, \"kind\": \"run\", \"program\": \"{SINGLETON}\", \
         \"call\": \"singleton\", \"args\": [\"{arg}\"]}}"
    )
}

/// The 1200-pair projection workload of the fault-injection suite, as a
/// `bind` + bare-`expr` pair: enough elements that the VM pool shards the
/// proper-hom fold.
fn projection_bind_line(n: u64) -> String {
    let pairs: Vec<String> = (0..n).map(|i| format!("[d{i}, d{}]", i + n)).collect();
    format!(
        "{{\"v\": 1, \"kind\": \"bind\", \"name\": \"S\", \"value\": \"{{{}}}\"}}",
        pairs.join(", ")
    )
}

const PROJECTION_EXPR: &str =
    "set-reduce(S, lambda(x, e) x.2, lambda(y, acc) insert(y, acc), emptyset, emptyset)";

fn projection_run_line() -> String {
    format!("{{\"v\": 1, \"kind\": \"run\", \"expr\": \"{PROJECTION_EXPR}\"}}")
}

#[test]
fn run_round_trips_with_cache_accounting_and_id_echo() {
    let _g = serialized();
    let handle = spawn(ServeConfig::default());
    let mut client = Client::connect(&handle);

    let first = client.request(&singleton_run("d3").replace("\"kind\"", "\"id\": 7, \"kind\""));
    assert_eq!(first.get("v").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("result").and_then(Json::as_str), Some("{d3}"));
    assert!(first.get("stats").is_some());
    assert!(first.get("tiers").is_some());
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(7));
    let cache = first
        .get("cache")
        .expect("run responses carry the cache object");
    assert_eq!(cache.get("hit").and_then(Json::as_bool), Some(false));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    // Byte-identical resend: a hit (and a second connection shares it —
    // tenant state is per tenant, not per connection).
    let mut other = Client::connect(&handle);
    let second = other.request(&singleton_run("d5"));
    assert_eq!(second.get("result").and_then(Json::as_str), Some("{d5}"));
    let cache = second.get("cache").expect("cache object");
    assert_eq!(cache.get("hit").and_then(Json::as_bool), Some(true));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));

    handle.shutdown();
}

#[test]
fn bind_persists_across_connections_and_tenants_are_isolated() {
    let _g = serialized();
    let handle = spawn(ServeConfig::default());

    let mut alice = Client::connect(&handle);
    let bound = alice.request(
        "{\"v\": 1, \"kind\": \"bind\", \"tenant\": \"alice\", \"name\": \"S\", \"value\": \"{d1, d2}\"}",
    );
    assert_eq!(bound.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(bound.get("value").and_then(Json::as_str), Some("{d1, d2}"));

    // A later connection sees alice's binding…
    let mut later = Client::connect(&handle);
    let run = later.request(
        "{\"v\": 1, \"kind\": \"run\", \"tenant\": \"alice\", \"expr\": \"insert(d9, S)\"}",
    );
    assert_eq!(
        run.get("result").and_then(Json::as_str),
        Some("{d1, d2, d9}")
    );

    // …while tenant bob does not: his environment has no S.
    let unbound = later
        .request("{\"v\": 1, \"kind\": \"run\", \"tenant\": \"bob\", \"expr\": \"insert(d9, S)\"}");
    assert_eq!(error_exit(&unbound), Some(5), "{unbound:?}");

    // Cross-tenant cache isolation: alice compiles a program; bob's first
    // run of the same text is still a miss in *his* cache.
    let compiled =
        later.request(&singleton_run("d1").replace("\"kind\"", "\"tenant\": \"alice\", \"kind\""));
    assert_eq!(
        compiled
            .get("cache")
            .and_then(|c| c.get("hit"))
            .and_then(Json::as_bool),
        Some(false)
    );
    let bob =
        later.request(&singleton_run("d1").replace("\"kind\"", "\"tenant\": \"bob\", \"kind\""));
    assert_eq!(
        bob.get("cache")
            .and_then(|c| c.get("hit"))
            .and_then(Json::as_bool),
        Some(false),
        "tenant caches must be disjoint"
    );

    handle.shutdown();
}

#[test]
fn cache_evicts_lru_at_capacity_and_stats_reports_it() {
    let _g = serialized();
    let handle = spawn(ServeConfig {
        cache_cap: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&handle);

    let programs = ["a(x) = x", "b(x) = [x, x]", "c(x) = insert(x, emptyset)"];
    for (i, program) in programs.iter().enumerate() {
        let response = client.request(&format!(
            "{{\"v\": 1, \"kind\": \"run\", \"program\": \"{program}\", \
             \"call\": \"{}\", \"args\": [\"d1\"]}}",
            ["a", "b", "c"][i]
        ));
        assert!(response.get("result").is_some(), "{response:?}");
    }
    let stats = client.request("{\"v\": 1, \"kind\": \"stats\"}");
    let cache = stats.get("cache").expect("stats carries the cache block");
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(3));
    assert_eq!(cache.get("evictions").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("queries").and_then(Json::as_u64), Some(3));

    // The evicted program (`a`, the least recently used) recompiles.
    let again = client.request(
        "{\"v\": 1, \"kind\": \"run\", \"program\": \"a(x) = x\", \"call\": \"a\", \"args\": [\"d1\"]}",
    );
    assert_eq!(
        again
            .get("cache")
            .and_then(|c| c.get("hit"))
            .and_then(Json::as_bool),
        Some(false)
    );

    handle.shutdown();
}

#[test]
fn reuse_after_error_leaves_the_pooled_evaluator_byte_identical_to_fresh() {
    let _g = serialized();
    let handle = spawn(ServeConfig::default());

    // One program with a failing and a healthy entry point, so both runs
    // exercise the same cached evaluator.
    const PROGRAM: &str =
        "boom(S) = choose(S)\\ncollect(S) = set-reduce(S, lambda(x, e) x, lambda(y, acc) insert(y, acc), emptyset, emptyset)";
    let run = |client: &mut Client, tenant: &str, call: &str, arg: &str| -> Json {
        client.request(&format!(
            "{{\"v\": 1, \"kind\": \"run\", \"tenant\": \"{tenant}\", \"program\": \"{PROGRAM}\", \
                 \"call\": \"{call}\", \"args\": [\"{arg}\"]}}"
        ))
    };

    let mut client = Client::connect(&handle);
    // A runtime error on the pooled evaluator (choose on the empty set)…
    let failed = run(&mut client, "pooled", "boom", "{}");
    assert_eq!(error_exit(&failed), Some(5), "{failed:?}");

    // …then the same cached evaluator answers the next query with the same
    // bytes a fresh tenant's evaluator produces (result, stats and tiers;
    // the cache counters legitimately differ).
    let reused = run(&mut client, "pooled", "collect", "{d1, d2, d3}");
    let fresh = run(&mut client, "fresh", "collect", "{d1, d2, d3}");
    for field in ["result", "stats", "tiers"] {
        assert_eq!(
            reused.get(field),
            fresh.get(field),
            "`{field}` drifted after the error"
        );
    }

    handle.shutdown();
}

#[test]
fn shed_past_max_inflight_with_bind_and_stats_still_served() {
    let _g = serialized();
    // One admission slot, several session threads: while tenant A evaluates
    // (held in the shard merge by the fault point for a full second), tenant
    // B's run is deterministically shed but its bind and stats still
    // answer. The tenants differ because a tenant is a shard — same-tenant
    // requests serialize on its mutex by design; the admission gate bounds
    // *cross-tenant* concurrency.
    let handle = spawn(ServeConfig {
        max_inflight: 1,
        session_threads: 3,
        default_config: PipelineConfig::new().threads(4),
        ..ServeConfig::default()
    });
    let tenanted = |line: &str, tenant: &str| {
        line.replacen(
            "\"v\": 1",
            &format!("\"v\": 1, \"tenant\": \"{tenant}\""),
            1,
        )
    };
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);
    let bound = a.request(&tenanted(&projection_bind_line(1200), "a"));
    assert_eq!(bound.get("ok").and_then(Json::as_bool), Some(true));
    let bound = b.request(&tenanted(&projection_bind_line(1200), "b"));
    assert_eq!(bound.get("ok").and_then(Json::as_bool), Some(true));

    faultpoint::arm(faultpoint::MERGE_DELAY, 1000);
    let started = Instant::now();
    a.send(&tenanted(&projection_run_line(), "a"));
    // Give A's request time to be admitted before B knocks.
    std::thread::sleep(Duration::from_millis(300));

    let shed = b.request(&tenanted(&projection_run_line(), "b"));
    assert_eq!(error_kind(&shed), Some("overloaded"), "{shed:?}");
    assert_eq!(error_exit(&shed), Some(9));
    assert!(
        started.elapsed() < Duration::from_millis(950),
        "shedding must not wait for the in-flight query"
    );

    // Constant-time requests bypass admission control.
    let bound = b.request(&tenanted(
        "{\"v\": 1, \"kind\": \"bind\", \"name\": \"T\", \"value\": \"{d1}\"}",
        "b",
    ));
    assert_eq!(bound.get("ok").and_then(Json::as_bool), Some(true));
    let stats = b.request(&tenanted("{\"v\": 1, \"kind\": \"stats\"}", "b"));
    assert_eq!(stats.get("shed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("inflight").and_then(Json::as_u64), Some(1));

    // A's held query completes normally…
    let slow = a.receive();
    faultpoint::disarm_all();
    assert!(slow.get("result").is_some(), "{slow:?}");
    // …and with the slot free, B's retry is admitted.
    let retry = b.request(&tenanted(&projection_run_line(), "b"));
    assert!(retry.get("result").is_some(), "{retry:?}");

    handle.shutdown();
}

#[test]
fn worker_panic_returns_internal_and_the_pool_keeps_serving() {
    let _g = serialized();
    let handle = spawn(ServeConfig {
        default_config: PipelineConfig::new().threads(4),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&handle);
    client.request(&projection_bind_line(1200));

    // Shard 1 of the sharded fold panics on entry; the panic output is
    // expected noise, so silence the hook for the faulted request only.
    faultpoint::arm(faultpoint::WORKER_PANIC, 1);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let failed = client.request(&projection_run_line());
    std::panic::set_hook(hook);
    faultpoint::disarm_all();

    assert_eq!(error_kind(&failed), Some("internal"), "{failed:?}");
    assert_eq!(error_exit(&failed), Some(8));

    // The same connection — same tenant, same pooled evaluator, same worker
    // pool — answers the retry.
    let retry = client.request(&projection_run_line());
    assert!(retry.get("result").is_some(), "{retry:?}");
    let stats = retry.get("stats").expect("stats");
    assert_eq!(
        stats.get("reduce_iterations").and_then(Json::as_u64),
        Some(1200)
    );

    handle.shutdown();
}

#[test]
fn mid_fold_deadline_reports_partial_stats_in_the_error_body() {
    let _g = serialized();
    // The deadline must be armed for the fault to have a budget to report;
    // a single-threaded VM keeps the faulted iteration count exact.
    let handle = spawn(ServeConfig {
        default_config: PipelineConfig::new().deadline_ms(3_600_000),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&handle);
    client.request(&projection_bind_line(1200));

    faultpoint::arm(faultpoint::DEADLINE_MID_FOLD, 100);
    let failed = client.request(&projection_run_line());
    faultpoint::disarm_all();

    assert_eq!(error_kind(&failed), Some("deadline_exceeded"), "{failed:?}");
    assert_eq!(error_exit(&failed), Some(7));
    let partial = failed
        .get("stats")
        .expect("a deadline error carries the partial stats of the interrupted run");
    assert_eq!(
        partial.get("reduce_iterations").and_then(Json::as_u64),
        Some(100),
        "the fold stopped at exactly the faulted iteration"
    );

    // The evaluator is reusable after the simulated deadline.
    let retry = client.request(&projection_run_line());
    assert!(retry.get("result").is_some(), "{retry:?}");

    handle.shutdown();
}

#[test]
fn check_analyze_and_protocol_errors_round_trip() {
    let _g = serialized();
    let handle = spawn(ServeConfig::default());
    let mut client = Client::connect(&handle);

    let checked = client.request(&format!(
        "{{\"v\": 1, \"kind\": \"check\", \"program\": \"{SINGLETON}\"}}"
    ));
    assert_eq!(checked.get("ok").and_then(Json::as_bool), Some(true));
    assert!(checked.get("fragment").is_some());

    let analyzed = client.request(&format!(
        "{{\"v\": 1, \"kind\": \"analyze\", \"id\": 3, \"program\": \"{SINGLETON}\"}}"
    ));
    assert!(analyzed.get("folds").is_some());
    assert_eq!(analyzed.get("id").and_then(Json::as_u64), Some(3));
    assert!(
        analyzed.get("cache").is_some(),
        "analyze compiles through the cache"
    );

    // Frontend failures carry the parse/check taxonomy and exit codes.
    let bad_parse = client.request("{\"v\": 1, \"kind\": \"check\", \"program\": \"f(x = \"}");
    assert_eq!(error_kind(&bad_parse), Some("parse"));
    assert_eq!(error_exit(&bad_parse), Some(3));
    let bad_check = client.request("{\"v\": 1, \"kind\": \"check\", \"program\": \"f(x) = f(x)\"}");
    assert_eq!(error_kind(&bad_check), Some("check"));
    assert_eq!(error_exit(&bad_check), Some(4));

    // Protocol errors answer (kind proto, wire code 2) and keep the
    // connection open.
    for bad in [
        "this is not json",
        "{\"kind\": \"run\"}",
        "{\"v\": 2, \"kind\": \"run\"}",
        "{\"v\": 1, \"kind\": \"destroy\"}",
        "{\"v\": 1, \"kind\": \"run\", \"porgram\": \"x\"}",
        "{\"v\": 1, \"kind\": \"run\"}",
        "{\"v\": 1, \"kind\": \"run\", \"expr\": \"d1\", \"call\": \"f\"}",
        "{\"v\": 1, \"kind\": \"bind\", \"name\": \"S\"}",
        "{\"v\": 1, \"kind\": \"bind\", \"name\": \"d9\", \"value\": \"{d1}\"}",
    ] {
        let response = client.request(bad);
        assert_eq!(error_kind(&response), Some("proto"), "{bad}");
        assert_eq!(error_exit(&response), Some(2), "{bad}");
    }
    let alive = client.request(&singleton_run("d1"));
    assert!(alive.get("result").is_some(), "connection survived");

    handle.shutdown();
}

#[test]
fn tenant_config_document_applies_per_tenant_limits() {
    let _g = serialized();
    let config = ServeConfig::default()
        .with_tenant_document(
            "{\"default\": {\"limits\": \"default\"}, \
              \"tenants\": {\"tiny\": {\"limits\": \"small\", \"max_steps\": 5}}}",
        )
        .expect("valid tenant document");
    let handle = spawn(config);
    let mut client = Client::connect(&handle);

    // The pre-configured tenant runs under its tiny step budget…
    let limited = client.request(
        "{\"v\": 1, \"kind\": \"run\", \"tenant\": \"tiny\", \"program\": \
         \"collect(S) = set-reduce(S, lambda(x, e) x, lambda(y, acc) insert(y, acc), emptyset, emptyset)\", \
         \"call\": \"collect\", \"args\": [\"{d1, d2, d3, d4, d5, d6, d7, d8}\"]}",
    );
    assert_eq!(error_exit(&limited), Some(6), "{limited:?}");

    // …while an unnamed tenant gets the default template.
    let free = client.request(&singleton_run("d1"));
    assert!(free.get("result").is_some());

    // Bad documents are rejected with the offending field named.
    for bad in [
        "{\"wat\": 1}",
        "{\"tenants\": []}",
        "{\"tenants\": {\"x\": {\"limits\": \"huge\"}}}",
        "not json",
    ] {
        assert!(
            ServeConfig::default().with_tenant_document(bad).is_err(),
            "{bad}"
        );
    }

    handle.shutdown();
}
