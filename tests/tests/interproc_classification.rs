//! Golden interprocedural-classification tests: the per-reduce fold class
//! for every experiment workload (E1–E9) and the powerset, pinned so a
//! codegen or summary change that reclassifies a fold — and therefore
//! changes execution strategy — fails loudly here instead of silently
//! altering what `run --threads N` shards.
//!
//! The pinned class is the *fold-level* verdict (may this one reduce be
//! sharded?), which is deliberately more conservative than whole-query
//! order-independence: `purple_first`'s inner membership fold is a proper
//! hom even though the query around it (via `choose`) is order-dependent,
//! and `even`'s parity fold reads its accumulator (ordered) even though
//! the whole query is order-independent by symmetry.

use srl_analysis::interproc::{analyze_compiled, analyze_expression, FoldRow};
use srl_core::program::Program;
use srl_core::Expr;

/// Compact golden form of a fold row: `def kind class` (def `-` for
/// expression chunks, `list-` prefix for list folds).
fn brief(rows: &[FoldRow]) -> Vec<String> {
    rows.iter()
        .map(|f| {
            format!(
                "{} {}{} {}",
                f.def.as_deref().unwrap_or("-"),
                if f.is_list { "list-" } else { "" },
                f.kind,
                f.class.label(),
            )
        })
        .collect()
}

fn program_rows(program: &Program) -> Vec<FoldRow> {
    let compiled = program.compile();
    let report = analyze_compiled(&compiled);
    for f in &report.folds {
        assert!(
            !f.reason.is_empty(),
            "every verdict carries a reason: {f:?}"
        );
    }
    report.folds
}

fn expr_brief(program: &Program, expr: &Expr, scope: &[&str]) -> Vec<String> {
    let compiled = program.compile();
    let lowered = compiled.lower_expr(expr, scope);
    let rows = analyze_expression(&compiled, &lowered);
    for f in &rows {
        assert!(
            !f.reason.is_empty(),
            "every verdict carries a reason: {f:?}"
        );
    }
    brief(&rows)
}

#[test]
fn e2_powerset_classification_pinned() {
    // The tentpole case: sift's fold is Generic by shape but proved a
    // proper hom interprocedurally (accumulator threaded through finsert's
    // spine parameter); powerset's outer fold stays ordered because sift
    // itself inspects the set it receives the accumulator as.
    let rows = program_rows(&srl_stdlib::blowup::powerset_program());
    assert_eq!(
        brief(&rows),
        vec!["sift generic proper-hom", "powerset generic ordered"]
    );
    assert!(rows[0].reason.contains("`finsert`"), "{}", rows[0].reason);
    assert!(
        rows[0].reason.contains("interprocedural"),
        "{}",
        rows[0].reason
    );
    assert!(rows[1].reason.contains("`sift`"), "{}", rows[1].reason);
}

#[test]
fn e1_apath_classification_pinned() {
    let rows = program_rows(&srl_stdlib::agap::apath_program());
    assert_eq!(
        brief(&rows),
        vec![
            "max_node generic ordered",
            "f_holds member proper-hom",
            "f_holds member proper-hom",
            "f_holds bool-acc proper-hom",
            "f_holds member proper-hom",
            "f_holds bool-acc proper-hom",
            "f_round member proper-hom",
            "f_round generic ordered",
            "f_round generic ordered",
            "apath generic ordered",
            "agap member proper-hom",
        ]
    );
}

#[test]
fn e3_arith_classification_pinned() {
    // BASRL arithmetic: the accumulators carry machine state forward, so
    // beyond the quantifier folds everything is (correctly) ordered.
    let rows = program_rows(&srl_stdlib::arith::arithmetic_program());
    assert_eq!(
        brief(&rows),
        vec![
            "is_min bool-acc proper-hom",
            "is_max bool-acc proper-hom",
            "inc_state generic ordered",
            "dec generic ordered",
            "add generic ordered",
            "mult generic ordered",
            "exp generic ordered",
            "shift generic ordered",
            "rem generic ordered",
        ]
    );
}

#[test]
fn e4_perm_classification_pinned() {
    let rows = program_rows(&srl_stdlib::perm::perm_program());
    assert_eq!(
        brief(&rows),
        vec![
            "is_min bool-acc proper-hom",
            "is_max bool-acc proper-hom",
            "inc_state generic ordered",
            "dec generic ordered",
            "add generic ordered",
            "mult generic ordered",
            "exp generic ordered",
            "shift generic ordered",
            "rem generic ordered",
            "apply_perm generic ordered",
            "ip generic ordered",
        ]
    );
}

#[test]
fn e5_closure_queries_classification_pinned() {
    let p = Program::new(srl_core::Dialect::full());
    assert_eq!(
        expr_brief(&p, &srl_bench::queries::tc_query(), &["D", "E"]),
        vec![
            "- insert-app proper-hom",
            "- union proper-hom",
            "- generic ordered",
            "- filter proper-hom",
            "- insert-app proper-hom",
            "- union proper-hom",
            "- insert-app proper-hom",
            "- union proper-hom",
            "- generic ordered",
        ]
    );
    assert_eq!(
        expr_brief(&p, &srl_bench::queries::dtc_query(), &["D", "E"]),
        vec![
            "- bool-acc proper-hom",
            "- insert-app proper-hom",
            "- union proper-hom",
            "- generic ordered",
            "- filter proper-hom",
            "- insert-app proper-hom",
            "- union proper-hom",
            "- filter proper-hom",
            "- insert-app proper-hom",
            "- union proper-hom",
            "- generic ordered",
        ]
    );
}

#[test]
fn e6_blowup_and_primrec_classification_pinned() {
    // List folds are ordered by semantics, and the reason says so.
    let rows = program_rows(&srl_stdlib::blowup::lrl_doubling_program());
    assert_eq!(
        brief(&rows),
        vec![
            "append list-generic ordered",
            "double_per_element list-generic ordered",
        ]
    );
    assert!(
        rows[0].reason.contains("list semantics"),
        "{}",
        rows[0].reason
    );

    let add = srl_stdlib::primrec_compile::compile(&machines::primrec::library::add()).unwrap();
    assert_eq!(
        brief(&program_rows(&add.program)),
        vec!["pr_primrec_4 generic ordered"]
    );
}

#[test]
fn e7_tm_simulation_classification_pinned() {
    // The TM simulator layers the arithmetic library under tape handling:
    // the tape write/init folds fuse to local monotone spines (proper),
    // read_cell is the order-sensitive keep-last scan.
    let rows = program_rows(&srl_stdlib::tm_sim::compile(
        &machines::tm::library::even_parity(),
    ));
    assert_eq!(
        brief(&rows),
        vec![
            "is_min bool-acc proper-hom",
            "is_max bool-acc proper-hom",
            "inc_state generic ordered",
            "dec generic ordered",
            "add generic ordered",
            "mult generic ordered",
            "exp generic ordered",
            "shift generic ordered",
            "rem generic ordered",
            "read_cell scan ordered",
            "write_cell monotone proper-hom",
            "init_work monotone proper-hom",
            "simulate generic ordered",
            "simulate_square generic ordered",
            "simulate_square generic ordered",
        ]
    );
}

#[test]
fn e8_hom_queries_classification_pinned() {
    use srl_core::dsl::var;
    let p = Program::srl();
    assert_eq!(
        expr_brief(&p, &srl_stdlib::hom::even(var("S")), &["S"]),
        vec!["- generic ordered"]
    );
    assert_eq!(
        expr_brief(
            &p,
            &srl_stdlib::hom::purple_first(var("S"), var("P")),
            &["S", "P"]
        ),
        vec!["- member proper-hom"]
    );
}

#[test]
fn e9_company_queries_classification_pinned() {
    let p = Program::new(srl_core::Dialect::full());
    assert_eq!(
        expr_brief(&p, &srl_bench::queries::company_join(), &["EMP", "DEPT"]),
        vec![
            "- insert-app proper-hom",
            "- union proper-hom",
            "- generic ordered",
            "- filter proper-hom",
            "- insert-app proper-hom",
        ]
    );
    assert_eq!(
        expr_brief(
            &p,
            &srl_bench::queries::employees_in_department(3),
            &["EMP", "DEPT"]
        ),
        vec!["- filter proper-hom", "- insert-app proper-hom"]
    );
}
