//! Prints the experiment tables (E1–E9) recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p srl-bench --release --bin report [--json] [--backend vm|tree]`
//!
//! Runs on the default backend (the bytecode VM) unless `--backend` pins
//! one. The semantic rows are backend-invariant: both engines produce
//! byte-identical `EvalStats`, so `--backend tree` must print exactly the
//! same report (CI diffs both against `BENCH_1.json`).

use srl_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        match args.get(i + 1).map(String::as_str) {
            Some("vm") => set_backend(srl_core::ExecBackend::Vm),
            Some("tree") | Some("tree-walk") => set_backend(srl_core::ExecBackend::TreeWalk),
            other => {
                eprintln!("unknown --backend {other:?} (expected vm|tree)");
                std::process::exit(2);
            }
        }
    }
    let mut all = Vec::new();
    all.extend(experiment_e1(&[4, 6, 8]));
    all.extend(experiment_e2(&[2, 4, 8, 12]));
    all.extend(experiment_e3(&[8, 16, 32]));
    all.extend(experiment_e4(&[4, 6, 8]));
    all.extend(experiment_e5(&[6, 10, 14]));
    all.extend(experiment_e6(&[2, 4, 8]));
    all.extend(experiment_e7(&[4, 8, 16, 32]));
    all.extend(experiment_e8(&[4, 5, 6]));
    all.extend(experiment_e9(&[8, 16, 32]));
    if json {
        println!("{}", to_json(&all));
    } else {
        println!("{}", to_markdown(&all));
        let disagreements = all.iter().filter(|r| !r.agrees_with_baseline).count();
        println!("\n{} rows, {} disagreement(s) with the native baselines.", all.len(), disagreements);
    }
}
