//! End-to-end smoke tests for the `srl` binary: the exit-code contract, the
//! `--json` error object, `--timeout-ms`, and the `SRL_FAULTS` environment
//! hook all exercised through real process spawns.
//!
//! The exit codes asserted here are the documented contract from `srl`'s
//! usage text (0 ok, 2 usage/IO, 3 parse, 4 check, 5 runtime, 6 limit,
//! 7 timeout/cancellation, 8 internal) — scripts and the serving layer
//! branch on them, so a failure here means a breaking interface change.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use srl_core::api;

const SRL: &str = env!("CARGO_BIN_EXE_srl");

/// `examples/srl/<name>` resolved relative to the workspace root.
fn example(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/srl")
        .join(name)
}

/// Writes `text` to a fresh temp file and returns its path.
fn temp_program(stem: &str, text: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("srl_cli_smoke_{stem}_{}.srl", std::process::id()));
    std::fs::write(&path, text).expect("temp dir is writable");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(SRL).args(args).output().expect("srl spawns")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("srl exits (not signalled)")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A `powerset(S)` call on `n` atoms: exponential work that a small budget
/// or a short deadline must interrupt.
fn powerset_main(n: usize) -> String {
    let atoms: Vec<String> = (1..=n).map(|i| format!("d{i}")).collect();
    let program = std::fs::read_to_string(example("powerset.srl")).expect("example exists");
    format!(
        "{program}\nmain() =\n  powerset({{{}}})\n",
        atoms.join(", ")
    )
}

#[test]
fn happy_path_is_exit_zero_and_thread_count_invisible() {
    let file = example("membership.srl");
    let file = file.to_str().unwrap();
    let one = run(&["run", file, "--json", "--threads", "1"]);
    assert_eq!(exit_code(&one), 0, "{one:?}");
    assert!(stdout(&one).contains("\"result\""), "{one:?}");
    // The acceptance bar for the worker pool: --json output byte-identical
    // across thread counts.
    let four = run(&["run", file, "--json", "--threads", "4"]);
    assert_eq!(exit_code(&four), 0);
    assert_eq!(
        stdout(&one),
        stdout(&four),
        "stats must not depend on --threads"
    );
}

#[test]
fn usage_errors_are_exit_two() {
    assert_eq!(exit_code(&run(&["run"])), 2, "missing file");
    let file = example("membership.srl");
    assert_eq!(
        exit_code(&run(&["run", file.to_str().unwrap(), "--wat"])),
        2,
        "unknown flag"
    );
    assert_eq!(
        exit_code(&run(&["run", "/no/such/file.srl"])),
        2,
        "unreadable file"
    );
}

#[test]
fn parse_errors_are_exit_three() {
    let file = temp_program("parse", "main() = insert(\n");
    let out = run(&["run", file.to_str().unwrap(), "--json"]);
    assert_eq!(exit_code(&out), 3, "{out:?}");
    assert!(stdout(&out).contains("\"kind\": \"parse\""), "{out:?}");
    // `check` reports the same class of failure with the same code.
    assert_eq!(exit_code(&run(&["check", file.to_str().unwrap()])), 3);
    let _ = std::fs::remove_file(file);
}

#[test]
fn check_errors_are_exit_four() {
    // Recursion is rejected by the pipeline's check stage, not the parser.
    let file = temp_program("check", "g(x) = g(x)\n");
    let out = run(&["run", file.to_str().unwrap(), "--json"]);
    assert_eq!(exit_code(&out), 4, "{out:?}");
    assert!(stdout(&out).contains("\"kind\": \"check\""), "{out:?}");
    assert_eq!(exit_code(&run(&["check", file.to_str().unwrap()])), 4);
    let _ = std::fs::remove_file(file);
}

#[test]
fn limit_errors_are_exit_six_with_partial_stats() {
    let file = temp_program("limit", &powerset_main(16));
    let out = run(&["run", file.to_str().unwrap(), "--limits", "small", "--json"]);
    assert_eq!(exit_code(&out), 6, "{out:?}");
    let json = stdout(&out);
    assert!(json.contains("\"error\""), "{json}");
    assert!(json.contains("limit_exceeded"), "{json}");
    assert!(json.contains("\"exit\": 6"), "{json}");
    // The partial stats of the interrupted run ride along.
    assert!(json.contains("\"stats\""), "{json}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn timeouts_are_exit_seven_and_prompt() {
    // Under the benchmark budget this powerset would run for minutes; the
    // 50 ms deadline must kill it within ~2× of itself plus process
    // overhead (generous bound: two seconds).
    let file = temp_program("timeout", &powerset_main(26));
    let started = Instant::now();
    let out = run(&[
        "run",
        file.to_str().unwrap(),
        "--limits",
        "benchmark",
        "--timeout-ms",
        "50",
        "--json",
    ]);
    let elapsed = started.elapsed();
    assert_eq!(exit_code(&out), 7, "{out:?}");
    assert!(
        elapsed < Duration::from_secs(2),
        "took {elapsed:?} to honour a 50 ms deadline"
    );
    let json = stdout(&out);
    assert!(json.contains("\"kind\": \"deadline_exceeded\""), "{json}");
    assert!(json.contains("\"exit\": 7"), "{json}");
    assert!(json.contains("\"stats\""), "partial stats expected: {json}");
    let _ = std::fs::remove_file(file);
}

/// A projection fold over `n` pairs — a proper-hom `insert-app` fold whose
/// work estimate clears `PAR_WORK_THRESHOLD`, so `--threads 4` shards it.
fn projection_main(n: usize) -> String {
    let pairs: Vec<String> = (1..=n).map(|i| format!("[d{i}, d{}]", i + n)).collect();
    format!(
        "proj(S) =\n  set-reduce(S, lambda(x, t) x.2, lambda(y, acc) insert(y, acc), emptyset, emptyset)\n\n\
         main() =\n  proj({{{}}})\n",
        pairs.join(", ")
    )
}

#[test]
fn injected_worker_panics_are_exit_eight() {
    // `SRL_FAULTS=worker_panic@1` panics shard 1 of the first parallel fold;
    // the worker pool must convert that into a structured internal error —
    // a clean exit 8, not an abort or a hung process.
    let file = temp_program("fault", &projection_main(1200));
    let file_str = file.to_str().unwrap();
    let out = Command::new(SRL)
        .args(["run", file_str, "--threads", "4", "--json"])
        .env("SRL_FAULTS", "worker_panic@1")
        .output()
        .expect("srl spawns");
    assert_eq!(exit_code(&out), 8, "{out:?}");
    let json = stdout(&out);
    assert!(json.contains("\"kind\": \"internal\""), "{json}");
    assert!(json.contains("worker panicked"), "{json}");
    assert!(json.contains("\"exit\": 8"), "{json}");
    // The identical invocation with no fault armed succeeds: the registry
    // is opt-in per process, and the workload itself is healthy.
    let clean = run(&["run", file_str, "--threads", "4", "--json"]);
    assert_eq!(exit_code(&clean), 0, "{clean:?}");
    let _ = std::fs::remove_file(file);
}

// ---------------------------------------------------------------------------
// `srl serve`
// ---------------------------------------------------------------------------

/// A running `srl serve` child process, killed on drop. The bound port is
/// read from the `listening on HOST:PORT` line the server prints on stdout.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    fn spawn(extra_args: &[&str], env: &[(&str, &str)]) -> ServeProc {
        let mut cmd = Command::new(SRL);
        cmd.args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped());
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("srl serve spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the server announces its port");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
            .to_string();
        ServeProc { child, addr }
    }

    fn connect(&self) -> ServeClient {
        let stream = TcpStream::connect(&self.addr).expect("connect to srl serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        ServeClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .expect("send request");
    }

    fn receive(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response line");
        line.trim().to_string()
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.receive()
    }
}

#[test]
fn serve_round_trips_with_cli_parity() {
    let server = ServeProc::spawn(&[], &[]);
    let mut client = server.connect();

    // Success parity: serving a program returns the byte-compacted form of
    // exactly what `srl run --json` prints locally, plus the trailing
    // `cache` object — the CLI body is a strict prefix of the served one.
    let file = example("membership.srl");
    let text = std::fs::read_to_string(&file).expect("example exists");
    let local = run(&["run", file.to_str().unwrap(), "--json"]);
    assert_eq!(exit_code(&local), 0, "{local:?}");
    let local_body = api::compact(stdout(&local).trim());
    let served = client.request(&format!(
        "{{\"v\": 1, \"kind\": \"run\", \"program\": \"{}\"}}",
        api::escape(&text)
    ));
    let prefix = local_body
        .strip_suffix('}')
        .expect("a JSON body ends with a brace");
    assert!(
        served.starts_with(prefix),
        "served response diverged from the CLI body:\n cli: {local_body}\nsrv: {served}"
    );
    assert!(served.contains("\"cache\""), "{served}");

    // Error parity: same text, same taxonomy, same code — the served error
    // body is byte-identical to the compacted CLI one (exit 4 = check).
    let bad = temp_program("serve_check", "g(x) = g(x)\n");
    let local = run(&["run", bad.to_str().unwrap(), "--json"]);
    assert_eq!(exit_code(&local), 4);
    let served = client.request(
        "{\"v\": 1, \"kind\": \"run\", \"program\": \"g(x) = g(x)\", \"call\": \"g\", \"args\": [\"d1\"]}",
    );
    assert_eq!(served, api::compact(stdout(&local).trim()));
    let _ = std::fs::remove_file(bad);

    // Bindings persist across queries on the connection's tenant.
    let bound =
        client.request("{\"v\": 1, \"kind\": \"bind\", \"name\": \"S\", \"value\": \"{d1, d2}\"}");
    assert!(bound.contains("\"ok\": true"), "{bound}");
    let over = client.request("{\"v\": 1, \"kind\": \"run\", \"expr\": \"insert(d3, S)\"}");
    assert!(over.contains("\"result\": \"{d1, d2, d3}\""), "{over}");
}

#[test]
fn serve_sheds_past_max_inflight() {
    // One admission slot; the armed `merge_delay` holds tenant a's sharded
    // query in the merge for a full second, so tenant b's concurrent query
    // is deterministically shed with the `overloaded` taxonomy (exit 9).
    let config = temp_program("serve_tenants", "{\"default\": {\"threads\": 4}}");
    let server = ServeProc::spawn(
        &[
            "--max-inflight",
            "1",
            "--session-threads",
            "2",
            "--tenant-config",
            config.to_str().unwrap(),
        ],
        &[("SRL_FAULTS", "merge_delay@1000")],
    );
    let mut a = server.connect();
    let mut b = server.connect();
    let pairs: Vec<String> = (0..1200)
        .map(|i| format!("[d{i}, d{}]", i + 1200))
        .collect();
    for (client, tenant) in [(&mut a, "a"), (&mut b, "b")] {
        let bound = client.request(&format!(
            "{{\"v\": 1, \"kind\": \"bind\", \"tenant\": \"{tenant}\", \"name\": \"S\", \"value\": \"{{{}}}\"}}",
            pairs.join(", ")
        ));
        assert!(bound.contains("\"ok\": true"), "{bound}");
    }
    let query = |tenant: &str| {
        format!(
            "{{\"v\": 1, \"kind\": \"run\", \"tenant\": \"{tenant}\", \"expr\": \
             \"set-reduce(S, lambda(x, e) x.2, lambda(y, acc) insert(y, acc), emptyset, emptyset)\"}}"
        )
    };
    a.send(&query("a"));
    std::thread::sleep(Duration::from_millis(300));
    let shed = b.request(&query("b"));
    assert!(shed.contains("\"kind\": \"overloaded\""), "{shed}");
    assert!(shed.contains("\"exit\": 9"), "{shed}");
    // The held query is unaffected by the shed one.
    let slow = a.receive();
    assert!(slow.contains("\"result\""), "{slow}");
    let _ = std::fs::remove_file(config);
}
