//! # srl-syntax — a concrete syntax for SRL
//!
//! The textual front end of the reproduction: a pretty-printer that renders
//! [`srl_core::Expr`] / [`srl_core::Program`] values in the paper's notation,
//! and a span-carrying lexer + recursive-descent parser ([`parser`]) that
//! reads the same notation back, so `parse_program(print_program(p))` is
//! structurally equal to `p` for every program in the repository.
//!
//! Also here: a printer for the *compiled* form ([`srl_core::CompiledProgram`])
//! that resolves interned symbols back to names and shows frame slots (`@0`)
//! and definition indices (`f#3`) — what the tree-walk evaluator runs — a
//! [`disasm`] printer for the bytecode chunks the VM backend runs, and the
//! [`frontend`] glue that feeds parsed text into the staged
//! [`srl_core::pipeline::Pipeline`] (the path the `srl` CLI drives).
//!
//! ## Grammar
//!
//! The surface syntax, in EBNF (terminals quoted; `//` starts a line
//! comment, whitespace is free-form):
//!
//! ```text
//! program   ::= def*
//! def       ::= name "(" [ name { "," name } ] ")" "=" expr
//!
//! expr      ::= primary { "." natural }          (* 1-based selectors *)
//! primary   ::= "true" | "false"
//!             | "emptyset" | "emptylist"
//!             | natural                          (* ℕ constant *)
//!             | atom                             (* d7 or alice#5 *)
//!             | name [ "(" [ expr { "," expr } ] ")" ]   (* var / call *)
//!             | "if" expr "then" expr "else" expr
//!             | "let" name "=" expr "in" expr
//!             | "[" [ expr { "," expr } ] "]"    (* tuple *)
//!             | "{" [ value { "," value } ] "}"  (* set constant *)
//!             | "<" [ value { "," value } ] ">"  (* list constant *)
//!             | "(" expr [ binop expr ] ")"      (* binary op / grouping *)
//!             | head1 "(" expr ")"
//!             | head2 "(" expr "," expr ")"
//!             | reduce "(" expr "," lambda "," lambda "," expr "," expr ")"
//! lambda    ::= "lambda" "(" name "," name ")" expr
//!
//! binop     ::= "=" | "<=" | "+" | "*"
//! head1     ::= "choose" | "rest" | "new" | "succ" | "head" | "tail"
//! head2     ::= "insert" | "cons"
//! reduce    ::= "set-reduce" | "list-reduce"
//!
//! value     ::= "true" | "false" | natural | atom
//!             | "[" [ value { "," value } ] "]"  (* tuple *)
//!             | "{" [ value { "," value } ] "}"  (* set *)
//!             | "<" [ value { "," value } ] ">"  (* list *)
//!
//! name      ::= letter-or-"_" { letter | digit | "_" | "-" }   (* not a keyword *)
//! atom      ::= "d" digits | name "#" digits
//! natural   ::= digits
//! ```
//!
//! Binary operators appear only parenthesised (exactly as the printer emits
//! them), so the grammar needs no precedence levels; `if`/`let` extend as
//! far right as possible, terminated by keywords or the enclosing
//! delimiter. Every token and AST-producing construct carries a byte
//! [`span::Span`]; parse failures are structured [`parser::ParseError`]
//! values whose [`parser::Diagnostic`] rendering shows a caret-underlined
//! excerpt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod disasm;
pub mod frontend;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use compiled::{
    print_compiled_def, print_compiled_expr, print_compiled_program, print_lowered_expr,
};
pub use disasm::{disasm_chunk, disasm_lowered, disasm_program};
pub use frontend::{FrontendError, TextFrontend};
pub use parser::{
    parse_expr, parse_lambda, parse_program, parse_program_in, parse_value, Diagnostic, ParseError,
    ParseErrorKind,
};
pub use printer::{print_expr, print_lambda, print_program};
pub use span::Span;
pub use token::{Token, TokenKind};
