//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The workspace's containers build with no network and no registry cache, so
//! the real `rand` cannot be fetched. Every consumer here needs only *seeded
//! determinism* (same seed ⇒ same instance), never a particular stream, so a
//! SplitMix64 generator behind the `StdRng` name is sufficient. See
//! `vendor/README.md`.

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64). Not the real `rand`
    /// `StdRng` stream — only seeded determinism is promised.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014); passes BigCrush.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

/// Core trait every generator implements.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// A half-open range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is < 2^-64 for every span this workspace uses.
                self.start + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // Compare 53 uniform mantissa bits against p.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let s: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 is neither all-true nor all-false over 1000 draws.
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(trues > 300 && trues < 700, "trues = {trues}");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Same seed reproduces the same permutation.
        let mut rng2 = StdRng::seed_from_u64(3);
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
