//! E8 — Section 7: the cost of the order-independence analyses (syntactic
//! proof, permutation testing) and of WL refinement on the CFI pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_analysis::{analyze_order_dependence, provably_order_independent};
use srl_core::dsl::var;
use srl_core::program::{Env, Program};
use srl_core::value::Value;
use srl_stdlib::hom;
use workloads::cfi::{cfi_pair, BaseGraph};
use workloads::wl::{refine_1wl_joint, wl1_equivalent};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_order");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    let program = Program::srl();
    for n in [8usize, 16, 32] {
        let s = Value::set((0..n as u64).map(Value::atom));
        let purple = Value::set([Value::atom(n as u64 - 1)]);
        let env = Env::new().bind("S", s).bind("P", purple);
        let dependent_query = hom::purple_first(var("S"), var("P"));
        let independent_query = hom::even(var("S"));
        group.bench_with_input(BenchmarkId::new("syntactic_proof", n), &n, |b, _| {
            b.iter(|| provably_order_independent(&program, &independent_query))
        });
        group.bench_with_input(BenchmarkId::new("permutation_test", n), &n, |b, _| {
            b.iter(|| analyze_order_dependence(&program, &dependent_query, &env, n, 8))
        });
    }
    for n in [4usize, 6, 8] {
        let (g, h) = cfi_pair(&BaseGraph::cycle(n));
        group.bench_with_input(BenchmarkId::new("wl1_cfi", n), &n, |b, _| {
            b.iter(|| wl1_equivalent(&g.graph, &h.graph))
        });
        group.bench_with_input(BenchmarkId::new("wl1_refine", n), &n, |b, _| {
            b.iter(|| refine_1wl_joint(&[g.graph.clone(), h.graph.clone()]))
        });
        group.bench_with_input(BenchmarkId::new("component_count", n), &n, |b, _| {
            b.iter(|| (g.connected_components(), h.connected_components()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
