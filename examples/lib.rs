//! Shared helpers for the runnable examples.
//!
//! Each binary in this package exercises the public API of the SRL
//! reproduction on a self-contained scenario; `print_header` just keeps their
//! output uniform.

/// Prints a section header.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}
