//! Per-tenant serving state.
//!
//! A tenant is the isolation unit of the server: its own
//! [`PipelineConfig`] (dialect, type policy, limits — including the
//! wall-clock deadline that doubles as admission control), its own
//! input-binding environment (the `S := {…}` binding model of the REPL,
//! promoted to the wire as `bind` requests that persist across queries and
//! connections), its own [`ProgramCache`], and its own counters. Nothing a
//! tenant binds, compiles or caches is visible to any other tenant.
//!
//! Each tenant lives behind one mutex (see `server.rs`), so a tenant is
//! also the server's **shard**: queries of one tenant serialize, queries of
//! different tenants run concurrently across the session threads, and each
//! query may itself shard proper-hom folds over the evaluator's worker pool
//! (`threads` in the tenant config, multiplexed over `srl-core::parallel`).

use srl_core::pipeline::{Compiled, PipelineConfig};
use srl_core::program::Program;
use srl_core::{Dialect, Env, Evaluator};

use crate::cache::ProgramCache;

/// Per-tenant request counters, reported by `stats` requests.
#[derive(Clone, Copy, Default)]
pub struct TenantStats {
    /// `run`/`check`/`analyze` requests admitted for this tenant.
    pub queries: u64,
    /// Requests answered with an error body (any kind except `overloaded`).
    pub errors: u64,
    /// Requests shed by admission control.
    pub shed: u64,
}

/// Everything the server keeps for one tenant.
pub struct Tenant {
    /// The tenant's name (the `tenant` request field).
    pub name: String,
    /// The pipeline configuration every query compiles and runs under.
    pub config: PipelineConfig,
    /// Input bindings, persisted across queries and connections.
    pub env: Env,
    /// The compiled-program cache.
    pub cache: ProgramCache,
    /// Request counters.
    pub stats: TenantStats,
    /// The artifact for the empty program, backing bare-`expr` queries.
    empty: Compiled,
    /// Pooled evaluator over `empty` (stats reset per query; the rollback
    /// invariant keeps it byte-identical to fresh after failures).
    empty_evaluator: Evaluator,
}

impl Tenant {
    /// A fresh tenant under `config`, with an empty environment and a cache
    /// bounded at `cache_cap`.
    pub fn new(name: &str, config: PipelineConfig, cache_cap: usize) -> Self {
        let empty = config
            .pipeline()
            .prepare(Program::new(Dialect::full()))
            .expect("the empty program validates under every dialect");
        let empty_evaluator = empty.evaluator();
        Tenant {
            name: name.to_string(),
            config,
            env: Env::new(),
            cache: ProgramCache::new(cache_cap),
            stats: TenantStats::default(),
            empty,
            empty_evaluator,
        }
    }

    /// The pooled evaluator for bare-expression queries (no `program`
    /// field), with statistics already reset for the next query.
    pub fn expr_evaluator(&mut self) -> &mut Evaluator {
        self.empty_evaluator.reset_stats();
        &mut self.empty_evaluator
    }

    /// The empty-program artifact bare expressions evaluate over.
    pub fn empty_artifact(&self) -> &Compiled {
        &self.empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::Value;

    #[test]
    fn tenants_keep_independent_environments_and_caches() {
        let mut a = Tenant::new("a", PipelineConfig::default(), 8);
        let b = Tenant::new("b", PipelineConfig::default(), 8);
        a.env.insert("S", Value::set([Value::atom(1)]));
        assert_eq!(a.env.len(), 1);
        assert!(b.env.is_empty());
        assert!(b.cache.is_empty());
    }

    #[test]
    fn bare_expressions_evaluate_against_the_tenant_environment() {
        let mut t = Tenant::new("t", PipelineConfig::default(), 8);
        t.env
            .insert("S", Value::set([Value::atom(1), Value::atom(2)]));
        let expr = srl_syntax::parse_expr("insert(d9, S)").unwrap();
        let env = t.env.clone();
        let value = t.expr_evaluator().eval(&expr, &env).unwrap();
        assert_eq!(
            value,
            Value::set([Value::atom(1), Value::atom(2), Value::atom(9)])
        );
    }
}
