//! Text front end: parse an `.srl` program from disk, push it through the
//! staged pipeline (`Source → Program → Checked → Compiled`), run it on
//! both execution backends, and show what a parse diagnostic looks like.
//!
//! Run with `cargo run -p srl-examples --bin text_frontend`.

use srl_core::pipeline::{Pipeline, Source};
use srl_core::{ExecBackend, Value};
use srl_examples::print_header;
use srl_syntax::frontend::TextFrontend;

fn main() {
    print_header("Parsing a program from text");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/srl/membership.srl");
    let text = std::fs::read_to_string(path).expect("examples/srl/membership.srl is committed");
    let source = Source::new("membership.srl", text);
    println!("{}", source.text.trim_end());

    print_header("Source → Program → Checked → Compiled, on both backends");
    for backend in [ExecBackend::vm(), ExecBackend::TreeWalk] {
        let artifact = Pipeline::new()
            .with_backend(backend)
            .compile_source(&source)
            .expect("the example parses and validates");
        let (value, stats) = artifact.call("main", &[]).unwrap();
        println!(
            "{backend:?}: main() = {value}  [{} steps, {} reduce iterations]",
            stats.steps, stats.reduce_iterations
        );
    }
    let artifact = Pipeline::new().compile_source(&source).unwrap();
    let (v, _) = artifact
        .call(
            "member",
            &[Value::set([Value::atom(2), Value::atom(7)]), Value::atom(3)],
        )
        .unwrap();
    println!("member({{d2, d7}}, d3) = {v}");

    print_header("Round trip: parse ∘ print is the identity");
    let program = srl_stdlib::blowup::powerset_program();
    let printed = srl_syntax::print_program(&program);
    let reparsed = srl_syntax::parse_program_in(&printed, program.dialect).unwrap();
    println!(
        "powerset program: parse(print(p)) == p is {}",
        reparsed == program
    );

    print_header("What a parse error looks like");
    let broken = Source::new("broken.srl", "f(x) =\n  insert(x, choose(emptyset)\n");
    match Pipeline::new().compile_source(&broken) {
        Ok(_) => unreachable!("the source is broken on purpose"),
        Err(e) => println!("{}", e.render(&broken)),
    }
}
