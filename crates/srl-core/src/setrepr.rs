//! `SetRepr` — the sorted-vector backing store of [`Value::Set`].
//!
//! The paper's cost model is driven by the set primitives (`choose`, `rest`,
//! `insert`, `set-reduce`), so the representation behind `Value::Set` is the
//! system's universal data structure. The original backing store was a
//! `BTreeSet<Value>`; profiling after the zero-copy refactor showed its node
//! churn (pointer-chasing iteration, per-node allocation on insert/clone)
//! dominating reduce-heavy workloads. This module replaces it with a
//! **sorted `Vec<Value>`**:
//!
//! * iteration — what `set-reduce` does for every element — walks contiguous
//!   memory;
//! * membership and `insert` are a binary search (plus a tail shift on
//!   insertion; reduces that rebuild a set meet the common case of inserting
//!   at the end, which is a pure push);
//! * `choose` is the first element of the live window, O(1);
//! * `rest` is a **slice window**: popping the minimum just advances the
//!   window start, O(1) on a uniquely-owned set, so a full `rest`-chain
//!   drain is O(n) instead of O(n log n).
//!
//! ## Invariants
//!
//! `items[start..]` is the live window; it is strictly sorted ascending in
//! the total [`Value`] order and duplicate-free. Slots before `start` are
//! dead (overwritten with placeholder booleans by [`SetRepr::pop_first`]) and
//! are never observed: equality, ordering, hashing, iteration and length all
//! go through the window. [`Clone`] compacts — it copies only the window —
//! so an `Arc::make_mut` on a shared, partially-drained set re-bases it for
//! free.
//!
//! Everything observable — the element order, what `choose`/`rest` return,
//! first-wins deduplication (two values can compare equal while differing in
//! display, e.g. named vs. unnamed atoms) and therefore every `EvalStats`
//! counter — matches the `BTreeSet` representation exactly;
//! `tests/tests/set_backend_differential.rs` pits the two against each other
//! operation-by-operation.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::value::Value;

/// A finite set of [`Value`]s, stored as a sorted, deduplicated vector.
///
/// Iteration order *is* the value order — exactly the order `set-reduce`
/// scans. See the module docs for the representation invariants.
pub struct SetRepr {
    /// Backing store; `items[start..]` is sorted ascending and duplicate-free.
    items: Vec<Value>,
    /// Start of the live window (`rest` advances this instead of shifting).
    start: usize,
}

impl SetRepr {
    /// The empty set.
    pub fn new() -> Self {
        SetRepr {
            items: Vec::new(),
            start: 0,
        }
    }

    /// The live elements, ascending. This is the whole observable state.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        &self.items[self.start..]
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() - self.start
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.items.len()
    }

    /// Iterates the elements in ascending value order.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.as_slice().iter()
    }

    /// The minimal element — the paper's `choose(S)` — if non-empty.
    #[inline]
    pub fn first(&self) -> Option<&Value> {
        self.as_slice().first()
    }

    /// Membership test (binary search).
    pub fn contains(&self, value: &Value) -> bool {
        self.as_slice().binary_search(value).is_ok()
    }

    /// Inserts `value`, keeping the set sorted and duplicate-free. Returns
    /// `true` if the value was new. Like `BTreeSet::insert`, an equal element
    /// that is already present is **kept** (first-wins: equal values may
    /// still differ in display, e.g. named vs. unnamed atoms).
    pub fn insert(&mut self, value: Value) -> bool {
        match self.as_slice().binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                // Shifts only the tail after the insertion point; the common
                // ascending-rebuild case (pos == len) is a plain push.
                self.items.insert(self.start + pos, value);
                true
            }
        }
    }

    /// Removes and returns the minimal element. Amortized O(1): the window
    /// start advances and the dead slot is overwritten with a placeholder
    /// (dead slots are never read — see the module docs). Once the dead
    /// prefix outgrows the live window the backing vector is compacted, so
    /// a uniquely-owned set driven as a worklist (`insert` interleaved with
    /// `rest`) stays O(live size), not O(total operations).
    pub fn pop_first(&mut self) -> Option<Value> {
        if self.is_empty() {
            return None;
        }
        let value = std::mem::replace(&mut self.items[self.start], Value::Bool(false));
        self.start += 1;
        if self.start * 2 > self.items.len() {
            // At least as many pops since the last compaction as elements
            // moved here, so the drain amortizes to O(1) per pop.
            self.items.drain(..self.start);
            self.start = 0;
        }
        Some(value)
    }
}

impl Default for SetRepr {
    fn default() -> Self {
        SetRepr::new()
    }
}

/// Cloning compacts: only the live window is copied, so a shared,
/// partially-drained set re-bases (start = 0) on copy-on-write.
impl Clone for SetRepr {
    fn clone(&self) -> Self {
        SetRepr {
            items: self.as_slice().to_vec(),
            start: 0,
        }
    }
}

/// Builds the set from arbitrary (unsorted, possibly duplicated) values.
/// Deduplication is first-wins, matching a sequence of `BTreeSet::insert`s:
/// the stable sort keeps equal values in arrival order and `dedup` keeps the
/// first of each run.
impl FromIterator<Value> for SetRepr {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut items: Vec<Value> = iter.into_iter().collect();
        items.sort();
        items.dedup();
        SetRepr { items, start: 0 }
    }
}

impl Extend<Value> for SetRepr {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a SetRepr {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for SetRepr {
    type Item = Value;
    type IntoIter = std::iter::Skip<std::vec::IntoIter<Value>>;

    fn into_iter(self) -> Self::IntoIter {
        // The skipped prefix is dead placeholder slots, not elements.
        let start = self.start;
        self.items.into_iter().skip(start)
    }
}

impl PartialEq for SetRepr {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for SetRepr {}

impl PartialOrd for SetRepr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic on the ascending element sequence — the same order
/// `BTreeSet<Value>` exposed, so the total [`Value`] order (and with it every
/// `choose`/`rest`/`set-reduce` traversal) is unchanged.
impl Ord for SetRepr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for SetRepr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Like the std collections: length, then elements in order.
        self.len().hash(state);
        for v in self {
            v.hash(state);
        }
    }
}

/// Renders like `BTreeSet` did: `{elem, elem, …}`.
impl fmt::Debug for SetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(ixs: impl IntoIterator<Item = u64>) -> SetRepr {
        ixs.into_iter().map(Value::atom).collect()
    }

    #[test]
    fn from_iter_sorts_and_dedups_first_wins() {
        let s: SetRepr = [
            Value::atom(3),
            Value::named_atom(1, "first"),
            Value::atom(1),
            Value::atom(2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 3);
        // Equal atoms collapse to the *first* occurrence (the named one).
        assert_eq!(format!("{:?}", s.first().unwrap()), "first#1");
    }

    #[test]
    fn insert_keeps_sorted_and_reports_novelty() {
        let mut s = SetRepr::new();
        assert!(s.insert(Value::atom(5)));
        assert!(s.insert(Value::atom(1)));
        assert!(s.insert(Value::atom(3)));
        assert!(!s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().cloned().collect();
        assert_eq!(got, vec![Value::atom(1), Value::atom(3), Value::atom(5)]);
        assert!(s.contains(&Value::atom(3)));
        assert!(!s.contains(&Value::atom(4)));
    }

    #[test]
    fn insert_keeps_existing_on_duplicate() {
        let mut s = SetRepr::new();
        s.insert(Value::named_atom(2, "kept"));
        assert!(!s.insert(Value::atom(2)));
        assert_eq!(format!("{:?}", s.first().unwrap()), "kept#2");
    }

    #[test]
    fn pop_first_drains_ascending_in_place() {
        let mut s = atoms([4, 2, 9]);
        assert_eq!(s.pop_first(), Some(Value::atom(2)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), Some(&Value::atom(4)));
        assert_eq!(s.pop_first(), Some(Value::atom(4)));
        assert_eq!(s.pop_first(), Some(Value::atom(9)));
        assert_eq!(s.pop_first(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn window_is_invisible_to_eq_ord_hash_and_clone() {
        use std::collections::hash_map::DefaultHasher;
        let mut drained = atoms([1, 2, 3]);
        drained.pop_first();
        let fresh = atoms([2, 3]);
        assert_eq!(drained, fresh);
        assert_eq!(drained.cmp(&fresh), Ordering::Equal);
        let hash = |s: &SetRepr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&drained), hash(&fresh));
        let compacted = drained.clone();
        assert_eq!(compacted, fresh);
        assert_eq!(compacted.start, 0);
        assert_eq!(compacted.items.len(), 2);
    }

    #[test]
    fn insert_into_drained_window_lands_in_window() {
        let mut s = atoms([1, 5, 9]);
        s.pop_first();
        assert!(s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().cloned().collect();
        assert_eq!(got, vec![Value::atom(3), Value::atom(5), Value::atom(9)]);
        // Re-inserting the popped minimum is a fresh element again.
        assert!(s.insert(Value::atom(1)));
        assert_eq!(s.first(), Some(&Value::atom(1)));
    }

    #[test]
    fn interleaved_pop_and_insert_keeps_backing_storage_bounded() {
        // The worklist pattern `S = insert(x, rest(S))`, iterated: without
        // amortized compaction the dead prefix would grow by one slot per
        // round on a uniquely-owned set.
        let mut s = atoms(0u64..8);
        for round in 0..10_000u64 {
            let popped = s.pop_first().expect("non-empty");
            assert_eq!(popped, Value::atom(round), "FIFO over ranks");
            s.insert(Value::atom(round + 8));
            assert_eq!(s.len(), 8, "round {round}");
        }
        assert!(
            s.items.len() <= 2 * s.len(),
            "backing storage grew unboundedly: {} slots for {} live elements",
            s.items.len(),
            s.len()
        );
    }

    #[test]
    fn ordering_is_lexicographic_on_elements() {
        assert!(atoms([1]) < atoms([2]));
        assert!(atoms([1, 2]) < atoms([1, 3]));
        assert!(atoms([1]) < atoms([1, 2]), "a strict prefix sorts first");
        assert!(atoms([0, 1]) < atoms([1]), "smaller minimum sorts first");
        assert_eq!(atoms([]).cmp(&atoms([])), Ordering::Equal);
    }

    #[test]
    fn owned_iteration_skips_dead_slots() {
        let mut s = atoms([7, 3, 5]);
        s.pop_first();
        let got: Vec<_> = s.into_iter().collect();
        assert_eq!(got, vec![Value::atom(5), Value::atom(7)]);
    }

    #[test]
    fn debug_renders_as_a_set() {
        assert_eq!(format!("{:?}", atoms([2, 1])), "{d1, d2}");
    }
}
