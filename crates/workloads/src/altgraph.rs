//! Alternating graphs and the APATH / AGAP problem (Definition 3.4).
//!
//! An alternating graph is a digraph whose vertices are labelled *universal*
//! (AND) or *existential* (OR). `APATH(x, y)` is the smallest relation such
//! that
//!
//! 1. `APATH(x, x)`;
//! 2. if `x` is existential and some edge (x, z) has `APATH(z, y)`, then
//!    `APATH(x, y)`;
//! 3. if `x` is universal, has at least one outgoing edge, and *every* edge
//!    (x, z) has `APATH(z, y)`, then `APATH(x, y)`.
//!
//! `AGAP = {G | APATH(v₀, v_max)}` is complete for P under first-order
//! reductions (Fact 3.5), which is why Lemma 3.6 (APATH expressible in SRL)
//! gives `P ⊆ ℒ(SRL)`. This module provides the graph type, generators
//! (layered AND/OR game graphs with a known answer, and random graphs), and a
//! native fixpoint solver used as the experiments' ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srl_core::value::Value;

/// An alternating graph: a digraph plus a universal/existential label per
/// vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlternatingGraph {
    /// Number of vertices (vertices are `0 .. n`).
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<(usize, usize)>,
    /// `universal[v]` is true iff vertex v is an AND vertex.
    pub universal: Vec<bool>,
}

impl AlternatingGraph {
    /// Creates an alternating graph; out-of-range edges are dropped and the
    /// label vector is resized with `false` (existential).
    pub fn new(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
        universal: impl IntoIterator<Item = bool>,
    ) -> Self {
        let mut es: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        es.sort_unstable();
        es.dedup();
        let mut labels: Vec<bool> = universal.into_iter().collect();
        labels.resize(n, false);
        AlternatingGraph {
            n,
            edges: es,
            universal: labels,
        }
    }

    /// A layered AND/OR game graph: `layers` layers of `width` vertices each
    /// plus a single target vertex at the end. Every vertex of layer `i` has
    /// an edge to every vertex of layer `i + 1`; every vertex of the last
    /// layer has an edge to the target. Labels alternate by layer (layer 0
    /// existential, layer 1 universal, …). Because *every* vertex reaches the
    /// target, `APATH(v₀, v_max)` holds by construction regardless of the
    /// labels — a positive AGAP instance of known shape whose fixpoint takes
    /// `layers + 1` rounds to converge.
    pub fn layered_game(layers: usize, width: usize) -> Self {
        let width = width.max(1);
        let n = layers * width + 1;
        let target = n - 1;
        let mut edges = Vec::new();
        for layer in 0..layers {
            for i in 0..width {
                let u = layer * width + i;
                if layer + 1 < layers {
                    for j in 0..width {
                        edges.push((u, (layer + 1) * width + j));
                    }
                } else {
                    edges.push((u, target));
                }
            }
        }
        let universal = (0..n).map(|v| v != target && (v / width) % 2 == 1);
        AlternatingGraph::new(n, edges, universal)
    }

    /// A random alternating graph: each ordered pair is an edge with
    /// probability `p`, each vertex is universal with probability 1/2.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    edges.push((u, v));
                }
            }
        }
        let universal: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        AlternatingGraph::new(n, edges, universal)
    }

    /// A positive-by-construction instance: a binary AND/OR tree of the given
    /// depth whose leaves all have a self-loop-free edge to the single target
    /// vertex (the last vertex). The root is vertex 0. Every leaf reaches the
    /// target, so `APATH(root, target)` holds regardless of labels.
    pub fn and_or_tree(depth: usize) -> Self {
        let internal = (1usize << depth) - 1; // full binary tree internal+leaf count = 2^depth - 1
        let n = internal + 1; // plus the target vertex
        let target = n - 1;
        let mut edges = Vec::new();
        for v in 0..internal {
            let left = 2 * v + 1;
            let right = 2 * v + 2;
            if left < internal {
                edges.push((v, left));
            }
            if right < internal {
                edges.push((v, right));
            }
            if left >= internal && right >= internal {
                // v is a leaf of the tree: connect it to the target.
                edges.push((v, target));
            }
        }
        // Alternate labels by tree level: even levels existential, odd
        // universal; the target is existential.
        let universal = (0..n).map(|v| {
            if v == target {
                false
            } else {
                (usize::BITS - (v + 1).leading_zeros() - 1) % 2 == 1
            }
        });
        AlternatingGraph::new(n, edges, universal)
    }

    /// Out-neighbours of `u`.
    pub fn successors(&self, u: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == u)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Computes, for a fixed target `y`, the set of vertices `x` with
    /// `APATH(x, y)`, by the obvious monotone fixpoint (the native evaluation
    /// of the paper's operator `F` in Section 3).
    pub fn apath_to(&self, y: usize) -> Vec<bool> {
        let mut apath = vec![false; self.n];
        if y >= self.n {
            return apath;
        }
        apath[y] = true;
        loop {
            let mut changed = false;
            for x in 0..self.n {
                if apath[x] {
                    continue;
                }
                let succ = self.successors(x);
                let holds = if self.universal[x] {
                    !succ.is_empty() && succ.iter().all(|&z| apath[z])
                } else {
                    succ.iter().any(|&z| apath[z])
                };
                if holds {
                    apath[x] = true;
                    changed = true;
                }
            }
            if !changed {
                return apath;
            }
        }
    }

    /// The full APATH relation as a matrix: `apath[x][y]`.
    #[allow(clippy::needless_range_loop)]
    pub fn apath_all(&self) -> Vec<Vec<bool>> {
        // APATH(x, y) is defined per target y; collect column-wise.
        let mut m = vec![vec![false; self.n]; self.n];
        for y in 0..self.n {
            let col = self.apath_to(y);
            for x in 0..self.n {
                m[x][y] = col[x];
            }
        }
        m
    }

    /// The AGAP decision: `APATH(v₀, v_max)`.
    pub fn agap(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        self.apath_to(self.n - 1)[0]
    }

    /// The vertex set as an SRL value.
    pub fn nodes_value(&self) -> Value {
        Value::set((0..self.n as u64).map(Value::atom))
    }

    /// The edge relation as an SRL set of `[from, to]` pairs.
    pub fn edges_value(&self) -> Value {
        Value::set(
            self.edges
                .iter()
                .map(|&(u, v)| Value::tuple([Value::atom(u as u64), Value::atom(v as u64)])),
        )
    }

    /// The set of universal (AND) vertices as an SRL value.
    pub fn ands_value(&self) -> Value {
        Value::set(
            (0..self.n)
                .filter(|&v| self.universal[v])
                .map(|v| Value::atom(v as u64)),
        )
    }

    /// The set of existential (OR) vertices as an SRL value.
    pub fn ors_value(&self) -> Value {
        Value::set(
            (0..self.n)
                .filter(|&v| !self.universal[v])
                .map(|v| Value::atom(v as u64)),
        )
    }

    /// The labelled edge encoding used verbatim in Lemma 3.6:
    /// `set([from, to], label)` where the label is an atom — we reserve two
    /// fresh atoms `n` (AND) and `n + 1` (OR) for the labels.
    pub fn labelled_edges_value(&self) -> Value {
        let and_label = Value::atom(self.n as u64);
        let or_label = Value::atom(self.n as u64 + 1);
        Value::set(self.edges.iter().map(|&(u, v)| {
            let label = if self.universal[u] {
                and_label.clone()
            } else {
                or_label.clone()
            };
            Value::tuple([
                Value::tuple([Value::atom(u as u64), Value::atom(v as u64)]),
                label,
            ])
        }))
    }

    /// Reads an APATH relation (set of `[x, y]` pairs) back from an SRL value.
    pub fn apath_from_value(value: &Value, n: usize) -> Option<Vec<Vec<bool>>> {
        let set = value.as_set()?;
        let mut m = vec![vec![false; n]; n];
        for item in set {
            let t = item.as_tuple()?;
            if t.len() != 2 {
                return None;
            }
            let x = t[0].as_atom()?.index as usize;
            let y = t[1].as_atom()?.index as usize;
            if x < n && y < n {
                m[x][y] = true;
            }
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn apath_is_reflexive() {
        let g = AlternatingGraph::random(8, 0.2, 1);
        let m = g.apath_all();
        for v in 0..8 {
            assert!(m[v][v]);
        }
    }

    #[test]
    fn existential_only_graph_reduces_to_reachability() {
        // With no universal vertices, APATH is plain reachability.
        let g = AlternatingGraph::new(4, [(0, 1), (1, 2), (2, 3)], [false; 4]);
        assert!(g.agap());
        let m = g.apath_all();
        assert!(m[0][3]);
        assert!(!m[3][0]);
    }

    #[test]
    fn universal_vertex_needs_all_successors() {
        // 0 is universal with edges to 1 and 2; only 1 reaches 3.
        let g = AlternatingGraph::new(4, [(0, 1), (0, 2), (1, 3)], [true, false, false, false]);
        assert!(!g.apath_to(3)[0], "universal vertex 0 must not reach 3");
        // Make 2 reach 3 as well: now 0 does too.
        let g2 = AlternatingGraph::new(
            4,
            [(0, 1), (0, 2), (1, 3), (2, 3)],
            [true, false, false, false],
        );
        assert!(g2.apath_to(3)[0]);
    }

    #[test]
    fn universal_vertex_with_no_successors_fails() {
        let g = AlternatingGraph::new(2, [], [true, false]);
        assert!(!g.apath_to(1)[0]);
        // But APATH(x, x) still holds for it.
        assert!(g.apath_to(0)[0]);
    }

    #[test]
    fn layered_game_is_positive() {
        for (layers, width) in [(2, 2), (3, 2), (3, 3), (4, 2)] {
            let g = AlternatingGraph::layered_game(layers, width);
            assert!(g.agap(), "layers={layers} width={width}");
        }
    }

    #[test]
    fn and_or_tree_is_positive() {
        for depth in 1..5 {
            let g = AlternatingGraph::and_or_tree(depth);
            assert!(g.agap(), "depth={depth}");
        }
    }

    #[test]
    fn random_graphs_deterministic_per_seed() {
        assert_eq!(
            AlternatingGraph::random(10, 0.3, 5),
            AlternatingGraph::random(10, 0.3, 5)
        );
    }

    #[test]
    fn srl_encodings() {
        let g = AlternatingGraph::new(3, [(0, 1), (1, 2)], [false, true, false]);
        assert_eq!(g.nodes_value().len(), Some(3));
        assert_eq!(g.edges_value().len(), Some(2));
        assert_eq!(g.ands_value().len(), Some(1));
        assert_eq!(g.ors_value().len(), Some(2));
        let labelled = g.labelled_edges_value();
        assert_eq!(labelled.len(), Some(2));
        // Labels are atoms n and n+1, disjoint from vertex atoms.
        for item in labelled.as_set().unwrap() {
            let label = &item.as_tuple().unwrap()[1];
            assert!(label.as_atom().unwrap().index >= 3);
        }
    }

    #[test]
    fn apath_from_value_roundtrip() {
        let g = AlternatingGraph::new(3, [(0, 1), (1, 2)], [false; 3]);
        let m = g.apath_all();
        let mut pair_values = Vec::new();
        for (x, row) in m.iter().enumerate() {
            for (y, &reachable) in row.iter().enumerate() {
                if reachable {
                    pair_values.push(Value::tuple([Value::atom(x as u64), Value::atom(y as u64)]));
                }
            }
        }
        let pairs = Value::set(pair_values);
        let back = AlternatingGraph::apath_from_value(&pairs, 3).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn agap_on_empty_graph_is_false() {
        let g = AlternatingGraph::new(0, [], []);
        assert!(!g.agap());
    }
}
