//! The register bytecode: instruction set, chunks, and the codegen pass from
//! the lowered arena.
//!
//! The tree-walking evaluator ([`crate::eval`]) re-dispatches through a
//! `match` on [`LExpr`] for every node visit, every iteration of every
//! `set-reduce`. This module compiles the lowered arena one step further,
//! into straight-line **register code**: each definition body (and each
//! stand-alone lowered expression) becomes a [`Block`] of [`Insn`]s operating
//! on a flat register frame, with `if` as explicit branches and the reduce
//! lambdas as nested blocks. The dispatch loop lives in [`crate::vm`].
//!
//! ## Register frames
//!
//! One frame per definition activation (and one for the root expression).
//! The frame layout extends the lowering's slot discipline:
//!
//! * registers `0 .. max_lexical_height` are the **lexical slots** — exactly
//!   the frame slots [`LExpr::Local`] indexes: definition parameters from
//!   register 0, then `let` bindings and reduce-lambda parameters at their
//!   static heights. Lambda bodies execute in the enclosing frame (they see
//!   enclosing bindings), with their two parameters at the next two slots.
//! * registers `max_lexical_height .. frame_size` are **temporaries**,
//!   allocated by codegen with a stack discipline.
//!
//! ## The `EvalStats` contract
//!
//! Every instruction that corresponds to an [`LExpr`] node visit carries the
//! node's **static depth offset** within its block and charges exactly one
//! step at `base_depth + offset` when executed — the same accounting
//! [`EvalCore::bump_step`](crate::eval) performs per `eval_in` entry. Codegen
//! reorders *when* a parent's step is charged (after its operands instead of
//! before), which cannot change the totals, the high-water marks, or whether
//! a monotone limit is crossed; nodes whose tree-walk arm can fail *before*
//! evaluating children (dialect guards, static arity mismatches) keep their
//! pre-order position via explicit [`Insn::Guard`]/fail instructions. The
//! result: on every successful evaluation the VM's [`EvalStats`] are
//! **byte-identical** to the tree-walk's (`tests/tests/vm_differential.rs`
//! enforces this across the whole benchmark suite). On error paths the error
//! *kind* matches but the partial counters may differ by the reordering.
//!
//! ## Superinstructions
//!
//! Codegen fuses the hot shapes of the paper's programs so the dispatch loop
//! executes one instruction where the tree-walk visited several nodes:
//!
//! * **operand fusion** — `sel_i(x)`, `x = y`, `x ≤ y`, `sel_i(x) = sel_j(y)`,
//!   comparisons against constants, and `choose(x)` on frame slots become a
//!   single [`Insn::Cmp`]/[`Insn::Sel`]/[`Insn::Choose`] with
//!   [`Operand`]-encoded children (borrowed from the frame, never cloned),
//!   including the `choose`/`rest`-on-a-slot pair ([`Insn::Choose`] +
//!   [`Insn::Rest`] over a [`Insn::Take`]n slot);
//! * **last-use moves** — a `Local` read in tail position whose slot is dead
//!   afterwards compiles to [`Insn::Take`] instead of a clone, so the
//!   accumulator threaded through an `insert`-fold (or through a call like
//!   the powerset's `finsert`) stays uniquely owned and every
//!   `Arc::make_mut` mutates in place instead of copying;
//! * **fold superinstructions** — a `set-reduce` whose lambdas match one of
//!   the stdlib's shapes compiles to a single fused [`ReduceKind`]:
//!   [`ReduceKind::Member`] (the `member` scan becomes a binary search),
//!   [`ReduceKind::Union`] (the `union` insert-fold becomes one bulk
//!   `SetMerge` over [`SetRepr::merge_union`](crate::setrepr::SetRepr)),
//!   [`ReduceKind::InsertApp`]/[`ReduceKind::Filter`]/[`ReduceKind::Scan`]/
//!   [`ReduceKind::BoolAcc`] (`map`/`select`/`difference`-style folds with
//!   the accumulator lambda emulated arithmetically), and
//!   [`ReduceKind::Monotone`] (insert-only accumulator bodies, tracked by a
//!   running weight instead of the per-iteration `weight_capped` walk). Each
//!   fused kind replays the tree-walk's per-iteration step/depth/insert/
//!   allocation accounting in closed form, so the statistics stay
//!   byte-identical while the data path runs at memory speed.

use crate::analysis::{self, DefSummaries, SpineBlock};
use crate::bignat::BigNat;
use crate::lower::{CompiledProgram, LExpr, LId, LLambda, LoweredExpr};
use crate::tier::{ReturnMemo, ShapeCtx};
use crate::types::Type;
use crate::value::Value;

/// A register index within the current frame.
pub type Reg = u16;

/// A block index within a [`Chunk`].
pub type BlockId = u32;

/// A fused operand of a comparison / selection / choose instruction: where
/// the value comes from without a separate instruction (and, for everything
/// but [`Operand::Temp`], without cloning it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A temporary computed by preceding instructions (already charged).
    Temp(Reg),
    /// A frame slot, borrowed (one step at `depth + 1`).
    Slot(Reg),
    /// `sel_i` of a frame slot, borrowed (steps at `depth + 1`, `depth + 2`).
    SlotSel(Reg, usize),
    /// A constant from the chunk's constant table (one step at `depth + 1`).
    Const(u32),
}

/// The dialect feature a [`Insn::Guard`] checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DialectOp {
    /// `allow_new`.
    New,
    /// `allow_lists`.
    Lists,
    /// `allow_nat`.
    Nat,
    /// `allow_nat_add`.
    NatAdd,
    /// `allow_nat_mul`.
    NatMul,
}

/// One bytecode instruction. `depth` fields are static offsets from the
/// enclosing block's base depth; instructions without one were pre-charged by
/// a [`Insn::Guard`].
#[derive(Clone, Debug)]
pub enum Insn {
    /// `dst = bool`.
    LoadBool {
        /// Destination register.
        dst: Reg,
        /// The literal.
        value: bool,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = consts[index]` (an O(1) Arc-payload clone).
    LoadConst {
        /// Destination register.
        dst: Reg,
        /// Constant-table index.
        index: u32,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = {}`.
    LoadEmptySet {
        /// Destination register.
        dst: Reg,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = <>` (guards `allow_lists` itself — it has no children).
    LoadEmptyList {
        /// Destination register.
        dst: Reg,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = nats[index]` (guards `allow_nat` itself).
    LoadNat {
        /// Destination register.
        dst: Reg,
        /// Natural-constant-table index.
        index: u32,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = clone(src)` — a `Local` read whose slot stays live.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source frame slot.
        src: Reg,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = move(src)` — a `Local` read in tail position whose slot is
    /// dead afterwards; keeps Arc payloads uniquely owned.
    Take {
        /// Destination register.
        dst: Reg,
        /// Source frame slot (left holding a placeholder).
        src: Reg,
        /// Static depth offset.
        depth: u32,
    },
    /// An `UnboundVar` poison node: raises `EvalError::UnboundVariable`.
    FailUnbound {
        /// Name-table index of the original spelling.
        name: u32,
        /// Static depth offset.
        depth: u32,
    },
    /// A `CallUnknown` poison node: raises `EvalError::UnknownFunction`.
    FailUnknownCall {
        /// Name-table index of the called name.
        name: u32,
        /// Static depth offset.
        depth: u32,
    },
    /// A call whose arity mismatch is known statically: raises the
    /// tree-walk's shape error *before* evaluating any argument.
    FailArity {
        /// Callee definition index.
        def: u32,
        /// Number of arguments at the call site.
        nargs: u16,
        /// Static depth offset.
        depth: u32,
    },
    /// Charges one step (used for `let`, whose value/body need no joining
    /// instruction of their own).
    Bump {
        /// Static depth offset.
        depth: u32,
    },
    /// Charges one step and checks a dialect flag — emitted *before* the
    /// node's children, preserving the tree-walk's error order.
    Guard {
        /// The feature required.
        op: DialectOp,
        /// Operator name for the `DialectViolation` error.
        name: &'static str,
        /// Static depth offset.
        depth: u32,
    },
    /// `if`: charges the `if` node's step, requires `cond` to hold a
    /// boolean, and jumps to `else_to` when it is false.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Jump target (instruction index in this block) when false.
        else_to: u32,
        /// Static depth offset.
        depth: u32,
    },
    /// Unconditional jump within the block.
    Jump {
        /// Target instruction index.
        to: u32,
    },
    /// `dst = [regs[start], …, regs[start+len-1]]`, moving the components.
    MakeTuple {
        /// Destination register.
        dst: Reg,
        /// First component register.
        start: Reg,
        /// Number of components.
        len: u16,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = sel_index(op)`, borrowing fused operands.
    Sel {
        /// Destination register.
        dst: Reg,
        /// 1-based component index.
        index: usize,
        /// The tuple operand.
        op: Operand,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = (a = b)` or `(a ≤ b)`, borrowing fused operands.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// `true` for `≤`, `false` for `=`.
        leq: bool,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = insert(elem, set)`, consuming both registers.
    Insert {
        /// Destination register.
        dst: Reg,
        /// Element register (moved).
        elem: Reg,
        /// Set register (moved; mutated in place when uniquely owned).
        set: Reg,
        /// True when this insert grows a fused monotone accumulator: its
        /// novel-element weight feeds the running accumulator weight.
        spine: bool,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = choose(op)`, borrowing a fused operand.
    Choose {
        /// Destination register.
        dst: Reg,
        /// The set operand.
        op: Operand,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = rest(src)`, consuming the register (paired with
    /// [`Insn::Take`] this pops the minimum in place).
    Rest {
        /// Destination register.
        dst: Reg,
        /// Set register (moved).
        src: Reg,
        /// Static depth offset.
        depth: u32,
    },
    /// `dst = cons(elem, list)` (guarded).
    Cons {
        /// Destination register.
        dst: Reg,
        /// Element register (moved).
        elem: Reg,
        /// List register (moved).
        list: Reg,
    },
    /// `dst = head(src)` (guarded).
    Head {
        /// Destination register.
        dst: Reg,
        /// List register (moved).
        src: Reg,
    },
    /// `dst = tail(src)` (guarded).
    Tail {
        /// Destination register.
        dst: Reg,
        /// List register (moved).
        src: Reg,
    },
    /// `dst = new(src)` (guarded).
    New {
        /// Destination register.
        dst: Reg,
        /// Operand register (moved).
        src: Reg,
    },
    /// `dst = succ(src)` (guarded).
    Succ {
        /// Destination register.
        dst: Reg,
        /// Operand register (moved).
        src: Reg,
    },
    /// Requires `src` to hold a natural — the tree-walk checks the first
    /// operand of `+`/`*` before evaluating the second.
    CheckNat {
        /// Register to check (borrowed).
        src: Reg,
        /// Operator name for the shape error.
        op: &'static str,
    },
    /// `dst = a + b` on naturals (guarded).
    NatAdd {
        /// Destination register.
        dst: Reg,
        /// Left operand register (moved).
        a: Reg,
        /// Right operand register (moved).
        b: Reg,
    },
    /// `dst = a * b` on naturals (guarded).
    NatMul {
        /// Destination register.
        dst: Reg,
        /// Left operand register (moved).
        a: Reg,
        /// Right operand register (moved).
        b: Reg,
    },
    /// Call a definition: moves `nargs` argument registers starting at
    /// `args` into a fresh frame and runs the callee's block.
    Call {
        /// Destination register.
        dst: Reg,
        /// Callee definition index (resolved through the program chunk).
        def: u32,
        /// First argument register.
        args: Reg,
        /// Number of arguments.
        nargs: u16,
        /// Static depth offset.
        depth: u32,
    },
    /// A `set-reduce`/`list-reduce`, possibly fused (see [`ReduceKind`]).
    Reduce(Box<ReduceInsn>),
}

/// The operands and fold strategy of a reduce instruction.
#[derive(Clone, Debug)]
pub struct ReduceInsn {
    /// Destination register.
    pub dst: Reg,
    /// Register holding the traversed set/list (moved).
    pub set: Reg,
    /// Register holding the base value (moved).
    pub base: Reg,
    /// Register holding the `extra` value (moved).
    pub extra: Reg,
    /// Frame slot of the lambdas' first parameter (`y` is `x_slot + 1`).
    pub x_slot: Reg,
    /// Static depth offset of the reduce node.
    pub depth: u32,
    /// True for `list-reduce` (whose dialect guard was pre-charged).
    pub is_list: bool,
    /// The algebraic class of the fold's combiner, decided at compile time
    /// (see [`FoldClass`]). [`FoldClass::ProperHom`] folds may be sharded
    /// across the worker pool (`crate::parallel`); everything else must run
    /// sequentially.
    pub class: FoldClass,
    /// Where the classification came from: a fused shape, the
    /// interprocedural spine summary, a named obstacle, or list semantics.
    /// Pure provenance — the disassembler, `srl analyze`, and the REPL
    /// report it; execution reads only `class` and `kind`.
    pub origin: FoldOrigin,
    /// Static estimate of the work one fold iteration performs (weighted
    /// instruction count of the lambda blocks; nested reduces and calls
    /// weigh heavily). The parallel executor multiplies it by the input
    /// cardinality to decide whether sharding pays for the thread handoff.
    pub unit_cost: u32,
    /// Statically-proved storage tier of the **traversed set** (see
    /// [`SetTier`]): [`SetTier::Atom`] when shape inference
    /// ([`crate::tier`]) proved it `set(atom)`, so the columnar small-atom
    /// representation covers the traversal. Advisory — the representation
    /// chooses adaptively at run time regardless; this records the static
    /// proof for diagnostics and lets the VM trust the tier without
    /// probing.
    pub tier: SetTier,
    /// Statically-proved storage tier of the fold's **result** (the
    /// accumulator for set-building kinds): [`SetTier::Atom`] lets the VM
    /// and the parallel workers start accumulators directly in columnar
    /// storage instead of promoting on the first inserts. Equally
    /// advisory — a wrong stamp widens itself on first contact with a
    /// non-atom element.
    pub acc_tier: SetTier,
    /// The fold strategy.
    pub kind: ReduceKind,
}

/// The statically-proved storage tier of a fused fold's set operand — the
/// compile-time face of [`crate::setrepr`]'s columnar tiers.
/// Stamped on every [`ReduceInsn`] by codegen from the shape inference in
/// [`crate::tier`]; reported by the disassembler and `srl analyze` next to
/// the fold class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetTier {
    /// Proved `set(atom)`: the sorted-`u32`/bitset columnar representation
    /// applies to every value this operand can hold.
    Atom,
    /// Proved `set(tuple(atom, …, atom))` of this arity: the
    /// struct-of-arrays row representation applies to every value this
    /// operand can hold.
    Tuple {
        /// The tuple width `k` of the proved `set(tuple(atom^k))` shape.
        arity: u8,
    },
    /// Shape unknown or neither `set(atom)` nor a fixed-arity atom-tuple
    /// set: generic sorted-`Vec<Value>` storage (which may still promote
    /// adaptively at run time).
    Generic,
}

impl SetTier {
    /// The tier a statically-inferred shape proves: [`SetTier::Atom`]
    /// exactly for `set(atom)`, [`SetTier::Tuple`] exactly for
    /// `set(tuple(atom, …, atom))` with arity in `1..=255` (not for
    /// polymorphic or unknown shapes).
    pub(crate) fn of(ty: Option<&Type>) -> SetTier {
        match ty {
            Some(Type::Set(inner)) if **inner == Type::Atom => SetTier::Atom,
            Some(Type::Set(inner)) => match &**inner {
                Type::Tuple(ts)
                    if !ts.is_empty()
                        && ts.len() <= u8::MAX as usize
                        && ts.iter().all(|t| *t == Type::Atom) =>
                {
                    SetTier::Tuple {
                        arity: ts.len() as u8,
                    }
                }
                _ => SetTier::Generic,
            },
            _ => SetTier::Generic,
        }
    }

    /// Short lowercase label (`atom` / `tuple(k)` / `generic`) for the
    /// disassembler and diagnostics.
    pub fn label(&self) -> String {
        match self {
            SetTier::Atom => "atom".to_string(),
            SetTier::Tuple { arity } => format!("tuple({arity})"),
            SetTier::Generic => "generic".to_string(),
        }
    }
}

/// The compile-time algebraic classification of a fold — `srl-analysis`'s
/// Section 7 proper-hom machinery (`order::combiner_is_proper`) carried down
/// to the lowered IR, where it gates *execution strategy* instead of an
/// order-independence verdict.
///
/// A `set-reduce` whose combiner is a **proper homomorphism** — a
/// commutative, associative accumulator step (boolean or/and, set union by
/// insertion, including the conditional-insert shapes where the inserted
/// material never reads the accumulator) — computes the same value for any
/// traversal split, so contiguous shards of the input can be folded
/// independently and merged in shard order. The recognized fused shapes map
/// as follows:
///
/// * [`ReduceKind::Member`], [`ReduceKind::Union`] — proper homs whose data
///   path is already a single closed-form operation (binary search / bulk
///   merge); splittable in principle, nothing left to parallelize.
/// * [`ReduceKind::InsertApp`], [`ReduceKind::Filter`],
///   [`ReduceKind::BoolAcc`], [`ReduceKind::Monotone`] — proper homs with
///   real per-element lambda work: these are the shapes the worker pool
///   shards (the monotone spine is `y ∪ g(x)` with `g` independent of the
///   accumulator, hence commutative-associative).
/// * [`ReduceKind::Scan`] (keep-last-match) — order-sensitive: sequential,
///   always.
/// * [`ReduceKind::Generic`] — sequential by shape, *unless* the
///   interprocedural spine summary ([`crate::analysis`]) proved the
///   combiner threads its accumulator through a callee's spine parameter
///   ([`FoldOrigin::SummarySpine`]), in which case it is a proper hom with
///   per-element lambda work and shards like the fused hom kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldClass {
    /// Combiner provably order-insensitive (commutative-associative):
    /// eligible for sharded execution.
    ProperHom,
    /// Order-sensitive or not provably a proper hom: sequential execution
    /// only.
    Ordered,
}

impl FoldClass {
    /// Classifies a fused fold strategy (see the variant mapping above).
    /// List folds are always [`FoldClass::Ordered`]: lists keep duplicates
    /// and stored order, so even an or-fold observes the traversal.
    pub fn of(kind: &ReduceKind, is_list: bool) -> FoldClass {
        if is_list {
            return FoldClass::Ordered;
        }
        match kind {
            ReduceKind::Member
            | ReduceKind::Union
            | ReduceKind::InsertApp { .. }
            | ReduceKind::Filter { .. }
            | ReduceKind::BoolAcc { .. }
            | ReduceKind::Monotone { .. } => FoldClass::ProperHom,
            ReduceKind::Scan { .. } | ReduceKind::Generic { .. } => FoldClass::Ordered,
        }
    }

    /// Classifies a fold given its provenance: [`FoldClass::of`] plus the
    /// summary-aware path — a `Generic` *set* fold whose accumulator was
    /// proved a call-threaded monotone spine ([`FoldOrigin::SummarySpine`])
    /// is a proper hom even though its shape did not fuse.
    pub fn with_origin(kind: &ReduceKind, is_list: bool, origin: &FoldOrigin) -> FoldClass {
        match (FoldClass::of(kind, is_list), origin) {
            (FoldClass::Ordered, FoldOrigin::SummarySpine { .. }) if !is_list => {
                FoldClass::ProperHom
            }
            (class, _) => class,
        }
    }

    /// Short lowercase label (`proper-hom` / `ordered`) for the
    /// disassembler and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            FoldClass::ProperHom => "proper-hom",
            FoldClass::Ordered => "ordered",
        }
    }
}

/// Where a reduce's [`FoldClass`] verdict came from — recorded on every
/// [`ReduceInsn`] so the disassembler, `srl analyze`, and the REPL can
/// report the *reason* alongside the class, not just the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOrigin {
    /// The combiner matched one of the fused shapes; the [`ReduceKind`]
    /// itself names the algebra (or, for `Scan`, the order dependence).
    Shape,
    /// A `Generic` set fold whose accumulator is threaded through the spine
    /// parameter of definition `via`: proved a proper hom by the
    /// interprocedural summary ([`crate::analysis::DefSummaries`]).
    SummarySpine {
        /// Definition index (into [`CompiledProgram::defs`]) whose spine
        /// summary carried the proof across the call boundary.
        via: u32,
    },
    /// The fold stayed `Ordered` because the spine proof failed; the
    /// [`SpineBlock`] names the first obstacle found.
    Unproven(SpineBlock),
    /// A `list-reduce`: ordered by list semantics (duplicates and stored
    /// order are observable), no proof attempted.
    List,
}

/// How a reduce executes: generic two-block dispatch, or one of the fused
/// superinstruction forms (see the module docs).
#[derive(Clone, Debug)]
pub enum ReduceKind {
    /// Arbitrary lambdas: run both blocks per element, walk the accumulator
    /// weight per iteration — the tree-walk loop, minus tree dispatch.
    Generic {
        /// Block of the `app` lambda body.
        app: BlockId,
        /// Block of the `acc` lambda body.
        acc: BlockId,
    },
    /// `app = λ(x,y). x = y`, `acc = or`: the `member` scan. Fully
    /// arithmetic — the result is a binary search.
    Member,
    /// `app = identity`, `acc = λ(x,y). insert(x, y)`: the `union`
    /// insert-fold. One bulk sorted merge (`SetRepr::merge_union`).
    Union,
    /// Arbitrary `app`, `acc = λ(x,y). insert(x, y)`: map-style folds. The
    /// accumulator lambda is emulated arithmetically; inserts land in a
    /// uniquely-held accumulator.
    InsertApp {
        /// Block of the `app` lambda body.
        app: BlockId,
    },
    /// Arbitrary `app` producing `[value, flag]` pairs,
    /// `acc = λ(p,y). if sel_ci(p) then insert(sel_vi(p), y) else y` (or the
    /// negated form): `select`/`difference`-style filters.
    Filter {
        /// Block of the `app` lambda body.
        app: BlockId,
        /// True when the insert happens on a true flag (`select`); false for
        /// the negated `difference` form.
        keep_on_true: bool,
        /// 1-based component holding the flag.
        cond_index: usize,
        /// 1-based component holding the inserted value.
        value_index: usize,
    },
    /// Arbitrary `app`, `acc = or`/`and`: quantifier folds
    /// (`forall`/`forsome`/`subset`).
    BoolAcc {
        /// Block of the `app` lambda body.
        app: BlockId,
        /// True for `or`, false for `and`.
        is_or: bool,
    },
    /// Arbitrary `app` producing `[value, flag]` pairs,
    /// `acc = λ(p,y). if sel_ci(p) then sel_vi(p) else y`: scan folds that
    /// keep the last matching value (the TM simulator's `read_cell`).
    Scan {
        /// Block of the `app` lambda body.
        app: BlockId,
        /// 1-based component holding the flag.
        cond_index: usize,
        /// 1-based component holding the replacement value.
        value_index: usize,
    },
    /// Arbitrary `app`; `acc` body built only from `insert`s into the
    /// accumulator parameter (through `if`/`let`): runs both blocks but
    /// tracks the accumulator weight by the spine inserts' novel weights
    /// instead of re-walking the accumulator per iteration.
    Monotone {
        /// Block of the `app` lambda body.
        app: BlockId,
        /// Block of the `acc` lambda body (spine inserts marked).
        acc: BlockId,
    },
}

impl ReduceKind {
    /// Short lowercase label naming the fold strategy (`generic`, `member`,
    /// `union`, `insert-app`, `filter`, `bool-acc`, `scan`, `monotone`) for
    /// diagnostics and the `srl analyze` report.
    pub fn label(&self) -> &'static str {
        match self {
            ReduceKind::Generic { .. } => "generic",
            ReduceKind::Member => "member",
            ReduceKind::Union => "union",
            ReduceKind::InsertApp { .. } => "insert-app",
            ReduceKind::Filter { .. } => "filter",
            ReduceKind::BoolAcc { .. } => "bool-acc",
            ReduceKind::Scan { .. } => "scan",
            ReduceKind::Monotone { .. } => "monotone",
        }
    }
}

/// A straight-line instruction sequence with a result register.
#[derive(Clone, Debug)]
pub struct Block {
    code: Vec<Insn>,
    result: Reg,
}

impl Block {
    /// The instructions.
    pub fn code(&self) -> &[Insn] {
        &self.code
    }

    /// The register holding the block's result after execution.
    pub fn result(&self) -> Reg {
        self.result
    }
}

/// The compiled form of one definition within a program chunk.
#[derive(Clone, Copy, Debug)]
pub struct DefCode {
    /// The definition body's block.
    pub block: BlockId,
    /// Registers in the definition's frame (parameters + lexical slots +
    /// temporaries).
    pub frame_size: u16,
}

/// A compiled unit: the blocks of either a whole program (one entry per
/// definition) or a stand-alone lowered expression (a `main` block whose
/// calls resolve through the program chunk).
#[derive(Clone, Debug, Default)]
pub struct Chunk {
    blocks: Vec<Block>,
    consts: Vec<Value>,
    nats: Vec<BigNat>,
    names: Vec<String>,
    defs: Vec<DefCode>,
    main: BlockId,
    main_frame: u16,
}

impl Chunk {
    /// The blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Resolves a block id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id as usize]
    }

    /// The constant table.
    pub fn consts(&self) -> &[Value] {
        &self.consts
    }

    /// The natural-number constant table.
    pub fn nats(&self) -> &[BigNat] {
        &self.nats
    }

    /// The name table (unbound-variable / unknown-call spellings).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-definition entry points (program chunks; empty for expression
    /// chunks, whose calls resolve through the program chunk).
    pub fn defs(&self) -> &[DefCode] {
        &self.defs
    }

    /// The root block of an expression chunk.
    pub fn main(&self) -> BlockId {
        self.main
    }

    /// Frame size of an expression chunk's root block.
    pub fn main_frame(&self) -> u16 {
        self.main_frame
    }
}

/// Compiles every definition body of an already-lowered program.
pub(crate) fn codegen_program(program: &CompiledProgram) -> Chunk {
    let mut cg = Codegen {
        program,
        nodes: program.nodes(),
        summaries: DefSummaries::compute(program),
        chunk: Chunk::default(),
        tier_env: Vec::new(),
        tier_memo: ReturnMemo::default(),
    };
    for def in program.defs() {
        let arity = def.params.len() as u16;
        cg.tier_env = def.param_types.clone();
        let (block, frame_size) = cg.gen_frame(def.body, arity);
        cg.chunk.defs.push(DefCode { block, frame_size });
    }
    cg.chunk
}

/// Compiles a stand-alone lowered expression against its program (whose
/// chunk resolves the calls at run time).
pub(crate) fn codegen_expr(program: &CompiledProgram, lowered: &LoweredExpr) -> Chunk {
    let mut cg = Codegen {
        program,
        nodes: lowered.nodes(),
        summaries: DefSummaries::compute(program),
        chunk: Chunk::default(),
        // Expression scopes bind run-time environment values whose shapes
        // are unknown statically; the adaptive tier still applies.
        tier_env: vec![None; lowered.scope_names().len()],
        tier_memo: ReturnMemo::default(),
    };
    let (main, main_frame) = cg.gen_frame(lowered.root(), lowered.scope_names().len() as u16);
    cg.chunk.main = main;
    cg.chunk.main_frame = main_frame;
    cg.chunk
}

/// Register bookkeeping for one frame: lexical slots grow from 0 (mirroring
/// the lowering's scope stack), temporaries stack-allocate above the frame's
/// maximum lexical height.
struct FrameState {
    height: u16,
    next_temp: u16,
    frame_size: u16,
}

impl FrameState {
    fn alloc(&mut self) -> Reg {
        self.alloc_n(1)
    }

    /// Allocates `n` contiguous temporaries. Frames are `u16`-indexed, so a
    /// pathological program needing more than 65 535 registers in one frame
    /// is rejected loudly here (in every build profile) rather than wrapping
    /// into aliased registers — the tree-walk backend has no such bound, so
    /// silent wrap-around would break the backend-equivalence contract.
    fn alloc_n(&mut self, n: usize) -> Reg {
        let r = self.next_temp;
        let next = (r as usize).checked_add(n);
        self.next_temp = match next {
            Some(next) if next <= u16::MAX as usize => next as u16,
            _ => panic!(
                "bytecode codegen: frame exceeds {} registers (program too wide for the VM backend)",
                u16::MAX
            ),
        };
        self.frame_size = self.frame_size.max(self.next_temp);
        r
    }

    fn free(&mut self, n: usize) {
        self.next_temp -= n as u16;
    }
}

struct Codegen<'a> {
    program: &'a CompiledProgram,
    nodes: &'a [LExpr],
    summaries: DefSummaries,
    chunk: Chunk,
    /// Statically-inferred shapes of the lexical slots currently in scope,
    /// indexed like [`LExpr::Local`] (length tracks `FrameState::height`):
    /// parameters from the declared types, `let` bindings and lambda
    /// parameters from inference. Feeds the [`SetTier`] stamps.
    tier_env: Vec<Option<Type>>,
    /// Memoized callee return shapes shared across the whole codegen run.
    tier_memo: ReturnMemo,
}

/// The recognized `app` lambda shapes.
enum AppShape {
    Identity,
    EqXY,
    Other,
}

/// The recognized `acc` lambda shapes.
enum AccShape {
    InsertXY,
    OrXY,
    AndXY,
    Filter {
        keep_on_true: bool,
        cond_index: usize,
        value_index: usize,
    },
    Scan {
        cond_index: usize,
        value_index: usize,
    },
    Monotone,
    CallSpine {
        via: u32,
    },
    Other(SpineBlock),
}

impl<'a> Codegen<'a> {
    fn node(&self, id: LId) -> &'a LExpr {
        &self.nodes[id.index()]
    }

    fn push_block(&mut self, code: Vec<Insn>, result: Reg) -> BlockId {
        self.chunk.blocks.push(Block { code, result });
        (self.chunk.blocks.len() - 1) as BlockId
    }

    fn intern_const(&mut self, v: Value) -> u32 {
        self.chunk.consts.push(v);
        (self.chunk.consts.len() - 1) as u32
    }

    fn intern_nat(&mut self, n: BigNat) -> u32 {
        self.chunk.nats.push(n);
        (self.chunk.nats.len() - 1) as u32
    }

    fn intern_name(&mut self, s: &str) -> u32 {
        if let Some(i) = self.chunk.names.iter().position(|n| n == s) {
            return i as u32;
        }
        self.chunk.names.push(s.to_string());
        (self.chunk.names.len() - 1) as u32
    }

    /// Compiles a frame root (definition body or expression root) into its
    /// own block; returns the block and the frame size.
    fn gen_frame(&mut self, root: LId, base_height: u16) -> (BlockId, u16) {
        let max_h = max_lexical_height(self.nodes, root, base_height);
        let mut fs = FrameState {
            height: base_height,
            next_temp: max_h,
            frame_size: max_h,
        };
        let mut code = Vec::new();
        let result = fs.alloc();
        self.gen(&mut fs, &mut code, 0, root, 0, result, true, false);
        fs.free(1);
        let id = self.push_block(code, result);
        (id, fs.frame_size.max(1))
    }

    /// Compiles a reduce-lambda body into its own block sharing the frame.
    /// `spine` marks the accumulator spine of a monotone fold; `ptys` are
    /// the statically-inferred shapes of the lambda's two parameters (they
    /// occupy the next two lexical slots, so the tier env mirrors them).
    fn gen_lambda_block(
        &mut self,
        fs: &mut FrameState,
        lambda: &LLambda,
        spine: bool,
        ptys: [Option<Type>; 2],
    ) -> BlockId {
        let floor = fs.height;
        fs.height += 2;
        debug_assert_eq!(self.tier_env.len() + 2, fs.height as usize);
        let [xt, yt] = ptys;
        self.tier_env.push(xt);
        self.tier_env.push(yt);
        let result = fs.alloc();
        let mut code = Vec::new();
        self.gen(fs, &mut code, floor, lambda.body, 0, result, true, spine);
        fs.free(1);
        self.tier_env.pop();
        self.tier_env.pop();
        fs.height -= 2;
        self.push_block(code, result)
    }

    /// Shape inference for one node under the current lexical tier env.
    fn shape_of(&mut self, id: LId) -> Option<Type> {
        ShapeCtx::new(self.program, self.nodes).infer(id, &mut self.tier_env, &mut self.tier_memo)
    }

    /// The main codegen recursion. Emits instructions computing node `id`
    /// (whose static depth offset is `d`) into register `dst`.
    ///
    /// `floor` is the lowest frame slot owned by the enclosing block: takes
    /// below it would destroy state that outlives the block (an enclosing
    /// frame slot read by later loop iterations). `tail` means nothing in
    /// this block executes after this node, so a `Local` at or above the
    /// floor may be moved out of its slot. `spine` marks the accumulator
    /// spine of a monotone fold (see [`ReduceKind::Monotone`]).
    #[allow(clippy::too_many_arguments)]
    fn gen(
        &mut self,
        fs: &mut FrameState,
        code: &mut Vec<Insn>,
        floor: u16,
        id: LId,
        d: u32,
        dst: Reg,
        tail: bool,
        spine: bool,
    ) {
        match self.node(id) {
            LExpr::Bool(b) => code.push(Insn::LoadBool {
                dst,
                value: *b,
                depth: d,
            }),
            LExpr::Const(v) => {
                let index = self.intern_const(v.clone());
                code.push(Insn::LoadConst {
                    dst,
                    index,
                    depth: d,
                });
            }
            LExpr::Local(slot) => {
                let src = *slot as Reg;
                if tail && src >= floor {
                    code.push(Insn::Take { dst, src, depth: d });
                } else {
                    code.push(Insn::Copy { dst, src, depth: d });
                }
            }
            LExpr::UnboundVar(name) => {
                let name = self.intern_name(name);
                code.push(Insn::FailUnbound { name, depth: d });
            }
            LExpr::If(c, t, e) => {
                let rc = fs.alloc();
                self.gen(fs, code, floor, *c, d + 1, rc, false, false);
                fs.free(1);
                let branch_at = code.len();
                code.push(Insn::Branch {
                    cond: rc,
                    else_to: 0,
                    depth: d,
                });
                self.gen(fs, code, floor, *t, d + 1, dst, tail, spine);
                let jump_at = code.len();
                code.push(Insn::Jump { to: 0 });
                let else_to = code.len() as u32;
                if let Insn::Branch { else_to: slot, .. } = &mut code[branch_at] {
                    *slot = else_to;
                }
                self.gen(fs, code, floor, *e, d + 1, dst, tail, spine);
                let end = code.len() as u32;
                if let Insn::Jump { to } = &mut code[jump_at] {
                    *to = end;
                }
            }
            LExpr::Tuple(items) => {
                let start = fs.alloc_n(items.len());
                for (i, item) in items.iter().enumerate() {
                    self.gen(
                        fs,
                        code,
                        floor,
                        *item,
                        d + 1,
                        start + i as Reg,
                        false,
                        false,
                    );
                }
                code.push(Insn::MakeTuple {
                    dst,
                    start,
                    len: items.len() as u16,
                    depth: d,
                });
                fs.free(items.len());
            }
            LExpr::Sel(index, e) => {
                let op = self.classify_operand(fs, code, floor, *e, d);
                code.push(Insn::Sel {
                    dst,
                    index: *index,
                    op,
                    depth: d,
                });
                if let Operand::Temp(_) = op {
                    fs.free(1);
                }
            }
            LExpr::Eq(a, b) => self.gen_cmp(fs, code, floor, *a, *b, false, d, dst),
            LExpr::Leq(a, b) => self.gen_cmp(fs, code, floor, *a, *b, true, d, dst),
            LExpr::EmptySet => code.push(Insn::LoadEmptySet { dst, depth: d }),
            LExpr::Insert(e, s) => {
                let elem = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, elem, false, false);
                let set = fs.alloc();
                self.gen(fs, code, floor, *s, d + 1, set, tail, spine);
                code.push(Insn::Insert {
                    dst,
                    elem,
                    set,
                    spine,
                    depth: d,
                });
                fs.free(2);
            }
            LExpr::Choose(e) => {
                let op = self.classify_operand(fs, code, floor, *e, d);
                code.push(Insn::Choose { dst, op, depth: d });
                if let Operand::Temp(_) = op {
                    fs.free(1);
                }
            }
            LExpr::Rest(e) => {
                let src = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, src, tail, false);
                code.push(Insn::Rest { dst, src, depth: d });
                fs.free(1);
            }
            LExpr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            } => {
                self.gen_reduce(
                    fs, code, floor, *set, app, acc, *base, *extra, d, dst, false,
                );
            }
            LExpr::ListReduce {
                list,
                app,
                acc,
                base,
                extra,
            } => {
                code.push(Insn::Guard {
                    op: DialectOp::Lists,
                    name: "list-reduce",
                    depth: d,
                });
                self.gen_reduce(
                    fs, code, floor, *list, app, acc, *base, *extra, d, dst, true,
                );
            }
            LExpr::Call { def, args } => {
                let callee = &self.program.defs()[*def as usize];
                if callee.params.len() != args.len() {
                    code.push(Insn::FailArity {
                        def: *def,
                        nargs: args.len() as u16,
                        depth: d,
                    });
                    return;
                }
                let base = fs.alloc_n(args.len());
                for (i, a) in args.iter().enumerate() {
                    // Only the final argument may move values out of frame
                    // slots: earlier arguments' subtrees run before later
                    // ones that could still read the same slot.
                    let arg_tail = tail && i + 1 == args.len();
                    self.gen(fs, code, floor, *a, d + 1, base + i as Reg, arg_tail, false);
                }
                code.push(Insn::Call {
                    dst,
                    def: *def,
                    args: base,
                    nargs: args.len() as u16,
                    depth: d,
                });
                fs.free(args.len());
            }
            LExpr::CallUnknown(name) => {
                let name = self.intern_name(name);
                code.push(Insn::FailUnknownCall { name, depth: d });
            }
            LExpr::Let { value, body } => {
                code.push(Insn::Bump { depth: d });
                let slot = fs.height;
                debug_assert!(slot < fs.next_temp, "let slot below the temp base");
                self.gen(fs, code, floor, *value, d + 1, slot, false, false);
                let vt = self.shape_of(*value);
                self.tier_env.push(vt);
                fs.height += 1;
                self.gen(fs, code, floor, *body, d + 1, dst, tail, spine);
                fs.height -= 1;
                self.tier_env.pop();
            }
            LExpr::New(e) => {
                code.push(Insn::Guard {
                    op: DialectOp::New,
                    name: "new",
                    depth: d,
                });
                let src = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, src, tail, false);
                code.push(Insn::New { dst, src });
                fs.free(1);
            }
            LExpr::NatConst(n) => {
                let index = self.intern_nat(n.clone());
                code.push(Insn::LoadNat {
                    dst,
                    index,
                    depth: d,
                });
            }
            LExpr::Succ(e) => {
                code.push(Insn::Guard {
                    op: DialectOp::Nat,
                    name: "succ",
                    depth: d,
                });
                let src = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, src, tail, false);
                code.push(Insn::Succ { dst, src });
                fs.free(1);
            }
            LExpr::NatAdd(a, b) => {
                code.push(Insn::Guard {
                    op: DialectOp::NatAdd,
                    name: "nat addition",
                    depth: d,
                });
                self.gen_nat_binop(fs, code, floor, *a, *b, d, dst, "+", false);
            }
            LExpr::NatMul(a, b) => {
                code.push(Insn::Guard {
                    op: DialectOp::NatMul,
                    name: "nat multiplication",
                    depth: d,
                });
                self.gen_nat_binop(fs, code, floor, *a, *b, d, dst, "*", true);
            }
            LExpr::EmptyList => code.push(Insn::LoadEmptyList { dst, depth: d }),
            LExpr::Cons(e, l) => {
                code.push(Insn::Guard {
                    op: DialectOp::Lists,
                    name: "cons",
                    depth: d,
                });
                let elem = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, elem, false, false);
                let list = fs.alloc();
                self.gen(fs, code, floor, *l, d + 1, list, tail, false);
                code.push(Insn::Cons { dst, elem, list });
                fs.free(2);
            }
            LExpr::Head(e) => {
                code.push(Insn::Guard {
                    op: DialectOp::Lists,
                    name: "head",
                    depth: d,
                });
                let src = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, src, tail, false);
                code.push(Insn::Head { dst, src });
                fs.free(1);
            }
            LExpr::Tail(e) => {
                code.push(Insn::Guard {
                    op: DialectOp::Lists,
                    name: "tail",
                    depth: d,
                });
                let src = fs.alloc();
                self.gen(fs, code, floor, *e, d + 1, src, tail, false);
                code.push(Insn::Tail { dst, src });
                fs.free(1);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_nat_binop(
        &mut self,
        fs: &mut FrameState,
        code: &mut Vec<Insn>,
        floor: u16,
        a: LId,
        b: LId,
        d: u32,
        dst: Reg,
        op: &'static str,
        mul: bool,
    ) {
        let ra = fs.alloc();
        self.gen(fs, code, floor, a, d + 1, ra, false, false);
        // The tree-walk checks the first operand's shape before evaluating
        // the second.
        code.push(Insn::CheckNat { src: ra, op });
        let rb = fs.alloc();
        self.gen(fs, code, floor, b, d + 1, rb, false, false);
        code.push(if mul {
            Insn::NatMul { dst, a: ra, b: rb }
        } else {
            Insn::NatAdd { dst, a: ra, b: rb }
        });
        fs.free(2);
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_cmp(
        &mut self,
        fs: &mut FrameState,
        code: &mut Vec<Insn>,
        floor: u16,
        a: LId,
        b: LId,
        leq: bool,
        d: u32,
        dst: Reg,
    ) {
        // Fuse only when *both* operands are borrowable — a mixed form would
        // evaluate the temp side's code before the other side's fused steps,
        // reordering error positions across the two operands.
        let (a_op, b_op) = match (self.borrowable_operand(a), self.borrowable_operand(b)) {
            (Some(a_op), Some(b_op)) => {
                let a_op = self.realize_operand(a_op);
                let b_op = self.realize_operand(b_op);
                (a_op, b_op)
            }
            _ => {
                let ra = fs.alloc();
                self.gen(fs, code, floor, a, d + 1, ra, false, false);
                let rb = fs.alloc();
                self.gen(fs, code, floor, b, d + 1, rb, false, false);
                fs.free(2);
                (Operand::Temp(ra), Operand::Temp(rb))
            }
        };
        code.push(Insn::Cmp {
            dst,
            a: a_op,
            b: b_op,
            leq,
            depth: d,
        });
    }

    /// A pending fused operand (constants are interned on realization, so a
    /// half-matching comparison does not leak table entries).
    fn borrowable_operand(&self, id: LId) -> Option<PendingOperand<'a>> {
        match self.node(id) {
            LExpr::Local(slot) => Some(PendingOperand::Slot(*slot as Reg)),
            LExpr::Sel(index, e) => match self.node(*e) {
                LExpr::Local(slot) => Some(PendingOperand::SlotSel(*slot as Reg, *index)),
                _ => None,
            },
            LExpr::Const(v) => Some(PendingOperand::Const(v)),
            LExpr::Bool(b) => Some(PendingOperand::Bool(*b)),
            _ => None,
        }
    }

    fn realize_operand(&mut self, p: PendingOperand<'a>) -> Operand {
        match p {
            PendingOperand::Slot(r) => Operand::Slot(r),
            PendingOperand::SlotSel(r, i) => Operand::SlotSel(r, i),
            PendingOperand::Const(v) => Operand::Const(self.intern_const(v.clone())),
            PendingOperand::Bool(b) => Operand::Const(self.intern_const(Value::Bool(b))),
        }
    }

    /// Emits the operand of a `sel`/`choose`: borrowed when it is a frame
    /// slot (the tree-walk peephole), computed otherwise. The caller frees
    /// the temp when one was allocated.
    fn classify_operand(
        &mut self,
        fs: &mut FrameState,
        code: &mut Vec<Insn>,
        floor: u16,
        e: LId,
        d: u32,
    ) -> Operand {
        match self.node(e) {
            LExpr::Local(slot) => Operand::Slot(*slot as Reg),
            _ => {
                let r = fs.alloc();
                self.gen(fs, code, floor, e, d + 1, r, false, false);
                Operand::Temp(r)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_reduce(
        &mut self,
        fs: &mut FrameState,
        code: &mut Vec<Insn>,
        floor: u16,
        set: LId,
        app: &LLambda,
        acc: &LLambda,
        base: LId,
        extra: LId,
        d: u32,
        dst: Reg,
        is_list: bool,
    ) {
        let rset = fs.alloc();
        self.gen(fs, code, floor, set, d + 1, rset, false, false);
        let rbase = fs.alloc();
        self.gen(fs, code, floor, base, d + 1, rbase, false, false);
        let rextra = fs.alloc();
        self.gen(fs, code, floor, extra, d + 1, rextra, false, false);
        let x_slot = fs.height;
        // Static tier selection: prove the traversed set's and the fold
        // result's shapes before compiling the lambda blocks, so the lambda
        // parameters carry their inferred shapes into any nested folds.
        let ctx = ShapeCtx::new(self.program, self.nodes);
        let set_ty = if is_list { None } else { self.shape_of(set) };
        let extra_ty = self.shape_of(extra);
        let elem_ty = ShapeCtx::elem_of(set_ty.as_ref());
        let app_ty = ctx.app_result(
            elem_ty.clone(),
            extra_ty.clone(),
            app,
            &mut self.tier_env,
            &mut self.tier_memo,
        );
        let result_ty = ctx.reduce_result(
            set_ty.as_ref(),
            app,
            acc,
            base,
            extra,
            &mut self.tier_env,
            &mut self.tier_memo,
        );
        let tier = SetTier::of(set_ty.as_ref());
        let acc_tier = if is_list {
            SetTier::Generic
        } else {
            SetTier::of(result_ty.as_ref())
        };
        let app_ptys = [elem_ty, extra_ty];
        let acc_ptys = [app_ty, result_ty];
        let (kind, origin) = if is_list {
            // List folds are rare (LRL experiments only); generic execution
            // keeps duplicates/stored-order semantics in one code path.
            (
                ReduceKind::Generic {
                    app: self.gen_lambda_block(fs, app, false, app_ptys),
                    acc: self.gen_lambda_block(fs, acc, false, acc_ptys),
                },
                FoldOrigin::List,
            )
        } else {
            self.fuse_set_fold(fs, app, acc, x_slot, app_ptys, acc_ptys)
        };
        let class = FoldClass::with_origin(&kind, is_list, &origin);
        let unit_cost = self.unit_cost(&kind);
        code.push(Insn::Reduce(Box::new(ReduceInsn {
            dst,
            set: rset,
            base: rbase,
            extra: rextra,
            x_slot,
            depth: d,
            is_list,
            class,
            origin,
            unit_cost,
            tier,
            acc_tier,
            kind,
        })));
        fs.free(3);
    }

    /// Static per-iteration work estimate of a fold: the weighted
    /// instruction count of the lambda blocks it runs per element. A nested
    /// reduce or a call hides an unknown amount of work behind one
    /// instruction, so both weigh far more than a plain instruction —
    /// enough that e.g. a `select` whose predicate quantifies over a second
    /// relation shards even at modest cardinalities.
    fn unit_cost(&self, kind: &ReduceKind) -> u32 {
        const BASE: u32 = 4; // the fused accumulator arithmetic per element
        match kind {
            ReduceKind::Member | ReduceKind::Union => 0,
            ReduceKind::InsertApp { app }
            | ReduceKind::Filter { app, .. }
            | ReduceKind::BoolAcc { app, .. }
            | ReduceKind::Scan { app, .. } => BASE.saturating_add(self.block_cost(*app)),
            ReduceKind::Monotone { app, acc } | ReduceKind::Generic { app, acc } => BASE
                .saturating_add(self.block_cost(*app))
                .saturating_add(self.block_cost(*acc)),
        }
    }

    /// Weighted instruction count of one block (no recursion into callee or
    /// nested-fold blocks; their weight constants stand in for it).
    fn block_cost(&self, id: BlockId) -> u32 {
        self.chunk
            .block(id)
            .code()
            .iter()
            .map(|insn| match insn {
                Insn::Reduce(_) => 256u32,
                Insn::Call { .. } => 64,
                _ => 1,
            })
            .fold(0u32, u32::saturating_add)
    }

    /// Matches the fold lambdas against the fused shapes (module docs) and
    /// records where the classification came from.
    #[allow(clippy::too_many_arguments)]
    fn fuse_set_fold(
        &mut self,
        fs: &mut FrameState,
        app: &LLambda,
        acc: &LLambda,
        x: u16,
        app_ptys: [Option<Type>; 2],
        acc_ptys: [Option<Type>; 2],
    ) -> (ReduceKind, FoldOrigin) {
        let y = x + 1;
        let app_shape = self.app_shape(app.body, x, y);
        let acc_shape = self.acc_shape(acc.body, x, y);
        let kind = match (app_shape, acc_shape) {
            (AppShape::EqXY, AccShape::OrXY) => ReduceKind::Member,
            (AppShape::Identity, AccShape::InsertXY) => ReduceKind::Union,
            (_, AccShape::InsertXY) => ReduceKind::InsertApp {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
            },
            (
                _,
                AccShape::Filter {
                    keep_on_true,
                    cond_index,
                    value_index,
                },
            ) => ReduceKind::Filter {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
                keep_on_true,
                cond_index,
                value_index,
            },
            (
                _,
                AccShape::Scan {
                    cond_index,
                    value_index,
                },
            ) => ReduceKind::Scan {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
                cond_index,
                value_index,
            },
            (_, AccShape::OrXY) => ReduceKind::BoolAcc {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
                is_or: true,
            },
            (_, AccShape::AndXY) => ReduceKind::BoolAcc {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
                is_or: false,
            },
            (_, AccShape::Monotone) => ReduceKind::Monotone {
                app: self.gen_lambda_block(fs, app, false, app_ptys),
                acc: self.gen_lambda_block(fs, acc, true, acc_ptys),
            },
            // A call-threaded spine stays `Generic`, not `Monotone`: the
            // spine inserts live in callee blocks (compiled once per
            // definition, shared by every caller), so they cannot carry the
            // Monotone kind's spine marking and the per-iteration weight
            // walk must stay. The summary upgrades the *class* instead,
            // which is what gates sharding.
            (_, AccShape::CallSpine { via }) => {
                let kind = ReduceKind::Generic {
                    app: self.gen_lambda_block(fs, app, false, app_ptys),
                    acc: self.gen_lambda_block(fs, acc, false, acc_ptys),
                };
                return (kind, FoldOrigin::SummarySpine { via });
            }
            (_, AccShape::Other(block)) => {
                let kind = ReduceKind::Generic {
                    app: self.gen_lambda_block(fs, app, false, app_ptys),
                    acc: self.gen_lambda_block(fs, acc, false, acc_ptys),
                };
                return (kind, FoldOrigin::Unproven(block));
            }
        };
        (kind, FoldOrigin::Shape)
    }

    fn is_local(&self, id: LId, slot: u16) -> bool {
        matches!(self.node(id), LExpr::Local(s) if *s == slot as u32)
    }

    fn app_shape(&self, body: LId, x: u16, y: u16) -> AppShape {
        match self.node(body) {
            LExpr::Local(s) if *s == x as u32 => AppShape::Identity,
            LExpr::Eq(a, b)
                if (self.is_local(*a, x) && self.is_local(*b, y))
                    || (self.is_local(*a, y) && self.is_local(*b, x)) =>
            {
                // Value equality is symmetric and both orders charge the
                // same two slot-read steps.
                AppShape::EqXY
            }
            _ => AppShape::Other,
        }
    }

    fn acc_shape(&self, body: LId, x: u16, y: u16) -> AccShape {
        match self.node(body) {
            LExpr::Insert(e, s) if self.is_local(*e, x) && self.is_local(*s, y) => {
                AccShape::InsertXY
            }
            LExpr::If(c, t, e) => {
                // or(x, y) = if x then true else y; and(x, y) = if x then y
                // else false (the dsl's desugarings).
                if self.is_local(*c, x) {
                    if matches!(self.node(*t), LExpr::Bool(true)) && self.is_local(*e, y) {
                        return AccShape::OrXY;
                    }
                    if self.is_local(*t, y) && matches!(self.node(*e), LExpr::Bool(false)) {
                        return AccShape::AndXY;
                    }
                }
                // Pair-driven filters and scans: the condition is a selector
                // on the applied pair.
                if let LExpr::Sel(ci, cp) = self.node(*c) {
                    if self.is_local(*cp, x) {
                        if let Some(vi) = self.sel_of_x(*t, x) {
                            if self.is_local(*e, y) {
                                return AccShape::Scan {
                                    cond_index: *ci,
                                    value_index: vi,
                                };
                            }
                        }
                        if let Some(vi) = self.insert_sel_of_x_into_y(*t, x, y) {
                            if self.is_local(*e, y) {
                                return AccShape::Filter {
                                    keep_on_true: true,
                                    cond_index: *ci,
                                    value_index: vi,
                                };
                            }
                        }
                        if self.is_local(*t, y) {
                            if let Some(vi) = self.insert_sel_of_x_into_y(*e, x, y) {
                                return AccShape::Filter {
                                    keep_on_true: false,
                                    cond_index: *ci,
                                    value_index: vi,
                                };
                            }
                        }
                    }
                }
                self.spine_shape(body, y)
            }
            _ => self.spine_shape(body, y),
        }
    }

    /// The spine verdict for an unfused accumulator body: a purely local
    /// spine keeps the fused [`ReduceKind::Monotone`] path (inserts marked,
    /// weight tracked by novel-insert deltas — the proof codegen already
    /// trusted intraprocedurally), a call-threaded spine records the callee
    /// whose summary carries the proof, and anything else records the first
    /// obstacle for diagnostics.
    fn spine_shape(&self, body: LId, y: u16) -> AccShape {
        match analysis::spine_verdict(self.program, &self.summaries, self.nodes, body, y) {
            Ok(None) => AccShape::Monotone,
            Ok(Some(via)) => AccShape::CallSpine { via },
            Err(block) => AccShape::Other(block),
        }
    }

    /// `sel_i(x)` → `Some(i)`.
    fn sel_of_x(&self, id: LId, x: u16) -> Option<usize> {
        match self.node(id) {
            LExpr::Sel(i, e) if self.is_local(*e, x) => Some(*i),
            _ => None,
        }
    }

    /// `insert(sel_i(x), y)` → `Some(i)`.
    fn insert_sel_of_x_into_y(&self, id: LId, x: u16, y: u16) -> Option<usize> {
        match self.node(id) {
            LExpr::Insert(e, s) if self.is_local(*s, y) => self.sel_of_x(*e, x),
            _ => None,
        }
    }
}

enum PendingOperand<'a> {
    Slot(Reg),
    SlotSel(Reg, usize),
    Const(&'a Value),
    Bool(bool),
}

/// Whether the subtree at `id` reads frame slot `slot`. Slot indices are
/// absolute within the frame, so nested binders (which only add higher
/// slots) need no scope bookkeeping. Shared with [`crate::analysis`], whose
/// spine walk uses the same absolute-slot discipline.
pub(crate) fn reads_slot(nodes: &[LExpr], id: LId, slot: u16) -> bool {
    let node = &nodes[id.index()];
    match node {
        LExpr::Local(s) => *s == slot as u32,
        LExpr::Bool(_)
        | LExpr::Const(_)
        | LExpr::UnboundVar(_)
        | LExpr::EmptySet
        | LExpr::EmptyList
        | LExpr::NatConst(_)
        | LExpr::CallUnknown(_) => false,
        LExpr::If(a, b, c) => {
            reads_slot(nodes, *a, slot)
                || reads_slot(nodes, *b, slot)
                || reads_slot(nodes, *c, slot)
        }
        LExpr::Tuple(items) => items.iter().any(|i| reads_slot(nodes, *i, slot)),
        LExpr::Sel(_, e)
        | LExpr::Choose(e)
        | LExpr::Rest(e)
        | LExpr::New(e)
        | LExpr::Succ(e)
        | LExpr::Head(e)
        | LExpr::Tail(e) => reads_slot(nodes, *e, slot),
        LExpr::Eq(a, b)
        | LExpr::Leq(a, b)
        | LExpr::Insert(a, b)
        | LExpr::NatAdd(a, b)
        | LExpr::NatMul(a, b)
        | LExpr::Cons(a, b) => reads_slot(nodes, *a, slot) || reads_slot(nodes, *b, slot),
        LExpr::SetReduce {
            set,
            app,
            acc,
            base,
            extra,
        } => {
            reads_slot(nodes, *set, slot)
                || reads_slot(nodes, app.body, slot)
                || reads_slot(nodes, acc.body, slot)
                || reads_slot(nodes, *base, slot)
                || reads_slot(nodes, *extra, slot)
        }
        LExpr::ListReduce {
            list,
            app,
            acc,
            base,
            extra,
        } => {
            reads_slot(nodes, *list, slot)
                || reads_slot(nodes, app.body, slot)
                || reads_slot(nodes, acc.body, slot)
                || reads_slot(nodes, *base, slot)
                || reads_slot(nodes, *extra, slot)
        }
        LExpr::Call { args, .. } => args.iter().any(|a| reads_slot(nodes, *a, slot)),
        LExpr::Let { value, body } => {
            reads_slot(nodes, *value, slot) || reads_slot(nodes, *body, slot)
        }
    }
}

/// Grows a lexical height, rejecting (loudly, in every build profile) the
/// pathological programs whose binder nesting would overflow the `u16`
/// register space — see [`FrameState::alloc_n`].
fn deeper(h: u16, by: u16) -> u16 {
    h.checked_add(by).unwrap_or_else(|| {
        panic!(
            "bytecode codegen: binder nesting exceeds {} frame slots (program too deep for the VM backend)",
            u16::MAX
        )
    })
}

/// The deepest lexical slot index any descendant of `id` can occupy, given
/// the node itself sits at height `h` — the boundary between slot registers
/// and temporaries.
fn max_lexical_height(nodes: &[LExpr], id: LId, h: u16) -> u16 {
    let node = &nodes[id.index()];
    match node {
        LExpr::Bool(_)
        | LExpr::Const(_)
        | LExpr::Local(_)
        | LExpr::UnboundVar(_)
        | LExpr::EmptySet
        | LExpr::EmptyList
        | LExpr::NatConst(_)
        | LExpr::CallUnknown(_) => h,
        LExpr::If(a, b, c) => max_lexical_height(nodes, *a, h)
            .max(max_lexical_height(nodes, *b, h))
            .max(max_lexical_height(nodes, *c, h)),
        LExpr::Tuple(items) => items
            .iter()
            .map(|i| max_lexical_height(nodes, *i, h))
            .max()
            .unwrap_or(h),
        LExpr::Sel(_, e)
        | LExpr::Choose(e)
        | LExpr::Rest(e)
        | LExpr::New(e)
        | LExpr::Succ(e)
        | LExpr::Head(e)
        | LExpr::Tail(e) => max_lexical_height(nodes, *e, h),
        LExpr::Eq(a, b)
        | LExpr::Leq(a, b)
        | LExpr::Insert(a, b)
        | LExpr::NatAdd(a, b)
        | LExpr::NatMul(a, b)
        | LExpr::Cons(a, b) => {
            max_lexical_height(nodes, *a, h).max(max_lexical_height(nodes, *b, h))
        }
        LExpr::SetReduce {
            set,
            app,
            acc,
            base,
            extra,
        }
        | LExpr::ListReduce {
            list: set,
            app,
            acc,
            base,
            extra,
        } => max_lexical_height(nodes, *set, h)
            .max(max_lexical_height(nodes, *base, h))
            .max(max_lexical_height(nodes, *extra, h))
            .max(max_lexical_height(nodes, app.body, deeper(h, 2)))
            .max(max_lexical_height(nodes, acc.body, deeper(h, 2))),
        LExpr::Call { args, .. } => args
            .iter()
            .map(|a| max_lexical_height(nodes, *a, h))
            .max()
            .unwrap_or(h),
        LExpr::Let { value, body } => {
            max_lexical_height(nodes, *value, h).max(max_lexical_height(nodes, *body, deeper(h, 1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Lambda;
    use crate::dsl::*;
    use crate::program::Program;

    fn expr_chunk(e: &crate::ast::Expr, scope: &[&str]) -> (CompiledProgram, Chunk) {
        let p = Program::srl();
        let c = CompiledProgram::compile(&p);
        let lowered = c.lower_expr(e, scope);
        let chunk = codegen_expr(&c, &lowered);
        (c, chunk)
    }

    fn main_kind(chunk: &Chunk) -> &ReduceKind {
        &main_reduce(chunk).kind
    }

    fn main_reduce(chunk: &Chunk) -> &ReduceInsn {
        block_reduce(chunk, chunk.main())
    }

    fn block_reduce(chunk: &Chunk, block: BlockId) -> &ReduceInsn {
        match chunk.block(block).code().last() {
            Some(Insn::Reduce(r)) => r,
            other => panic!("block does not end in a reduce: {other:?}"),
        }
    }

    #[test]
    fn union_fold_fuses_to_the_merge_superinstruction() {
        let e = set_reduce(
            var("A"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            var("B"),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["A", "B"]);
        assert!(matches!(main_kind(&chunk), ReduceKind::Union));
    }

    #[test]
    fn member_fold_fuses_to_binary_search() {
        let e = set_reduce(
            var("S"),
            lam("x", "t", eq(var("x"), var("t"))),
            lam("h", "acc", or(var("h"), var("acc"))),
            bool_(false),
            var("target"),
        );
        let (_, chunk) = expr_chunk(&e, &["S", "target"]);
        assert!(matches!(main_kind(&chunk), ReduceKind::Member));
    }

    #[test]
    fn select_fold_fuses_to_filter() {
        let e = set_reduce(
            var("S"),
            lam("t", "e", tuple([var("t"), eq(sel(var("t"), 2), atom(5))])),
            lam(
                "p",
                "acc",
                if_(
                    sel(var("p"), 2),
                    insert(sel(var("p"), 1), var("acc")),
                    var("acc"),
                ),
            ),
            empty_set(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        match main_kind(&chunk) {
            ReduceKind::Filter {
                keep_on_true,
                cond_index,
                value_index,
                ..
            } => {
                assert!(*keep_on_true);
                assert_eq!((*cond_index, *value_index), (2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_fold_fuses_to_insert_app_and_quantifier_to_bool_acc() {
        let e = set_reduce(
            var("S"),
            lam("x", "e", tuple([var("x"), var("x")])),
            lam("o", "acc", insert(var("o"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        assert!(matches!(main_kind(&chunk), ReduceKind::InsertApp { .. }));
        let e = set_reduce(
            var("S"),
            lam("x", "e", leq(atom(0), var("x"))),
            lam("ok", "acc", and(var("ok"), var("acc"))),
            bool_(true),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        assert!(matches!(
            main_kind(&chunk),
            ReduceKind::BoolAcc { is_or: false, .. }
        ));
    }

    #[test]
    fn branching_insert_fold_is_monotone() {
        // write_cell's shape: both branches insert into the accumulator.
        let e = set_reduce(
            var("T"),
            Lambda::identity(),
            lam(
                "c",
                "acc",
                if_(
                    eq(sel(var("c"), 1), var("p")),
                    insert(tuple([var("p"), var("s")]), var("acc")),
                    insert(var("c"), var("acc")),
                ),
            ),
            empty_set(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["T", "p", "s"]);
        assert!(matches!(main_kind(&chunk), ReduceKind::Monotone { .. }));
    }

    #[test]
    fn fold_on_outer_state_stays_generic() {
        // The accumulator lambda inserts into an *enclosing* binding, not
        // its own accumulator parameter: no fusion, no takes of outer slots.
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("S"))),
            empty_set(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        match main_kind(&chunk) {
            ReduceKind::Generic { acc, .. } => {
                let block = chunk.block(*acc);
                assert!(
                    block
                        .code()
                        .iter()
                        .all(|i| !matches!(i, Insn::Take { src: 0, .. })),
                    "the enclosing slot S must be cloned, not moved: {:?}",
                    block.code()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_threaded_spine_fold_classifies_proper_hom() {
        // The powerset (Example 3.12): sift's inner fold threads its
        // accumulator through finsert — a call-threaded spine the
        // interprocedural summary proves, upgrading the Generic fold's
        // class. The outer fold passes its accumulator into sift's folded
        // set, which sift inspects: no proof, and the origin says why.
        let p = Program::srl()
            .define(
                "finsert",
                ["p", "T"],
                insert(
                    sel(var("p"), 1),
                    insert(insert(sel(var("p"), 2), sel(var("p"), 1)), var("T")),
                ),
            )
            .define(
                "sift",
                ["x", "T"],
                set_reduce(
                    var("T"),
                    lam("y", "e", tuple([var("y"), var("e")])),
                    lam("pair", "acc", call("finsert", [var("pair"), var("acc")])),
                    empty_set(),
                    var("x"),
                ),
            )
            .define(
                "powerset",
                ["S"],
                set_reduce(
                    var("S"),
                    lam("x", "y", var("x")),
                    lam("x", "T", call("sift", [var("x"), var("T")])),
                    insert(empty_set(), empty_set()),
                    empty_set(),
                ),
            );
        let c = p.compile();
        let chunk = codegen_program(&c);
        let finsert = c.def_id("finsert").unwrap();
        let sift = c.def_id("sift").unwrap();

        let inner = block_reduce(&chunk, chunk.defs()[sift as usize].block);
        assert!(matches!(inner.kind, ReduceKind::Generic { .. }));
        assert_eq!(inner.class, FoldClass::ProperHom);
        assert_eq!(inner.origin, FoldOrigin::SummarySpine { via: finsert });

        let pow = c.def_id("powerset").unwrap();
        let outer = block_reduce(&chunk, chunk.defs()[pow as usize].block);
        assert!(matches!(outer.kind, ReduceKind::Generic { .. }));
        assert_eq!(outer.class, FoldClass::Ordered);
        assert_eq!(
            outer.origin,
            FoldOrigin::Unproven(SpineBlock::CalleeNoSpine(sift))
        );
    }

    #[test]
    fn fold_origins_name_the_obstacle() {
        // A fused shape records Shape.
        let e = set_reduce(
            var("A"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            var("B"),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["A", "B"]);
        assert_eq!(main_reduce(&chunk).origin, FoldOrigin::Shape);

        // A combiner that consumes its accumulator (cons) is Inspected.
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            empty_list(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        let r = main_reduce(&chunk);
        assert_eq!(r.class, FoldClass::Ordered);
        assert_eq!(r.origin, FoldOrigin::Unproven(SpineBlock::Inspected));

        // A combiner that drops its accumulator is NotThreaded.
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("S"))),
            empty_set(),
            empty_set(),
        );
        let (_, chunk) = expr_chunk(&e, &["S"]);
        assert_eq!(
            main_reduce(&chunk).origin,
            FoldOrigin::Unproven(SpineBlock::NotThreaded)
        );

        // List folds record List and stay ordered.
        let e = list_reduce(
            var("L"),
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            empty_list(),
            empty_set(),
        );
        let p = Program::new(crate::dialect::Dialect::unrestricted());
        let c = p.compile();
        let lowered = c.lower_expr(&e, &["L"]);
        let chunk = codegen_expr(&c, &lowered);
        let r = main_reduce(&chunk);
        assert_eq!(r.class, FoldClass::Ordered);
        assert_eq!(r.origin, FoldOrigin::List);
    }

    #[test]
    fn comparisons_of_slots_selectors_and_constants_fuse() {
        let e = eq(sel(var("e"), 2), sel(var("d"), 1));
        let (_, chunk) = expr_chunk(&e, &["e", "d"]);
        let code = chunk.block(chunk.main()).code();
        assert_eq!(code.len(), 1, "{code:?}");
        assert!(matches!(
            code[0],
            Insn::Cmp {
                a: Operand::SlotSel(0, 2),
                b: Operand::SlotSel(1, 1),
                leq: false,
                ..
            }
        ));
        let e = leq(var("x"), atom(7));
        let (_, chunk) = expr_chunk(&e, &["x"]);
        let code = chunk.block(chunk.main()).code();
        assert!(matches!(
            code[0],
            Insn::Cmp {
                a: Operand::Slot(0),
                b: Operand::Const(0),
                leq: true,
                ..
            }
        ));
    }

    #[test]
    fn static_arity_mismatch_compiles_to_a_fail() {
        let p = Program::srl().define("pair", ["a", "b"], tuple([var("a"), var("b")]));
        let c = CompiledProgram::compile(&p);
        let lowered = c.lower_expr(&call("pair", [atom(1)]), &[]);
        let chunk = codegen_expr(&c, &lowered);
        let code = chunk.block(chunk.main()).code();
        assert!(matches!(code[0], Insn::FailArity { nargs: 1, .. }));
    }

    #[test]
    fn frames_reserve_slots_below_temps() {
        // let a = … in insert(a, {}) — the let slot is register 0 (below the
        // temp base), and the frame covers both.
        let e = let_in("a", atom(1), insert(var("a"), empty_set()));
        let (_, chunk) = expr_chunk(&e, &[]);
        assert!(chunk.main_frame() >= 2);
        let code = chunk.block(chunk.main()).code();
        assert!(matches!(code[0], Insn::Bump { depth: 0 }));
        assert!(matches!(code[1], Insn::LoadConst { dst: 0, .. }));
    }
}
