//! # machines — machine substrates for the SRL reproduction
//!
//! Independent, executable ground truths for the paper's simulation results:
//!
//! * [`tm`] — deterministic Turing machines with a read-only input tape and
//!   one work tape, plus a library of small DTIME(n) machines. These are the
//!   machines that Proposition 6.2's `Simulate()` expression (built in
//!   `srl-stdlib::tm_sim`) simulates; the runner here provides step-for-step
//!   ground truth.
//! * [`primrec`] — primitive recursive function terms (Definition 5.1) with a
//!   budgeted evaluator over arbitrary-precision naturals; the ground truth
//!   for Theorem 5.2 (`SRL + new` ≡ PrimRec).
//! * [`goedel`] — the Section 5 Gödel coding of finite sets as naturals and
//!   the number-level versions of `new`/`insert`/`choose`/`rest` used in the
//!   paper's proof of Theorem 5.2 (ii).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod goedel;
pub mod primrec;
pub mod tm;

pub use primrec::{PrError, PrTerm};
pub use tm::{Action, Configuration, Halt, Move, RunResult, Symbol, TuringMachine, BLANK};
