//! E1 — Lemma 3.6 / Theorem 3.10: APATH in SRL vs. the native solver and the
//! FO+LFP baseline, over growing alternating graphs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_stdlib::agap::{apath_program, names};
use workloads::altgraph::AlternatingGraph;

fn bench(c: &mut Criterion) {
    // Compiled once; the measured region is evaluation alone.
    let program = apath_program();
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e1_agap");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [4usize, 6, 8] {
        let g = AlternatingGraph::random(n, 0.25, 7 + n as u64);
        let args = [g.nodes_value(), g.edges_value(), g.ands_value()];
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_apath", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.call(names::APATH, &args).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_apath", n), &n, |b, _| {
            b.iter(|| g.apath_all())
        });
        let structure = fo_logic::Structure::from_alternating_graph(g.n, &g.edges, &g.universal);
        let sentence = fo_logic::formula::library::agap_sentence();
        group.bench_with_input(BenchmarkId::new("fo_lfp_agap", n), &n, |b, _| {
            b.iter(|| fo_logic::formula::eval_sentence(&structure, &sentence))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
