//! Finite logical structures (Section 3 of the paper).
//!
//! Inputs are coded as finite structures: the universe is `D = {0, …, n-1}`
//! with the standard ordering, a vocabulary `τ = (R₁^{a₁}, …, R_k^{a_k})` is
//! a tuple of relation symbols of fixed arities, and `STRUCT[τ]` is the set
//! of finite structures over it. This module provides the vocabulary and
//! structure types, constructors for the graph-shaped vocabularies the
//! experiments use, and the bridge to SRL values (a relation becomes a set of
//! tuples of atoms; the universe becomes the domain set).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use srl_core::program::Env;
use srl_core::value::Value;

/// A vocabulary: named relation symbols with fixed arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocabulary {
    relations: Vec<(String, usize)>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary {
            relations: Vec::new(),
        }
    }

    /// Adds a relation symbol.
    pub fn with_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.relations.push((name.into(), arity));
        self
    }

    /// The vocabulary of plain digraphs: one binary relation `E`.
    pub fn graph() -> Self {
        Vocabulary::new().with_relation("E", 2)
    }

    /// The vocabulary of alternating graphs: `E` (binary) and the unary
    /// universal-vertex label `A` (Definition 3.4).
    pub fn alternating_graph() -> Self {
        Vocabulary::new()
            .with_relation("E", 2)
            .with_relation("A", 1)
    }

    /// Arity of a relation symbol.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// Iterates over (name, arity) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.relations.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff there are no relation symbols.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary::new()
    }
}

/// A finite structure: a universe `{0, …, n-1}` plus an interpretation of
/// every relation symbol of its vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Structure {
    /// Universe size `n`.
    pub universe: usize,
    /// The vocabulary.
    pub vocabulary: Vocabulary,
    relations: BTreeMap<String, BTreeSet<Vec<usize>>>,
}

impl Structure {
    /// Creates a structure with every relation empty.
    pub fn new(universe: usize, vocabulary: Vocabulary) -> Self {
        let relations = vocabulary
            .iter()
            .map(|(name, _)| (name.to_string(), BTreeSet::new()))
            .collect();
        Structure {
            universe,
            vocabulary,
            relations,
        }
    }

    /// Adds a tuple to a relation. Tuples with the wrong arity or
    /// out-of-universe elements are rejected with `false`.
    pub fn add_tuple(&mut self, relation: &str, tuple: &[usize]) -> bool {
        match self.vocabulary.arity(relation) {
            Some(arity) if arity == tuple.len() && tuple.iter().all(|&x| x < self.universe) => {
                self.relations
                    .get_mut(relation)
                    .expect("relation exists because the vocabulary lists it")
                    .insert(tuple.to_vec());
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    pub fn holds(&self, relation: &str, tuple: &[usize]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// All tuples of a relation.
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Vec<usize>> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, BTreeSet::len)
    }

    /// Builds the graph structure of a digraph edge list.
    pub fn from_digraph(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut s = Structure::new(n, Vocabulary::graph());
        for &(u, v) in edges {
            s.add_tuple("E", &[u, v]);
        }
        s
    }

    /// Builds the alternating-graph structure of Definition 3.4.
    pub fn from_alternating_graph(n: usize, edges: &[(usize, usize)], universal: &[bool]) -> Self {
        let mut s = Structure::new(n, Vocabulary::alternating_graph());
        for &(u, v) in edges {
            s.add_tuple("E", &[u, v]);
        }
        for (v, &is_universal) in universal.iter().enumerate() {
            if is_universal {
                s.add_tuple("A", &[v]);
            }
        }
        s
    }

    /// The universe as an SRL domain set.
    pub fn universe_value(&self) -> Value {
        Value::set((0..self.universe as u64).map(Value::atom))
    }

    /// One relation as an SRL set of tuples of atoms (unary relations become
    /// sets of atoms, not sets of 1-tuples, matching how the paper's programs
    /// consume them).
    pub fn relation_value(&self, relation: &str) -> Option<Value> {
        let tuples = self.relations.get(relation)?;
        let arity = self.vocabulary.arity(relation)?;
        let items = tuples.iter().map(|t| {
            if arity == 1 {
                Value::atom(t[0] as u64)
            } else {
                Value::tuple(t.iter().map(|&x| Value::atom(x as u64)))
            }
        });
        Some(Value::set(items))
    }

    /// The whole structure as an SRL evaluation environment: `D` is bound to
    /// the universe and every relation symbol to its set of tuples.
    pub fn to_env(&self) -> Env {
        let mut env = Env::new().bind("D", self.universe_value());
        for (name, _) in self.vocabulary.iter() {
            if let Some(v) = self.relation_value(name) {
                env.insert(name.to_string(), v);
            }
        }
        env
    }

    /// Reads a relation back from an SRL value (a set of atoms for arity 1,
    /// or a set of tuples of atoms).
    pub fn relation_from_value(value: &Value, arity: usize) -> Option<BTreeSet<Vec<usize>>> {
        let set = value.as_set()?;
        let mut out = BTreeSet::new();
        for item in set {
            let tuple: Vec<usize> = if arity == 1 {
                vec![item.as_atom()?.index as usize]
            } else {
                let t = item.as_tuple()?;
                if t.len() != arity {
                    return None;
                }
                t.iter()
                    .map(|x| x.as_atom().map(|a| a.index as usize))
                    .collect::<Option<Vec<_>>>()?
            };
            out.insert(tuple);
        }
        Some(out)
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "structure(|D| = {}", self.universe)?;
        for (name, _) in self.vocabulary.iter() {
            write!(f, ", |{name}| = {}", self.relation_size(name))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_lookup() {
        let v = Vocabulary::alternating_graph();
        assert_eq!(v.arity("E"), Some(2));
        assert_eq!(v.arity("A"), Some(1));
        assert_eq!(v.arity("Z"), None);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert!(Vocabulary::new().is_empty());
    }

    #[test]
    fn add_and_query_tuples() {
        let mut s = Structure::new(4, Vocabulary::graph());
        assert!(s.add_tuple("E", &[0, 1]));
        assert!(s.add_tuple("E", &[1, 2]));
        assert!(!s.add_tuple("E", &[0, 9]), "out of universe");
        assert!(!s.add_tuple("E", &[0]), "wrong arity");
        assert!(!s.add_tuple("R", &[0, 1]), "unknown relation");
        assert!(s.holds("E", &[0, 1]));
        assert!(!s.holds("E", &[1, 0]));
        assert_eq!(s.relation_size("E"), 2);
        assert_eq!(s.tuples("E").count(), 2);
    }

    #[test]
    fn digraph_and_alternating_constructors() {
        let s = Structure::from_digraph(3, &[(0, 1), (1, 2)]);
        assert_eq!(s.relation_size("E"), 2);
        let s = Structure::from_alternating_graph(3, &[(0, 1)], &[true, false, true]);
        assert_eq!(s.relation_size("A"), 2);
        assert!(s.holds("A", &[0]));
        assert!(!s.holds("A", &[1]));
    }

    #[test]
    fn srl_bridge_roundtrip() {
        let s = Structure::from_alternating_graph(3, &[(0, 1), (2, 1)], &[false, true, false]);
        let env = s.to_env();
        assert_eq!(env.get("D").unwrap().len(), Some(3));
        assert_eq!(env.get("E").unwrap().len(), Some(2));
        assert_eq!(env.get("A").unwrap().len(), Some(1));
        // Unary relations are sets of atoms.
        assert!(env
            .get("A")
            .unwrap()
            .as_set()
            .unwrap()
            .contains(&Value::atom(1)));
        // Roundtrip the binary relation.
        let back = Structure::relation_from_value(env.get("E").unwrap(), 2).unwrap();
        assert!(back.contains(&vec![0, 1]));
        assert!(back.contains(&vec![2, 1]));
        assert_eq!(back.len(), 2);
        // Roundtrip the unary relation.
        let back = Structure::relation_from_value(env.get("A").unwrap(), 1).unwrap();
        assert!(back.contains(&vec![1]));
    }

    #[test]
    fn relation_from_value_rejects_garbage() {
        assert!(Structure::relation_from_value(&Value::atom(1), 2).is_none());
        let bad = Value::set([Value::tuple([Value::atom(0)])]);
        assert!(Structure::relation_from_value(&bad, 2).is_none());
    }

    #[test]
    fn display_mentions_sizes() {
        let s = Structure::from_digraph(5, &[(0, 1)]);
        let text = s.to_string();
        assert!(text.contains("|D| = 5"));
        assert!(text.contains("|E| = 1"));
    }
}
