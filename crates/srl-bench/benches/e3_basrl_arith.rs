//! E3 — Proposition 4.5 / Lemma 4.6: BASRL arithmetic; the SRL cost grows with
//! the domain while the accumulator stays constant-size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::value::Value;
use srl_stdlib::arith::{arithmetic_program, domain, names};

fn bench(c: &mut Criterion) {
    // Compiled once; the measured region is evaluation alone.
    let program = arithmetic_program();
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e3_basrl_arith");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [8u64, 16, 32, 64] {
        let d = domain(n);
        let a = Value::atom(n / 3);
        let b = Value::atom(n / 4);
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_add", n), &n, |bench, _| {
            bench.iter(|| {
                ev.reset_stats();
                ev.call(names::ADD, &[d.clone(), a.clone(), b.clone()])
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srl_bit", n), &n, |bench, _| {
            bench.iter(|| {
                ev.reset_stats();
                ev.call(names::BIT, &[d.clone(), Value::atom(1), a.clone()])
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_add", n), &n, |bench, _| {
            bench.iter(|| (n / 3) + (n / 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
