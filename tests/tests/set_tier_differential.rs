//! Differential test: generic vs. columnar set storage.
//!
//! The columnar small-atom tier (`srl-core::setrepr`: sorted-u32 `Atoms`
//! and dense `Bits` storage) promises to be **pure representation**: for
//! every program, identical `Value` results, identical *printed* results
//! (named-atom copies included), and byte-identical `EvalStats` whether
//! the tier is enabled or disabled, on every backend (tree-walk,
//! sequential VM, pooled VM at 2 and 4 threads). This suite drives the
//! full 2×4 matrix — tier {on, off} × backend — over every srl-bench
//! query workload (E1–E9), proves the tier actually *engages* where it
//! should (via the `Evaluator::tier_engagements` diagnostic) and provably
//! stays out when disabled, and stresses the promotion/demotion edges and
//! mixed-tier adversaries the adaptive storage decisions hinge on.
//!
//! The toggle (`set_atom_tier_enabled`) is thread-local; inputs are
//! rebuilt under each configuration's toggle so the "off" runs really
//! evaluate generic-tier values, not columnar values built earlier.

use std::sync::Arc;

use srl_core::dsl::*;
use srl_core::setrepr::set_atom_tier_enabled;
use srl_core::{
    Dialect, Env, EvalError, EvalLimits, EvalStats, Evaluator, ExecBackend, Expr, Program, Value,
};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::{difference, intersection, member, union};

/// Restores the ambient tier toggle when dropped, so a failing assertion
/// in one test cannot leak a disabled tier into the rest of its thread.
struct TierGuard(bool);

impl TierGuard {
    fn set(on: bool) -> Self {
        TierGuard(set_atom_tier_enabled(on))
    }
}

impl Drop for TierGuard {
    fn drop(&mut self) {
        set_atom_tier_enabled(self.0);
    }
}

/// Deep structural rebuild: every set in the result is re-constructed
/// under the *current* toggle, so the value's storage tiers reflect the
/// configuration under measurement rather than the one it was built in.
fn rebuild(v: &Value) -> Value {
    match v {
        Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => v.clone(),
        Value::Tuple(items) => Value::tuple(items.iter().map(rebuild)),
        Value::Set(items) => Value::set(items.iter().map(|e| rebuild(&e))),
        Value::List(items) => Value::list(items.iter().map(rebuild)),
    }
}

fn backends() -> Vec<(&'static str, ExecBackend)> {
    vec![
        ("tree-walk", ExecBackend::TreeWalk),
        ("vm[1]", ExecBackend::vm()),
        ("vm[2]", ExecBackend::vm_with_threads(2)),
        ("vm[4]", ExecBackend::vm_with_threads(4)),
    ]
}

struct Outcome {
    config: String,
    tier_on: bool,
    result: Result<(Value, EvalStats), EvalError>,
    engagements: u64,
}

/// Runs `f` under every (tier, backend) configuration over one shared
/// compiled program. `inputs` are rebuilt under each configuration's
/// toggle and handed to `f` in order.
fn run_matrix(
    program: &Program,
    limits: EvalLimits,
    inputs: &[Value],
    mut f: impl FnMut(&mut Evaluator, &[Value]) -> Result<Value, EvalError>,
) -> Vec<Outcome> {
    let compiled = Arc::new(program.compile());
    let mut out = Vec::new();
    for tier_on in [true, false] {
        let _guard = TierGuard::set(tier_on);
        let rebuilt: Vec<Value> = inputs.iter().map(rebuild).collect();
        for (name, backend) in backends() {
            let mut ev = Evaluator::with_compiled(program, Arc::clone(&compiled), limits)
                .expect("compiled from this program")
                .with_backend(backend);
            let result = f(&mut ev, &rebuilt).map(|v| (v, *ev.stats()));
            out.push(Outcome {
                config: format!("tier-{} {name}", if tier_on { "on" } else { "off" }),
                tier_on,
                result,
                engagements: ev.tier_engagements(),
            });
        }
    }
    out
}

/// Asserts every configuration produced the same value (structurally
/// *and* as printed — named-atom copies must not drift), byte-identical
/// `EvalStats`, and that the disabled tier never reported an engagement.
/// Returns the value and the minimum engagement count over the tier-on
/// configurations (so callers can assert the tier provably engaged on
/// every backend, not just one).
fn assert_tier_identical(label: &str, outcomes: &[Outcome]) -> (Value, u64) {
    let (first, rest) = outcomes.split_first().expect("matrix is non-empty");
    let (v0, s0) = first
        .result
        .as_ref()
        .unwrap_or_else(|e| panic!("{label} [{}]: failed: {e}", first.config));
    for o in rest {
        let (v, s) = o
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{label} [{}]: failed: {e}", o.config));
        assert_eq!(v0, v, "{label} [{}]: values differ", o.config);
        assert_eq!(
            format!("{v0}"),
            format!("{v}"),
            "{label} [{}]: printed values differ",
            o.config
        );
        assert_eq!(s0, s, "{label} [{}]: EvalStats differ", o.config);
    }
    for o in outcomes.iter().filter(|o| !o.tier_on) {
        assert_eq!(
            o.engagements, 0,
            "{label} [{}]: disabled tier reported engagements",
            o.config
        );
    }
    let on_min = outcomes
        .iter()
        .filter(|o| o.tier_on)
        .map(|o| o.engagements)
        .min()
        .expect("tier-on configurations exist");
    (v0.clone(), on_min)
}

/// Identity over an expression with named inputs, under benchmark limits.
fn assert_expr_identical(
    program: &Program,
    names: &[&str],
    inputs: &[Value],
    expr: &Expr,
    label: &str,
) -> (Value, u64) {
    let outcomes = run_matrix(program, EvalLimits::benchmark(), inputs, |ev, vals| {
        let mut env = Env::new();
        for (name, value) in names.iter().zip(vals) {
            env.insert(*name, value.clone());
        }
        ev.eval(expr, &env)
    });
    assert_tier_identical(label, &outcomes)
}

// ---------------------------------------------------------------------------
// The srl-bench query workloads, E1–E9: the storage tier must be
// unobservable in values, display, and stats.
// ---------------------------------------------------------------------------

#[test]
fn e1_apath_agrees() {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    let program = apath_program();
    let graph = AlternatingGraph::random(6, 0.25, 13);
    let inputs = [graph.nodes_value(), graph.edges_value(), graph.ands_value()];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::APATH, vals)
    });
    assert_tier_identical("E1 APATH", &outcomes);
}

#[test]
fn e2_powerset_agrees_and_engages() {
    use srl_stdlib::blowup::{names, powerset_program};

    let program = powerset_program();
    for n in [0u64, 1, 3, 8] {
        let inputs = [atom_set(0..n)];
        let outcomes = run_matrix(&program, EvalLimits::default(), &inputs, |ev, vals| {
            ev.call(names::POWERSET, vals)
        });
        let (v, on_min) = assert_tier_identical("E2 powerset", &outcomes);
        assert_eq!(v.len(), Some(1usize << n));
        if n == 8 {
            // The outer fold traverses the columnar input set on every
            // backend: the tier provably engages.
            assert!(on_min > 0, "E2 n=8: tier did not engage on some backend");
        }
    }
}

#[test]
fn e3_basrl_arithmetic_agrees() {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let program = arithmetic_program();
    let d = domain(16);
    for (name, extra) in [
        (names::ADD, vec![5u64, 4]),
        (names::MULT, vec![3, 4]),
        (names::BIT, vec![1, 5]),
    ] {
        let mut inputs = vec![d.clone()];
        inputs.extend(extra.iter().map(|&x| Value::atom(x)));
        let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
            ev.call(name, vals)
        });
        assert_tier_identical(name, &outcomes);
    }
}

#[test]
fn e4_permutation_product_agrees() {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    let program = perm_program();
    let instance = IteratedProductInstance::random(5, 5, 17);
    let inputs = [
        padded_domain(&instance),
        instance.to_srl_value(),
        Value::atom(2),
    ];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::IP, vals)
    });
    assert_tier_identical("E4 IP", &outcomes);
}

#[test]
fn e5_tc_dtc_agree() {
    use srl_bench::queries;
    use workloads::digraph::Digraph;

    let program = Program::new(Dialect::full());
    for n in [6usize, 14] {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let inputs = [g.vertices_value(), g.edges_value()];
        for (label, expr) in [
            ("E5 TC", queries::tc_query()),
            ("E5 DTC", queries::dtc_query()),
        ] {
            assert_expr_identical(
                &program,
                &["D", "E"],
                &inputs,
                &expr,
                &format!("{label} n={n}"),
            );
        }
    }
}

#[test]
fn e5_reachability_agrees_and_engages() {
    use srl_bench::queries;
    use workloads::digraph::Digraph;

    // The vertex-set core of E5: a round-driven reachability whose
    // accumulator is a set of atoms — the shape the columnar tier is for.
    let program = Program::new(Dialect::full());
    let n = 256usize;
    let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
    let inputs = [
        g.vertices_value(),
        g.edges_value(),
        atom_set(0..8u64), // rounds
    ];
    let (_, on_min) = assert_expr_identical(
        &program,
        &["D", "E", "K"],
        &inputs,
        &queries::reach_query(),
        "E5 reach",
    );
    assert!(on_min > 0, "E5 reach: tier did not engage on some backend");
}

#[test]
fn e6_primrec_and_lrl_doubling_agree() {
    use machines::primrec::library;
    use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
    use srl_stdlib::primrec_compile::{compile, encode_nat};

    let add = compile(&library::add()).expect("add compiles");
    let entry = add.entry.clone();
    let inputs = [encode_nat(5), encode_nat(3)];
    let outcomes = run_matrix(
        &add.program,
        EvalLimits::benchmark(),
        &inputs,
        |ev, vals| ev.call(&entry, vals),
    );
    assert_tier_identical("E6 PR add", &outcomes);

    let doubling = lrl_doubling_program();
    let inputs = [Value::list((0..5u64).map(Value::atom))];
    let outcomes = run_matrix(&doubling, EvalLimits::default(), &inputs, |ev, vals| {
        ev.call(blow_names::DOUBLING, vals)
    });
    assert_tier_identical("E6 LRL doubling", &outcomes);
}

#[test]
fn e7_tm_simulation_agrees() {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    let program = compile(&even_parity());
    let n = 16usize;
    let input: Vec<u8> = (0..n)
        .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
        .collect();
    let inputs = [position_domain(n), encode_input(&input)];
    let outcomes = run_matrix(&program, EvalLimits::benchmark(), &inputs, |ev, vals| {
        ev.call(names::ACCEPTS, vals)
    });
    assert_tier_identical("E7 accepts", &outcomes);
}

#[test]
fn e8_order_dependence_probes_agree() {
    use srl_stdlib::hom;

    let program = Program::srl();
    let inputs = [atom_set([0, 2, 4, 6]), atom_set([6])];
    assert_expr_identical(
        &program,
        &["S", "P"],
        &inputs,
        &hom::purple_first(var("S"), var("P")),
        "E8 purple_first",
    );
    assert_expr_identical(
        &program,
        &["S", "P"],
        &inputs,
        &hom::even(var("S")),
        "E8 even",
    );
}

#[test]
fn e9_relational_queries_agree() {
    use srl_bench::queries;
    use workloads::tables::CompanyDatabase;

    let program = Program::new(Dialect::full());
    let db = CompanyDatabase::generate(32, 8, 4, 47);
    let inputs = [db.employees_value(), db.departments_value()];
    assert_expr_identical(
        &program,
        &["EMP", "DEPT"],
        &inputs,
        &queries::company_join(),
        "E9 join",
    );
    assert_expr_identical(
        &program,
        &["EMP", "DEPT"],
        &inputs,
        &queries::employees_in_department(db.departments[0].id),
        "E9 select/project",
    );
}

#[test]
fn e9_id_intersection_agrees_and_engages() {
    use srl_bench::queries;

    // The id-set core of E9: intersecting an id column with a dense
    // universe — a Filter fold whose probes hit the bitset tier.
    let program = Program::new(Dialect::full());
    let inputs = [
        atom_set(0..512u64),
        atom_set((0..512u64).filter(|i| i % 4 != 3)),
    ];
    let (v, on_min) = assert_expr_identical(
        &program,
        &["IDS", "UNIV"],
        &inputs,
        &queries::id_intersection(),
        "E9 inter-ids",
    );
    assert_eq!(v.len(), Some(384));
    assert!(
        on_min > 0,
        "E9 inter-ids: tier did not engage on some backend"
    );
}

#[test]
fn dense_universe_union_agrees_and_engages() {
    use srl_bench::queries;

    // The dense-universe probe: interleaved even/odd atom sets whose union
    // is one bulk merge — word-parallel on the bitset tier.
    let program = Program::new(Dialect::full());
    let inputs = [
        atom_set((0..256u64).map(|i| 2 * i)),
        atom_set((0..256u64).map(|i| 2 * i + 1)),
    ];
    let (v, on_min) = assert_expr_identical(
        &program,
        &["A", "B"],
        &inputs,
        &queries::dense_union(),
        "dense universe",
    );
    assert_eq!(v.len(), Some(512));
    assert!(
        on_min > 0,
        "dense universe: tier did not engage on some backend"
    );
}

// ---------------------------------------------------------------------------
// Mixed-tier adversaries: elements of different shapes force promotions,
// demotions, and cross-tier merges mid-evaluation.
// ---------------------------------------------------------------------------

#[test]
fn cross_tier_union_with_tuples_agrees() {
    // A columnar atom set unioned with a generic tuple set: the merge
    // crosses tiers and the result must widen to generic storage.
    let program = Program::srl();
    let tuples = Value::set((0..40u64).map(|i| Value::tuple([Value::atom(i), Value::atom(i + 1)])));
    let inputs = [atom_set(0..40u64), tuples];
    for (label, expr) in [
        ("atoms ∪ tuples", union(var("A"), var("B"))),
        ("tuples ∪ atoms", union(var("B"), var("A"))),
        ("atoms ∖ tuples", difference(var("A"), var("B"))),
    ] {
        assert_expr_identical(&program, &["A", "B"], &inputs, &expr, label);
    }
}

#[test]
fn mid_fold_promotion_then_demotion_agrees() {
    // The combiner inserts the bare atom for members of T and the whole
    // tuple otherwise: the accumulator promotes to columnar storage while
    // the early (member) inserts land, then demotes in place on the first
    // tuple. Identity must survive the round trip on every backend.
    let program = Program::srl();
    let expr = set_reduce(
        var("S"),
        lam("x", "t", tuple([var("x"), member(var("x"), var("t"))])),
        lam(
            "p",
            "acc",
            if_(
                sel(var("p"), 2),
                insert(sel(var("p"), 1), var("acc")),
                insert(var("p"), var("acc")),
            ),
        ),
        empty_set(),
        var("T"),
    );
    let inputs = [
        atom_set(0..48u64),
        atom_set((0..24u64).map(|i| i * 2)), // evens are members
    ];
    assert_expr_identical(&program, &["S", "T"], &inputs, &expr, "promote-demote");
}

#[test]
fn named_atom_first_wins_survives_the_tier() {
    // Named atoms are equal to their plain ranks but display differently;
    // first-wins must keep exactly the same copy whether the target set is
    // columnar or generic (a named duplicate must not widen a columnar set
    // or replace its plain copy). `assert_tier_identical` compares the
    // printed results, which is where a drifted copy would show.
    let program = Program::srl();
    let named = Value::set((0..30u64).map(|i| Value::named_atom(i, format!("v{i}"))));
    let inputs = [atom_set(0..60u64), named];
    // `union(x, y)` folds over `x` inserting into `y`: the base set's
    // copies arrive first and win. With N as base the named copies stay…
    let (v, _) = assert_expr_identical(
        &program,
        &["A", "N"],
        &inputs,
        &union(var("A"), var("N")),
        "fold A into N",
    );
    assert_eq!(v.len(), Some(60));
    assert!(format!("{v}").contains("v0"), "{v}");

    // …and with the columnar A as base the plain ranks stay: a named
    // duplicate answered `false` without widening the storage.
    let (v, _) = assert_expr_identical(
        &program,
        &["A", "N"],
        &inputs,
        &union(var("N"), var("A")),
        "fold N into A",
    );
    assert_eq!(v.len(), Some(60));
    assert!(!format!("{v}").contains("v0"), "{v}");
}

// ---------------------------------------------------------------------------
// Promotion/demotion edges: the storage decisions flip at exact sizes
// (inline capacity, the bitset length floor, the density spread bound).
// ---------------------------------------------------------------------------

#[test]
fn storage_threshold_edges_agree() {
    let program = Program::srl();
    let cases: Vec<(&str, Vec<u64>)> = vec![
        // Inline capacity edge: 4 stays inline, 5 promotes to sorted ids.
        ("len 3", (0..3).collect()),
        ("len 4", (0..4).collect()),
        ("len 5", (0..5).collect()),
        // Bitset length floor: 63 stays sorted ids, 64 may densify.
        ("len 63", (0..63).collect()),
        ("len 64", (0..64).collect()),
        ("len 65", (0..65).collect()),
        // Density spread bound at len 64: ids to 1008 are dense enough,
        // ids to 1071 are not.
        ("spread dense", (0..64).map(|i| i * 16).collect()),
        ("spread sparse", (0..64).map(|i| i * 17).collect()),
    ];
    for (label, ids) in cases {
        let inputs = [
            atom_set(ids.iter().copied()),
            atom_set(ids.iter().map(|i| i + 1)),
        ];
        for (op, expr) in [
            ("union", union(var("A"), var("B"))),
            ("intersection", intersection(var("A"), var("B"))),
            ("difference", difference(var("A"), var("B"))),
            (
                "member",
                member(atom(ids.last().copied().unwrap_or(0)), var("A")),
            ),
        ] {
            assert_expr_identical(
                &program,
                &["A", "B"],
                &inputs,
                &expr,
                &format!("{label} {op}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: random id sets across densities, the full matrix.
// ---------------------------------------------------------------------------

/// Deterministic case stream (SplitMix64 — same construction as the other
/// property suites; failures print the case index for exact replay).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Up to 80 ids drawn dense (small universe) or sparse (wide universe),
    /// so generated sets land on every storage tier.
    fn id_set(&mut self) -> Vec<u64> {
        let len = self.below(80);
        let universe = if self.below(2) == 0 { 128 } else { 100_000 };
        (0..len).map(|_| self.below(universe)).collect()
    }
}

#[test]
fn random_id_set_algebra_is_tier_invariant() {
    let program = Program::srl();
    let mut g = Gen::new(11);
    for case in 0..24 {
        let a = g.id_set();
        let b = g.id_set();
        let probe = g.below(128);
        let inputs = [atom_set(a.clone()), atom_set(b.clone())];
        for (op, expr) in [
            ("union", union(var("A"), var("B"))),
            ("intersection", intersection(var("A"), var("B"))),
            ("difference", difference(var("A"), var("B"))),
            ("member", member(atom(probe), var("A"))),
        ] {
            let (v, _) = assert_expr_identical(
                &program,
                &["A", "B"],
                &inputs,
                &expr,
                &format!("case {case} {op}"),
            );
            // Cross-check against native sets: the tier must not change
            // *what* is computed either.
            let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
            let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
            let expect: Value = match op {
                "union" => atom_set(sa.union(&sb).copied().collect::<Vec<_>>()),
                "intersection" => atom_set(sa.intersection(&sb).copied().collect::<Vec<_>>()),
                "difference" => atom_set(sa.difference(&sb).copied().collect::<Vec<_>>()),
                _ => Value::Bool(sa.contains(&probe)),
            };
            assert_eq!(v, expect, "case {case} {op}: a={a:?} b={b:?}");
        }
    }
}
