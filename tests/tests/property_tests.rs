//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use srl_core::dsl::*;
use srl_core::eval::eval_expr;
use srl_core::{BigNat, Env, EvalLimits, Value};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::{difference, intersection, member, set_eq, subset, union};
use srl_stdlib::hom;
use workloads::orderings::DomainRenaming;

fn eval(expr: &srl_core::Expr, env: &Env) -> Value {
    eval_expr(expr, env, EvalLimits::default()).expect("evaluation succeeds")
}

fn small_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..24, 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bignat_addition_is_commutative_and_matches_u64(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let x = BigNat::from_u64(a);
        let y = BigNat::from_u64(b);
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.add(&y).to_u64(), Some(a + b));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
    }

    #[test]
    fn bignat_shifts_invert(a in 0u64..u64::MAX, k in 0usize..100) {
        let x = BigNat::from_u64(a);
        prop_assert_eq!(x.shl(k).shr(k), x);
    }

    #[test]
    fn srl_union_is_commutative_idempotent_and_matches_native(a in small_set(), b in small_set()) {
        let env = Env::new().bind("A", atom_set(a.clone())).bind("B", atom_set(b.clone()));
        let ab = eval(&union(var("A"), var("B")), &env);
        let ba = eval(&union(var("B"), var("A")), &env);
        prop_assert_eq!(&ab, &ba);
        let native: std::collections::BTreeSet<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(ab.len(), Some(native.len()));
        let aa = eval(&union(var("A"), var("A")), &env);
        prop_assert_eq!(aa, atom_set(a));
    }

    #[test]
    fn srl_set_algebra_matches_native(a in small_set(), b in small_set()) {
        let env = Env::new().bind("A", atom_set(a.clone())).bind("B", atom_set(b.clone()));
        let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
        let inter = eval(&intersection(var("A"), var("B")), &env);
        prop_assert_eq!(inter, atom_set(sa.intersection(&sb).copied().collect::<Vec<_>>()));
        let diff = eval(&difference(var("A"), var("B")), &env);
        prop_assert_eq!(diff, atom_set(sa.difference(&sb).copied().collect::<Vec<_>>()));
        let sub = eval(&subset(var("A"), var("B")), &env);
        prop_assert_eq!(sub, Value::bool(sa.is_subset(&sb)));
        let eq_sets = eval(&set_eq(var("A"), var("B")), &env);
        prop_assert_eq!(eq_sets, Value::bool(sa == sb));
    }

    #[test]
    fn srl_membership_matches_native(a in small_set(), probe in 0u64..24) {
        let env = Env::new().bind("A", atom_set(a.clone()));
        let v = eval(&member(atom(probe), var("A")), &env);
        prop_assert_eq!(v, Value::bool(a.contains(&probe)));
    }

    #[test]
    fn proper_hom_queries_are_invariant_under_renaming(a in small_set(), seed in 0u64..1000) {
        let s = atom_set(a.clone());
        let renaming = DomainRenaming::random(24, seed);
        let env = Env::new().bind("S", s.clone());
        let renamed_env = Env::new().bind("S", renaming.apply(&s));
        // EVEN via proper hom: same boolean either way.
        prop_assert_eq!(
            eval(&hom::even(var("S")), &env),
            eval(&hom::even(var("S")), &renamed_env)
        );
        // Union-style rebuild corresponds modulo the renaming.
        let rebuilt = eval(&union(var("S"), empty_set()), &env);
        let rebuilt_renamed = eval(&union(var("S"), empty_set()), &renamed_env);
        prop_assert_eq!(renaming.apply(&rebuilt), rebuilt_renamed);
    }

    #[test]
    fn basrl_arithmetic_matches_native_addition(n in 6u64..24, a in 0u64..12, b in 0u64..12) {
        let a = a % n;
        let b = b % n;
        let program = srl_stdlib::arith::arithmetic_program();
        let (value, _) = srl_core::eval::run_program(
            &program,
            srl_stdlib::arith::names::ADD,
            &[srl_stdlib::arith::domain(n), Value::atom(a), Value::atom(b)],
            EvalLimits::benchmark(),
        ).unwrap();
        prop_assert_eq!(value, Value::atom((a + b).min(n - 1)));
    }

    #[test]
    fn evaluation_is_deterministic(a in small_set()) {
        let env = Env::new().bind("A", atom_set(a));
        let q = hom::count(var("A"));
        let program = srl_core::Program::new(srl_core::Dialect::full());
        let mut ev1 = srl_core::Evaluator::new(&program, EvalLimits::default());
        let mut ev2 = srl_core::Evaluator::new(&program, EvalLimits::default());
        prop_assert_eq!(ev1.eval(&q, &env).unwrap(), ev2.eval(&q, &env).unwrap());
    }
}
