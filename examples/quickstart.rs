//! Quickstart: build a small SRL query with the DSL, type-check it, push it
//! through the staged compile pipeline, evaluate it, and read its
//! complexity off the syntax.
//!
//! Run with `cargo run -p srl-examples --bin quickstart`.

use srl_analysis::classify_program;
use srl_core::dsl::*;
use srl_core::pipeline::Pipeline;
use srl_core::{check_expr, Env, Program, Type, Value};
use srl_examples::print_header;
use srl_stdlib::derived::{intersection, member, union};

fn main() {
    print_header("A first SRL query: membership");
    // forsome(S, λx. x = target): is `target` a member of S?
    let query = member(var("target"), var("S"));
    let program = Program::srl();
    let inputs = vec![
        ("S".to_string(), Type::set_of(Type::Atom)),
        ("target".to_string(), Type::Atom),
    ];
    let ty = check_expr(&program, &query, &inputs).expect("query type-checks in SRL");
    println!("type of the query: {ty}");

    // One pipeline, one compiled artifact; every evaluation below flows
    // through it (same path text programs take via `srl-syntax`/`srl`).
    let artifact = Pipeline::new()
        .prepare(program)
        .expect("the empty SRL program is trivially valid");
    let env = Env::new()
        .bind(
            "S",
            Value::set([Value::atom(1), Value::atom(4), Value::atom(9)]),
        )
        .bind("target", Value::atom(4));
    let (answer, stats) = artifact.eval(&query, &env).unwrap();
    println!("member(4, {{1, 4, 9}}) = {answer}");
    println!(
        "  [{} steps, {} reduce iterations, on the {:?} backend]",
        stats.steps,
        stats.reduce_iterations,
        artifact.backend()
    );

    print_header("Derived set algebra (Fact 2.4)");
    let env = Env::new()
        .bind(
            "A",
            Value::set([Value::atom(1), Value::atom(2), Value::atom(3)]),
        )
        .bind(
            "B",
            Value::set([Value::atom(2), Value::atom(3), Value::atom(5)]),
        );
    for (name, expr) in [
        ("A ∪ B", union(var("A"), var("B"))),
        ("A ∩ B", intersection(var("A"), var("B"))),
    ] {
        let (v, _) = artifact.eval(&expr, &env).unwrap();
        println!("{name} = {v}");
    }

    print_header("Complexity read off the syntax (Section 6)");
    let verdict = classify_program(&srl_stdlib::arith::arithmetic_program(), 1);
    println!("BASRL arithmetic program: {}", verdict.fragment);
    println!("  {}", verdict.explanation);
    let verdict = classify_program(&srl_stdlib::blowup::powerset_program(), 1);
    println!("powerset program: {}", verdict.fragment);
    println!("  {}", verdict.explanation);
}
