//! Permutations and the iterated multiplication problem IMₛₙ (Definition 4.8).
//!
//! `IMₛₙ`: given permutations π₁, …, πₙ ∈ Sₙ, compute their composition
//! π₁ ∗ π₂ ∗ … ∗ πₙ, where `(π₁ ∗ π₂)(i) = π₂(π₁(i))`. Fact 4.9 (Cook &
//! McKenzie; Immerman & Landau) states that IMₛₙ is complete for L under
//! first-order reductions with BIT, and Lemma 4.10 expresses it in BASRL —
//! the heart of Theorem 4.13 (`ℒ(BASRL) = L`). This module provides the
//! permutation type, the native iterated product, instance generators, and
//! the SRL encoding the paper uses (`[i, [j, k]]`: "the i-th permutation maps
//! j to k").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use srl_core::value::Value;

/// A permutation of `{0, …, n-1}`, stored as the image vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity on `n` points.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Builds a permutation from an image vector; returns `None` if it is not
    /// a bijection on `{0, …, len-1}`.
    pub fn from_vec(map: Vec<usize>) -> Option<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &v in &map {
            if v >= n || seen[v] {
                return None;
            }
            seen[v] = true;
        }
        Some(Permutation { map })
    }

    /// The cyclic shift `i ↦ i + 1 (mod n)`.
    pub fn cycle(n: usize) -> Self {
        Permutation {
            map: (0..n).map(|i| (i + 1) % n.max(1)).collect(),
        }
    }

    /// A uniformly random permutation (Fisher–Yates, seeded).
    pub fn random(n: usize, rng: &mut StdRng) -> Self {
        let mut map: Vec<usize> = (0..n).collect();
        map.shuffle(rng);
        Permutation { map }
    }

    /// Degree (number of points).
    pub fn degree(&self) -> usize {
        self.map.len()
    }

    /// The image of `i`.
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The paper's composition: `(self ∗ other)(i) = other(self(i))`
    /// (Definition 4.8: π₁ ∗ π₂(i) = π₂(π₁(i))).
    pub fn then(&self, other: &Permutation) -> Permutation {
        Permutation {
            map: self.map.iter().map(|&i| other.map[i]).collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { map: inv }
    }

    /// The underlying image vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }
}

/// An IMₛₙ instance: a sequence of permutations of the same degree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IteratedProductInstance {
    /// The permutations π₁, …, π_m (the paper takes m = n, but the harness
    /// allows any length).
    pub permutations: Vec<Permutation>,
}

impl IteratedProductInstance {
    /// A random instance of `count` permutations of degree `n`.
    pub fn random(n: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        IteratedProductInstance {
            permutations: (0..count)
                .map(|_| Permutation::random(n, &mut rng))
                .collect(),
        }
    }

    /// The paper's square instance: n permutations of degree n.
    pub fn random_square(n: usize, seed: u64) -> Self {
        Self::random(n, n, seed)
    }

    /// Degree of the permutations (0 for an empty instance).
    pub fn degree(&self) -> usize {
        self.permutations.first().map_or(0, Permutation::degree)
    }

    /// The native iterated product π₁ ∗ π₂ ∗ … ∗ π_m — the experiments'
    /// ground truth (the logspace-complete function of Fact 4.9).
    pub fn product(&self) -> Permutation {
        let n = self.degree();
        self.permutations
            .iter()
            .fold(Permutation::identity(n), |acc, p| acc.then(p))
    }

    /// The paper's input coding for Lemma 4.10: a set of tuples
    /// `[i, [j, k]]` meaning "the i-th permutation (1-based atom rank i-1…)
    /// maps j to k". We index permutations by the atoms `0 .. m` and points
    /// by the atoms `0 .. n`; both live in the same ordered domain, exactly
    /// as in the paper (which indexes both by the input ranks).
    pub fn to_srl_value(&self) -> Value {
        Value::set(self.permutations.iter().enumerate().flat_map(|(i, p)| {
            p.as_slice().iter().enumerate().map(move |(j, &k)| {
                Value::tuple([
                    Value::atom(i as u64),
                    Value::tuple([Value::atom(j as u64), Value::atom(k as u64)]),
                ])
            })
        }))
    }

    /// The domain needed to traverse the instance in SRL: atoms
    /// `0 .. max(m, n)` (permutation indices and points share the domain).
    pub fn domain_value(&self) -> Value {
        let size = self.permutations.len().max(self.degree());
        Value::set((0..size as u64).map(Value::atom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_apply() {
        let id = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(id.apply(i), i);
        }
        assert_eq!(id.degree(), 5);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_some());
        assert!(Permutation::from_vec(vec![1, 1, 2]).is_none());
        assert!(Permutation::from_vec(vec![1, 3]).is_none());
        assert!(Permutation::from_vec(vec![]).is_some());
    }

    #[test]
    fn composition_order_matches_definition_4_8() {
        // π₁ = (0 1 2) cycle, π₂ = transposition of 0 and 1.
        let p1 = Permutation::cycle(3);
        let p2 = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        // (π₁ ∗ π₂)(i) = π₂(π₁(i)): 0 ↦ π₂(1) = 0, 1 ↦ π₂(2) = 2, 2 ↦ π₂(0) = 1.
        let c = p1.then(&p2);
        assert_eq!(c.as_slice(), &[0, 2, 1]);
        // The other order differs.
        let c2 = p2.then(&p1);
        assert_eq!(c2.as_slice(), &[2, 1, 0]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let p = Permutation::random(8, &mut rng);
            assert_eq!(p.then(&p.inverse()), Permutation::identity(8));
            assert_eq!(p.inverse().then(&p), Permutation::identity(8));
        }
    }

    #[test]
    fn cycle_has_full_order() {
        let c = Permutation::cycle(5);
        let mut acc = Permutation::identity(5);
        for _ in 0..5 {
            acc = acc.then(&c);
        }
        assert_eq!(acc, Permutation::identity(5));
        let mut acc = Permutation::identity(5);
        for _ in 0..3 {
            acc = acc.then(&c);
        }
        assert_ne!(acc, Permutation::identity(5));
    }

    #[test]
    fn product_of_cycles() {
        // Composing the n-cycle n times gives the identity.
        let n = 6;
        let instance = IteratedProductInstance {
            permutations: vec![Permutation::cycle(n); n],
        };
        assert_eq!(instance.product(), Permutation::identity(n));
    }

    #[test]
    fn random_instances_are_seeded() {
        assert_eq!(
            IteratedProductInstance::random_square(6, 3),
            IteratedProductInstance::random_square(6, 3)
        );
        assert_ne!(
            IteratedProductInstance::random_square(6, 3),
            IteratedProductInstance::random_square(6, 4)
        );
    }

    #[test]
    fn product_matches_pointwise_composition() {
        let inst = IteratedProductInstance::random(7, 5, 99);
        let prod = inst.product();
        for i in 0..7 {
            let mut x = i;
            for p in &inst.permutations {
                x = p.apply(x);
            }
            assert_eq!(prod.apply(i), x, "point {i}");
        }
    }

    #[test]
    fn srl_encoding_shape() {
        let inst = IteratedProductInstance::random(4, 3, 5);
        let v = inst.to_srl_value();
        // 3 permutations × 4 points = 12 tuples.
        assert_eq!(v.len(), Some(12));
        for item in v.as_set().unwrap() {
            let t = item.as_tuple().unwrap();
            assert_eq!(t.len(), 2);
            assert!(t[0].as_atom().is_some());
            let inner = t[1].as_tuple().unwrap();
            assert_eq!(inner.len(), 2);
        }
        assert_eq!(inst.domain_value().len(), Some(4));
        let empty = IteratedProductInstance {
            permutations: vec![],
        };
        assert_eq!(empty.degree(), 0);
        assert_eq!(empty.product(), Permutation::identity(0));
    }
}
