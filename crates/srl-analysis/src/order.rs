//! Order-(in)dependence analysis (Section 7 and the Conclusions).
//!
//! The paper's position: use a language that includes all of P (so the order
//! is available operationally), and *prove* of individual queries that their
//! results do not depend on it — originally with Sheard's extended
//! Boyer–Moore prover, which is not available to us. This module substitutes
//! a conservative, mechanical checker with the same soundness contract:
//!
//! * a **syntactic proper-hom check**: a reduce whose accumulator is built
//!   from a known commutative–associative combiner shape and whose `app`
//!   ignores nothing it shouldn't, is order-independent (Section 7's "proper
//!   hom");
//! * a **randomised algebraic check** of the accumulator (commutativity and
//!   associativity on sampled values), which upgrades "unknown" verdicts to
//!   strong evidence;
//! * a **permutation test** of the whole query: evaluate it on the same
//!   abstract database presented under several random domain renamings and
//!   compare results (modulo the renaming). A mismatch is a *proof* of order
//!   dependence, with the renaming as witness.
//!
//! The verdict is three-valued, exactly like the original prover's:
//! proved independent / proved dependent (witness) / unknown.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use srl_core::ast::{Expr, Lambda};
use srl_core::dialect::Dialect;
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::program::{Env, Program};
use srl_core::value::Value;

use workloads::orderings::DomainRenaming;

/// The outcome of an order-independence analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderVerdict {
    /// Every reduce in the expression has a provably order-insensitive
    /// combiner (proper-hom shape), so the result cannot depend on the order.
    ProvedIndependent,
    /// A concrete domain renaming changes the result: the query is
    /// order-dependent.
    ProvedDependent {
        /// The renaming that witnesses the dependence.
        witness_seed: u64,
    },
    /// Neither a proof nor a counterexample was found.
    Unknown,
}

/// Syntactic shapes of accumulators known to be commutative and associative
/// (and therefore order-insensitive): boolean OR / AND / XOR folds, set
/// union by insertion, natural-number sums and products, max/min by
/// comparison.
fn combiner_is_proper(acc: &Lambda) -> bool {
    let x = acc.x.as_str();
    let y = acc.y.as_str();
    match classify_combiner(&acc.body, x, y) {
        Some(
            CombinerKind::Or
            | CombinerKind::And
            | CombinerKind::Xor
            | CombinerKind::Insert
            | CombinerKind::NatAdd
            | CombinerKind::NatMul
            | CombinerKind::Max
            | CombinerKind::Min,
        ) => true,
        // `insert(y, x)` is a recognized shape but NOT proper: the fold
        // step becomes `acc' = h(x) ∪ {acc}` — it nests the accumulator
        // inside the new element's set, so the result's nesting structure
        // encodes the traversal order. With elements a, b and base ∅:
        // a-then-b yields `b ∪ {a ∪ {∅}}`, b-then-a yields `a ∪ {b ∪ {∅}}`.
        // The permutation test refutes it with a concrete witness (see the
        // unit tests); classifying it proper would be unsound.
        Some(CombinerKind::InsertSwapped) | None => false,
    }
}

#[derive(Debug, PartialEq, Eq)]
enum CombinerKind {
    Or,
    And,
    Xor,
    Insert,
    /// `insert(y, x)` — the operand-swapped insert: recognized so the
    /// analyzer can name it, but order-*dependent* (see
    /// [`combiner_is_proper`]).
    InsertSwapped,
    NatAdd,
    NatMul,
    Max,
    Min,
}

fn classify_combiner(body: &Expr, x: &str, y: &str) -> Option<CombinerKind> {
    let is_var = |e: &Expr, name: &str| matches!(e, Expr::Var(v) if v == name);
    match body {
        // or: if x then true else y        (or symmetrically)
        Expr::If(c, t, e) => {
            if is_var(c, x) {
                // x as condition.
                match (&**t, &**e) {
                    (Expr::Bool(true), other) if is_var(other, y) => Some(CombinerKind::Or),
                    (other, Expr::Bool(false)) if is_var(other, y) => Some(CombinerKind::And),
                    // xor: if x then (if y then false else true) else y
                    (Expr::If(c2, t2, e2), other)
                        if is_var(other, y)
                            && is_var(c2, y)
                            && matches!(&**t2, Expr::Bool(false))
                            && matches!(&**e2, Expr::Bool(true)) =>
                    {
                        Some(CombinerKind::Xor)
                    }
                    _ => None,
                }
            } else if let Expr::Leq(a, b) = &**c {
                // max: if y ≤ x then x else y (or min symmetrically).
                let xy = is_var(a, y) && is_var(b, x);
                let yx = is_var(a, x) && is_var(b, y);
                match (&**t, &**e) {
                    (tt, ee) if xy && is_var(tt, x) && is_var(ee, y) => Some(CombinerKind::Max),
                    (tt, ee) if yx && is_var(tt, x) && is_var(ee, y) => Some(CombinerKind::Min),
                    _ => None,
                }
            } else {
                None
            }
        }
        Expr::Insert(e, s) if is_var(e, x) && is_var(s, y) => Some(CombinerKind::Insert),
        Expr::Insert(e, s) if is_var(e, y) && is_var(s, x) => Some(CombinerKind::InsertSwapped),
        Expr::NatAdd(a, b) if (is_var(a, x) && is_var(b, y)) || (is_var(a, y) && is_var(b, x)) => {
            Some(CombinerKind::NatAdd)
        }
        Expr::NatMul(a, b) if (is_var(a, x) && is_var(b, y)) || (is_var(a, y) && is_var(b, x)) => {
            Some(CombinerKind::NatMul)
        }
        _ => None,
    }
}

/// Syntactic check: every `set-reduce` in the expression (with calls expanded
/// against `program`) has a proper combiner, and no order-observing primitive
/// (`choose`, `rest`, `≤`, `list-reduce`) occurs.
pub fn provably_order_independent(program: &Program, expr: &Expr) -> bool {
    fn go(program: &Program, e: &Expr, seen: &mut Vec<String>) -> bool {
        match e {
            Expr::Choose(_) | Expr::Rest(_) | Expr::Leq(..) | Expr::ListReduce { .. } => {
                return false
            }
            Expr::SetReduce { app, acc, .. } => {
                if !combiner_is_proper(acc) {
                    return false;
                }
                if !go(program, &app.body, seen) || !go(program, &acc.body, seen) {
                    return false;
                }
            }
            Expr::Call(name, _) if !seen.contains(name) => {
                seen.push(name.clone());
                if let Some(def) = program.lookup(name) {
                    if !go(program, &def.body, seen) {
                        return false;
                    }
                }
            }
            _ => {}
        }
        e.children().iter().all(|c| go(program, c, seen))
    }
    go(program, expr, &mut Vec::new())
}

/// Randomised algebraic check that a combiner lambda is commutative and
/// associative on sampled boolean/atom/nat arguments. Evidence, not proof.
pub fn combiner_seems_commutative_associative(acc: &Lambda, samples: u32, seed: u64) -> bool {
    let program = Program::new(Dialect::full());
    let mut evaluator = Evaluator::new(&program, EvalLimits::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let apply = |evaluator: &mut Evaluator, a: &Value, b: &Value| -> Option<Value> {
        let env = Env::new()
            .bind(acc.x.clone(), a.clone())
            .bind(acc.y.clone(), b.clone());
        evaluator.eval(&acc.body, &env).ok()
    };
    for _ in 0..samples {
        let sample = |rng: &mut StdRng| -> Value {
            match rng.gen_range(0..3) {
                0 => Value::bool(rng.gen_bool(0.5)),
                1 => Value::atom(rng.gen_range(0..8)),
                _ => Value::nat(rng.gen_range(0..8)),
            }
        };
        let (a, b, c) = (sample(&mut rng), sample(&mut rng), sample(&mut rng));
        // Only compare when both orientations evaluate (ill-typed samples are
        // skipped rather than counted against the combiner).
        if let (Some(ab), Some(ba)) = (apply(&mut evaluator, &a, &b), apply(&mut evaluator, &b, &a))
        {
            if ab != ba {
                return false;
            }
            if let (Some(ab_c), Some(bc)) = (
                apply(&mut evaluator, &ab, &c),
                apply(&mut evaluator, &b, &c),
            ) {
                if let Some(a_bc) = apply(&mut evaluator, &a, &bc) {
                    if ab_c != a_bc {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Permutation testing: evaluate the query on the original environment and on
/// `trials` randomly renamed presentations of it; report a dependence witness
/// if any result fails to correspond.
pub fn permutation_test(
    program: &Program,
    expr: &Expr,
    env: &Env,
    domain_size: usize,
    trials: u64,
) -> OrderVerdict {
    // Lower the program and the query once; each trial gets a fresh
    // evaluator over the shared compiled form and re-evaluates the lowered
    // query (a renamed env binds the same names in the same order, which is
    // what `eval_lowered` requires).
    let compiled = Arc::new(program.compile());
    let mut evaluator =
        Evaluator::with_compiled(program, Arc::clone(&compiled), EvalLimits::default_budget())
            .expect("compiled from this program");
    let lowered = evaluator.lower(expr, env);
    let original = match evaluator.eval_lowered(&lowered, env) {
        Ok(v) => v,
        Err(_) => return OrderVerdict::Unknown,
    };
    for seed in 0..trials {
        let renaming = DomainRenaming::random(domain_size, seed);
        let renamed_env = renaming.apply_env(env);
        let mut evaluator =
            Evaluator::with_compiled(program, Arc::clone(&compiled), EvalLimits::default_budget())
                .expect("compiled from this program");
        match evaluator.eval_lowered(&lowered, &renamed_env) {
            Ok(renamed_result) => {
                if renaming.apply(&original) != renamed_result {
                    return OrderVerdict::ProvedDependent { witness_seed: seed };
                }
            }
            Err(_) => return OrderVerdict::Unknown,
        }
    }
    OrderVerdict::Unknown
}

/// The combined analysis: syntactic proof first, then permutation testing for
/// a counterexample.
pub fn analyze_order_dependence(
    program: &Program,
    expr: &Expr,
    env: &Env,
    domain_size: usize,
    trials: u64,
) -> OrderVerdict {
    if provably_order_independent(program, expr) {
        return OrderVerdict::ProvedIndependent;
    }
    permutation_test(program, expr, env, domain_size, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dsl::*;
    use srl_stdlib::derived::{member, union};
    use srl_stdlib::hom;

    fn atoms(items: impl IntoIterator<Item = u64>) -> Value {
        Value::set(items.into_iter().map(Value::atom))
    }

    #[test]
    fn proper_combiners_recognised() {
        assert!(combiner_is_proper(&lam("a", "b", or(var("a"), var("b")))));
        assert!(combiner_is_proper(&lam("a", "b", and(var("a"), var("b")))));
        assert!(combiner_is_proper(&lam(
            "a",
            "b",
            insert(var("a"), var("b"))
        )));
        assert!(combiner_is_proper(&lam(
            "a",
            "b",
            nat_add(var("a"), var("b"))
        )));
        assert!(combiner_is_proper(&lam(
            "a",
            "b",
            if_(leq(var("b"), var("a")), var("a"), var("b"))
        )));
        // "keep left" is not proper.
        assert!(!combiner_is_proper(&lam("a", "b", var("a"))));
        // Cons is not proper.
        assert!(!combiner_is_proper(&lam(
            "a",
            "b",
            cons(var("a"), var("b"))
        )));
    }

    #[test]
    fn nat_mul_is_proper_in_both_operand_orders() {
        assert!(combiner_is_proper(&lam(
            "a",
            "b",
            nat_mul(var("a"), var("b"))
        )));
        assert!(combiner_is_proper(&lam(
            "a",
            "b",
            nat_mul(var("b"), var("a"))
        )));
        // The randomised checker reaches the same verdict.
        assert!(combiner_seems_commutative_associative(
            &lam("a", "b", nat_mul(var("a"), var("b"))),
            64,
            4
        ));
    }

    #[test]
    fn swapped_insert_is_recognised_but_rejected() {
        // The shape is named by the classifier...
        assert_eq!(
            classify_combiner(&insert(var("b"), var("a")), "a", "b"),
            Some(CombinerKind::InsertSwapped)
        );
        // ...but it is not proper: `insert(acc, x)` nests the accumulator
        // inside each element, so the result encodes traversal order.
        assert!(!combiner_is_proper(&lam(
            "a",
            "b",
            insert(var("b"), var("a"))
        )));
        // The permutation test backs the rejection with a concrete witness:
        // folding set-valued elements with the swapped insert produces a
        // nesting that changes under a domain renaming.
        let p = Program::srl();
        let expr = set_reduce(
            var("S"),
            lam("x", "T", var("x")),
            lam("a", "b", insert(var("b"), var("a"))),
            empty_set(),
            empty_set(),
        );
        assert!(!provably_order_independent(&p, &expr));
        let env = Env::new().bind("S", Value::set([atoms([1]), atoms([2, 3])]));
        let verdict = analyze_order_dependence(&p, &expr, &env, 12, 16);
        assert!(matches!(verdict, OrderVerdict::ProvedDependent { .. }));
    }

    #[test]
    fn stdlib_queries_prove_independent() {
        let p = Program::srl();
        assert!(provably_order_independent(&p, &member(atom(1), var("S"))));
        assert!(provably_order_independent(&p, &union(var("A"), var("B"))));
        assert!(provably_order_independent(&p, &hom::even(var("S"))));
        assert!(provably_order_independent(&p, &hom::count(var("S"))));
    }

    #[test]
    fn order_observing_queries_do_not_prove() {
        let p = Program::srl();
        assert!(!provably_order_independent(
            &p,
            &hom::purple_first(var("S"), var("P"))
        ));
        assert!(!provably_order_independent(&p, &choose(var("S"))));
        assert!(!provably_order_independent(&p, &leq(atom(1), atom(2))));
    }

    #[test]
    fn algebraic_testing_agrees_with_syntax_on_common_cases() {
        assert!(combiner_seems_commutative_associative(
            &lam("a", "b", or(var("a"), var("b"))),
            64,
            1
        ));
        assert!(combiner_seems_commutative_associative(
            &lam("a", "b", nat_add(var("a"), var("b"))),
            64,
            2
        ));
        // Keep-left fails commutativity quickly.
        assert!(!combiner_seems_commutative_associative(
            &lam("a", "b", var("a")),
            64,
            3
        ));
    }

    #[test]
    fn permutation_test_finds_purple_first_witness() {
        let p = Program::srl();
        let env = Env::new().bind("S", atoms([2, 9])).bind("P", atoms([9]));
        let verdict =
            analyze_order_dependence(&p, &hom::purple_first(var("S"), var("P")), &env, 12, 16);
        assert!(matches!(verdict, OrderVerdict::ProvedDependent { .. }));
    }

    #[test]
    fn permutation_test_cannot_refute_independent_queries() {
        let p = Program::srl();
        let env = Env::new().bind("S", atoms([2, 5, 9]));
        let verdict = analyze_order_dependence(&p, &hom::even(var("S")), &env, 12, 8);
        assert_eq!(verdict, OrderVerdict::ProvedIndependent);
        // A query that is order-independent but not syntactically proper
        // (it uses choose twice in a way that cancels) stays Unknown rather
        // than being wrongly condemned.
        let cancelling = eq(choose(var("S")), choose(var("S")));
        let verdict = analyze_order_dependence(&p, &cancelling, &env, 12, 8);
        assert_eq!(verdict, OrderVerdict::Unknown);
    }
}
