//! Static set-shape inference for the columnar storage tier.
//!
//! The columnar small-atom tier of [`crate::setrepr`] engages *adaptively*
//! whenever a set turns out to hold only plain atoms. This module is the
//! **static** half of the tier selection: a conservative shape inference
//! over the lowered IR that proves, at codegen time, that an operand or a
//! fold result has type `set(atom)` — so the fused `Reduce` instructions
//! can be stamped with [`crate::bytecode::SetTier::Atom`], the VM can start
//! fold accumulators directly in columnar storage, and `srl disasm` /
//! `srl analyze` can report which folds the tier covers.
//!
//! ## Soundness budget
//!
//! The inference is deliberately *advisory*. Declared parameter types
//! ([`crate::lower::CompiledDef::param_types`]) are trusted without runtime
//! checking, and `Const` set shapes are judged by their first element — so
//! a stamp can be wrong in adversarial programs. That is safe by design:
//! the representation widens itself on the first non-atom insert
//! (`SetRepr::demote_for`), values and `EvalStats` are tier-invariant, and
//! a wrong [`SetTier::Atom`](crate::bytecode::SetTier) stamp can only cost
//! the fast path, never correctness. The differential suite
//! (`tests/tests/set_tier_differential.rs`) pins this down.
//!
//! ## What is inferred
//!
//! A small monotone type domain: `Option<Type>` where `None` means
//! "unknown shape". [`join`] combines branch results with type-variable
//! absorption (`set('a0)` — the shape of `emptyset` — joins with
//! `set(atom)` to `set(atom)`). `set-reduce` results are solved by a
//! two-iteration fixpoint of the accumulator lambda's shape; call returns
//! are memoized per callee under its declared parameter types, with a
//! cycle guard (programs are non-recursive by validation, but lowering
//! tolerates arbitrary call graphs). Lists stay out of scope (`None`):
//! the columnar tier is a set representation.

use std::collections::HashMap;

use crate::lower::{CompiledProgram, LExpr, LId, LLambda};
use crate::types::Type;
use crate::value::Value;

/// Memoized callee return shapes, shared across every inference query of
/// one codegen run. `in_progress` guards against call cycles (which
/// lowering tolerates even though validation rejects them).
#[derive(Default)]
pub(crate) struct ReturnMemo {
    memo: HashMap<u32, Option<Type>>,
    in_progress: Vec<u32>,
}

/// Shape-inference context over one node arena. Callee bodies always live
/// in the *program* arena, so [`ShapeCtx::infer`] re-roots itself there
/// when it crosses a call boundary.
pub(crate) struct ShapeCtx<'a> {
    program: &'a CompiledProgram,
    nodes: &'a [LExpr],
}

/// Joins two inferred shapes: equal shapes stand, type variables absorb
/// into anything, everything else is a conflict (`None`).
pub(crate) fn join(a: &Type, b: &Type) -> Option<Type> {
    match (a, b) {
        (Type::Var(_), t) | (t, Type::Var(_)) => Some(t.clone()),
        (Type::Bool, Type::Bool) => Some(Type::Bool),
        (Type::Atom, Type::Atom) => Some(Type::Atom),
        (Type::Nat, Type::Nat) => Some(Type::Nat),
        (Type::Set(x), Type::Set(y)) => join(x, y).map(Type::set_of),
        (Type::List(x), Type::List(y)) => join(x, y).map(Type::list_of),
        (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => xs
            .iter()
            .zip(ys)
            .map(|(x, y)| join(x, y))
            .collect::<Option<Vec<_>>>()
            .map(Type::Tuple),
        _ => None,
    }
}

fn join_opt(a: Option<Type>, b: Option<Type>) -> Option<Type> {
    match (a, b) {
        (Some(a), Some(b)) => join(&a, &b),
        _ => None,
    }
}

/// The shape of a constant. Set shapes are judged cheaply: a columnar
/// store *proves* its element shape (`set(atom)` for the scalar tiers,
/// `set(tuple(atom, …, atom))` for the arity-k row tier — that is the
/// representation invariant), any other non-empty set is judged by its
/// minimum element, and the empty set gets the polymorphic `set('a0)`.
pub(crate) fn shape_of_value(v: &Value) -> Option<Type> {
    match v {
        Value::Bool(_) => Some(Type::Bool),
        Value::Atom(_) => Some(Type::Atom),
        Value::Nat(_) => Some(Type::Nat),
        Value::Tuple(items) => items
            .iter()
            .map(shape_of_value)
            .collect::<Option<Vec<_>>>()
            .map(Type::Tuple),
        Value::Set(items) => {
            if let Some(arity) = items.rows_arity() {
                return Some(Type::relation(arity));
            }
            if items.is_columnar() {
                return Some(Type::set_of(Type::Atom));
            }
            match items.first() {
                None => Some(Type::set_of(Type::Var(0))),
                Some(first) => shape_of_value(&first).map(Type::set_of),
            }
        }
        Value::List(_) => None,
    }
}

impl<'a> ShapeCtx<'a> {
    /// A context over `nodes` (a program arena or an expression arena
    /// lowered against `program`).
    pub(crate) fn new(program: &'a CompiledProgram, nodes: &'a [LExpr]) -> Self {
        ShapeCtx { program, nodes }
    }

    /// Infers the shape of node `id` under the lexical slot shapes in
    /// `slots` (absolute frame indices, like [`LExpr::Local`]). `slots` is
    /// used as a stack — binders push and pop — and is restored on return.
    pub(crate) fn infer(
        &self,
        id: LId,
        slots: &mut Vec<Option<Type>>,
        memo: &mut ReturnMemo,
    ) -> Option<Type> {
        match &self.nodes[id.index()] {
            LExpr::Bool(_) | LExpr::Eq(..) | LExpr::Leq(..) => Some(Type::Bool),
            LExpr::Const(v) => shape_of_value(v),
            LExpr::Local(n) => slots.get(*n as usize).cloned().flatten(),
            LExpr::UnboundVar(_) | LExpr::CallUnknown(_) => None,
            LExpr::If(_, t, e) => {
                let tt = self.infer(*t, slots, memo);
                let ee = self.infer(*e, slots, memo);
                join_opt(tt, ee)
            }
            LExpr::Tuple(items) => items
                .iter()
                .map(|i| self.infer(*i, slots, memo))
                .collect::<Option<Vec<_>>>()
                .map(Type::Tuple),
            LExpr::Sel(i, e) => match self.infer(*e, slots, memo) {
                Some(Type::Tuple(ts)) => i.checked_sub(1).and_then(|k| ts.into_iter().nth(k)),
                _ => None,
            },
            LExpr::EmptySet => Some(Type::set_of(Type::Var(0))),
            LExpr::Insert(e, s) => {
                let et = self.infer(*e, slots, memo)?;
                match self.infer(*s, slots, memo)? {
                    Type::Set(inner) => join(&inner, &et).map(Type::set_of),
                    _ => None,
                }
            }
            LExpr::Choose(s) => match self.infer(*s, slots, memo)? {
                Type::Set(inner) => match *inner {
                    Type::Var(_) => None,
                    t => Some(t),
                },
                _ => None,
            },
            // `rest` preserves the set type.
            LExpr::Rest(s) => self.infer(*s, slots, memo),
            LExpr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            } => {
                let set_ty = self.infer(*set, slots, memo);
                self.reduce_result(set_ty.as_ref(), app, acc, *base, *extra, slots, memo)
            }
            LExpr::Call { def, .. } => self.callee_return(*def, memo),
            LExpr::Let { value, body } => {
                let vt = self.infer(*value, slots, memo);
                slots.push(vt);
                let bt = self.infer(*body, slots, memo);
                slots.pop();
                bt
            }
            LExpr::New(_) => Some(Type::Atom),
            LExpr::NatConst(_) | LExpr::Succ(_) | LExpr::NatAdd(..) | LExpr::NatMul(..) => {
                Some(Type::Nat)
            }
            LExpr::EmptyList
            | LExpr::Cons(..)
            | LExpr::Head(_)
            | LExpr::Tail(_)
            | LExpr::ListReduce { .. } => None,
        }
    }

    /// The element shape of a set shape (`None` when it is unknown or still
    /// polymorphic).
    pub(crate) fn elem_of(set_ty: Option<&Type>) -> Option<Type> {
        match set_ty {
            Some(Type::Set(inner)) => match &**inner {
                Type::Var(_) => None,
                t => Some(t.clone()),
            },
            _ => None,
        }
    }

    /// The shape of a fold's `app` result: the `app` lambda body under
    /// `x = element`, `y = extra`.
    pub(crate) fn app_result(
        &self,
        elem: Option<Type>,
        extra_ty: Option<Type>,
        app: &LLambda,
        slots: &mut Vec<Option<Type>>,
        memo: &mut ReturnMemo,
    ) -> Option<Type> {
        slots.push(elem);
        slots.push(extra_ty);
        let t = self.infer(app.body, slots, memo);
        slots.pop();
        slots.pop();
        t
    }

    /// The shape of a whole `set-reduce`: a two-iteration fixpoint of the
    /// accumulator lambda's shape over `x = app result`, `y = running
    /// result`, seeded with the base shape. Two iterations suffice: the
    /// first resolves the base's type variables against the step shape,
    /// the second either confirms stability or collapses to `None`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reduce_result(
        &self,
        set_ty: Option<&Type>,
        app: &LLambda,
        acc: &LLambda,
        base: LId,
        extra: LId,
        slots: &mut Vec<Option<Type>>,
        memo: &mut ReturnMemo,
    ) -> Option<Type> {
        let elem = Self::elem_of(set_ty);
        let extra_ty = self.infer(extra, slots, memo);
        let app_ty = self.app_result(elem, extra_ty, app, slots, memo);
        let mut result = self.infer(base, slots, memo);
        for _ in 0..2 {
            slots.push(app_ty.clone());
            slots.push(result.clone());
            let step = self.infer(acc.body, slots, memo);
            slots.pop();
            slots.pop();
            let joined = join_opt(result.clone(), step);
            if joined == result {
                break;
            }
            result = joined;
        }
        result
    }

    /// The memoized return shape of definition `def`, inferred from its
    /// body under its *declared* parameter types (untyped parameters are
    /// unknown). Cycle-guarded: a re-entrant query answers `None`.
    fn callee_return(&self, def: u32, memo: &mut ReturnMemo) -> Option<Type> {
        if let Some(t) = memo.memo.get(&def) {
            return t.clone();
        }
        if memo.in_progress.contains(&def) {
            return None;
        }
        let d = self.program.defs().get(def as usize)?;
        let mut slots: Vec<Option<Type>> = d.param_types.clone();
        let body = d.body;
        memo.in_progress.push(def);
        let callee_ctx = ShapeCtx::new(self.program, self.program.nodes());
        let ret = callee_ctx.infer(body, &mut slots, memo);
        memo.in_progress.pop();
        memo.memo.insert(def, ret.clone());
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::program::Program;

    fn infer_expr(e: &crate::ast::Expr, scope: &[(&str, Option<Type>)]) -> Option<Type> {
        let p = Program::srl();
        let c = p.compile();
        let names: Vec<&str> = scope.iter().map(|(n, _)| *n).collect();
        let lowered = c.lower_expr(e, &names);
        let ctx = ShapeCtx::new(&c, lowered.nodes());
        let mut slots: Vec<Option<Type>> = scope.iter().map(|(_, t)| t.clone()).collect();
        ctx.infer(lowered.root(), &mut slots, &mut ReturnMemo::default())
    }

    #[test]
    fn constants_and_primitives_have_their_obvious_shapes() {
        assert_eq!(infer_expr(&atom(3), &[]), Some(Type::Atom));
        assert_eq!(infer_expr(&bool_(true), &[]), Some(Type::Bool));
        assert_eq!(
            infer_expr(&empty_set(), &[]),
            Some(Type::set_of(Type::Var(0)))
        );
        assert_eq!(infer_expr(&eq(atom(1), atom(2)), &[]), Some(Type::Bool));
    }

    #[test]
    fn insert_resolves_the_empty_set_variable() {
        let e = insert(atom(1), empty_set());
        assert_eq!(infer_expr(&e, &[]), Some(Type::set_of(Type::Atom)));
        // Conflicting element shapes collapse to unknown.
        let e = insert(atom(1), insert(tuple([atom(1), atom(2)]), empty_set()));
        assert_eq!(infer_expr(&e, &[]), None);
    }

    #[test]
    fn declared_slots_flow_through_let_choose_and_rest() {
        let s = Some(Type::set_of(Type::Atom));
        assert_eq!(
            infer_expr(&choose(var("S")), &[("S", s.clone())]),
            Some(Type::Atom)
        );
        assert_eq!(infer_expr(&rest(var("S")), &[("S", s.clone())]), s.clone());
        let e = let_in("a", choose(var("S")), insert(var("a"), empty_set()));
        assert_eq!(infer_expr(&e, &[("S", s)]), Some(Type::set_of(Type::Atom)));
    }

    #[test]
    fn fold_results_fixpoint_over_the_accumulator_shape() {
        // A union-of-atoms fold over a declared set(atom): set(atom).
        let e = set_reduce(
            var("S"),
            lam("x", "e", var("x")),
            lam("x", "y", insert(var("x"), var("y"))),
            empty_set(),
            empty_set(),
        );
        assert_eq!(
            infer_expr(&e, &[("S", Some(Type::set_of(Type::Atom)))]),
            Some(Type::set_of(Type::Atom))
        );
        // The same fold over an undeclared set: unknown.
        assert_eq!(infer_expr(&e, &[("S", None)]), None);
        // A projection fold producing tuples is not set(atom).
        let e = set_reduce(
            var("S"),
            lam("x", "e", tuple([var("x"), var("x")])),
            lam("x", "y", insert(var("x"), var("y"))),
            empty_set(),
            empty_set(),
        );
        assert_eq!(
            infer_expr(&e, &[("S", Some(Type::set_of(Type::Atom)))]),
            Some(Type::set_of(Type::tuple_of([Type::Atom, Type::Atom])))
        );
    }

    #[test]
    fn call_returns_are_inferred_under_declared_param_types() {
        let p = Program::srl()
            .define_typed(
                "firsts",
                [("R", Type::relation(2))],
                set_reduce(
                    var("R"),
                    lam("t", "e", sel(var("t"), 1)),
                    lam("x", "y", insert(var("x"), var("y"))),
                    empty_set(),
                    empty_set(),
                ),
            )
            .define("untyped", ["R"], var("R"));
        let c = p.compile();
        let e = call("firsts", [var("R")]);
        let lowered = c.lower_expr(&e, &["R"]);
        let ctx = ShapeCtx::new(&c, lowered.nodes());
        let mut memo = ReturnMemo::default();
        assert_eq!(
            ctx.infer(lowered.root(), &mut vec![None], &mut memo),
            Some(Type::set_of(Type::Atom))
        );
        // Memoized: a second query hits the cache.
        assert_eq!(
            ctx.infer(lowered.root(), &mut vec![None], &mut memo),
            Some(Type::set_of(Type::Atom))
        );
        // The untyped definition's parameter shape is unknown.
        let e = call("untyped", [var("R")]);
        let lowered = c.lower_expr(&e, &["R"]);
        let ctx = ShapeCtx::new(&c, lowered.nodes());
        assert_eq!(ctx.infer(lowered.root(), &mut vec![None], &mut memo), None);
    }

    #[test]
    fn join_absorbs_variables_and_rejects_conflicts() {
        assert_eq!(
            join(&Type::set_of(Type::Var(0)), &Type::set_of(Type::Atom)),
            Some(Type::set_of(Type::Atom))
        );
        assert_eq!(join(&Type::Atom, &Type::Nat), None);
        assert_eq!(
            join(
                &Type::tuple_of([Type::Atom, Type::Var(1)]),
                &Type::tuple_of([Type::Atom, Type::Bool])
            ),
            Some(Type::tuple_of([Type::Atom, Type::Bool]))
        );
    }

    #[test]
    fn columnar_constants_prove_set_of_atom() {
        let dense = Value::set((0..100).map(Value::atom));
        assert_eq!(shape_of_value(&dense), Some(Type::set_of(Type::Atom)));
    }
}
