//! The versioned request/response wire contract (`v: 1`).
//!
//! Before this module, every consumer of the engine invented its own JSON:
//! the CLI hand-rolled `--json` objects in `main.rs`, the bench report had a
//! second emitter, and a serving front end would have needed a third. This
//! module is now the **single** definition of the wire format — the `srl`
//! CLI (`run`/`check`/`analyze --json`) and the `srl-serve` line-protocol
//! server both render through it, so a field added here shows up everywhere
//! and a field renamed here fails every golden at once.
//!
//! ## The contract
//!
//! Every body is a JSON object whose first field is the protocol version,
//! [`PROTOCOL_VERSION`] (`"v": 1`). Success bodies carry the payload fields
//! of their request kind (`result`/`stats`/`tiers` for `run`, `ok`/
//! `definitions`/`fragment`/`explanation` for `check`, …); failure bodies
//! carry an `error` object:
//!
//! ```json
//! { "v": 1,
//!   "error": { "kind": "deadline_exceeded", "message": "…", "exit": 7 },
//!   "stats": { …partial stats of the interrupted run… } }
//! ```
//!
//! `kind` is the stable [`EvalError::kind`] taxonomy extended with the
//! frontend kinds `"parse"` / `"check"` and the server kinds `"proto"` /
//! `"overloaded"`; `exit` is the documented CLI exit code for that family
//! (the server echoes the code the same query would have exited with
//! locally, so clients can branch on one table — see [`exit_code`]).
//!
//! Field order is **stable and load-bearing**: CI diffs rendered bodies
//! byte-for-byte across execution backends and thread counts, and the
//! committed `examples/srl/analysis/*.analyze.json` goldens pin the
//! `analyze` shape. Renderers here emit the human-readable multi-line form;
//! the line-protocol server passes bodies through [`compact`] so each
//! response occupies exactly one line.
//!
//! The module also contains the other half of the wire: a small
//! dependency-free JSON **parser** ([`Json`]) and the typed [`Request`]
//! envelope the server accepts (`kind` = `run` / `check` / `analyze` /
//! `bind` / `stats`), plus [`PipelineConfig`] deserialization
//! ([`pipeline_config_from_json`]) for per-tenant configuration files.

use crate::error::EvalError;
use crate::eval::TierEngagements;
use crate::limits::{EvalLimits, EvalStats};
use crate::pipeline::{PipelineConfig, TypePolicy};
use crate::value::Value;
use crate::Dialect;

/// The wire protocol version every body opens with (`"v": 1`).
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Exit-code taxonomy
// ---------------------------------------------------------------------------

/// Success.
pub const EXIT_OK: u8 = 0;
/// Usage or I/O error (CLI) / malformed protocol request (server).
pub const EXIT_USAGE: u8 = 2;
/// The program text did not parse.
pub const EXIT_PARSE: u8 = 3;
/// The program failed validation or type checking.
pub const EXIT_CHECK: u8 = 4;
/// A runtime evaluation error (shape, unbound name, empty choose, …).
pub const EXIT_RUNTIME: u8 = 5;
/// A deterministic resource budget ([`EvalLimits`]) was exhausted.
pub const EXIT_LIMIT: u8 = 6;
/// The wall-clock deadline fired or the query was cancelled.
pub const EXIT_TIMEOUT: u8 = 7;
/// An internal error (e.g. a panicked worker, isolated at the pool).
pub const EXIT_INTERNAL: u8 = 8;
/// Server only: the query was shed because the in-flight bound was reached.
/// Never a process exit code — it exists so `overloaded` responses carry a
/// code disjoint from every local failure family.
pub const EXIT_OVERLOADED: u8 = 9;

/// The exit code of an evaluation error, per the documented contract
/// (timeout family 7, internal 8, deterministic limits 6, the rest 5).
pub fn exit_code(e: &EvalError) -> u8 {
    match e {
        EvalError::Cancelled | EvalError::DeadlineExceeded { .. } => EXIT_TIMEOUT,
        EvalError::Internal { .. } => EXIT_INTERNAL,
        e if e.is_limit() => EXIT_LIMIT,
        _ => EXIT_RUNTIME,
    }
}

// ---------------------------------------------------------------------------
// Response rendering (stable field order)
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a versioned body: `"v": 1` first, then each `(name, value)`
/// field in order, one per line, values pre-rendered JSON.
pub fn versioned(fields: &[(&str, String)]) -> String {
    let mut out = format!("{{\n  \"v\": {PROTOCOL_VERSION}");
    for (name, value) in fields {
        out.push_str(&format!(",\n  \"{name}\": {value}"));
    }
    out.push_str("\n}");
    out
}

/// The `EvalStats` object, fields in the pinned order (byte-identical
/// across backends and thread counts by the stats-determinism contract).
pub fn stats_json(stats: &EvalStats) -> String {
    format!(
        "{{ \"steps\": {}, \"reduce_iterations\": {}, \"inserts\": {}, \"max_value_weight\": {}, \"max_accumulator_weight\": {}, \"max_depth\": {}, \"new_values\": {} }}",
        stats.steps,
        stats.reduce_iterations,
        stats.inserts,
        stats.max_value_weight,
        stats.max_accumulator_weight,
        stats.max_depth,
        stats.new_values
    )
}

/// The per-tier engagement breakdown (stats-adjacent diagnostics: which
/// folds ran on which columnar storage tier).
pub fn tiers_json(tiers: &TierEngagements) -> String {
    format!(
        "{{ \"atoms\": {}, \"bits\": {}, \"rows\": {} }}",
        tiers.atoms, tiers.bits, tiers.rows
    )
}

/// A successful `run` body: result, stats, tier engagements, then any
/// caller extras (the server appends `cache` and an echoed `id`; the CLI
/// appends nothing, keeping its output a strict prefix of the server's).
pub fn run_json(
    value: &Value,
    stats: &EvalStats,
    tiers: &TierEngagements,
    extras: &[(&str, String)],
) -> String {
    let mut fields = vec![
        ("result", format!("\"{}\"", escape(&value.to_string()))),
        ("stats", stats_json(stats)),
        ("tiers", tiers_json(tiers)),
    ];
    fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    versioned(&fields)
}

/// A failure body: the error object (stable `kind` taxonomy + exit code),
/// the partial stats of the interrupted run when the evaluator kept them,
/// then any caller extras.
pub fn error_json(
    kind: &str,
    message: &str,
    exit: u8,
    partial: Option<&EvalStats>,
    extras: &[(&str, String)],
) -> String {
    let mut fields = vec![(
        "error",
        format!(
            "{{ \"kind\": \"{}\", \"message\": \"{}\", \"exit\": {exit} }}",
            escape(kind),
            escape(message)
        ),
    )];
    if let Some(stats) = partial {
        fields.push(("stats", stats_json(stats)));
    }
    fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    versioned(&fields)
}

/// A successful `check` body: `ok`, the definition names, the Section 6
/// fragment and its explanation.
pub fn check_json(
    definitions: &[&str],
    fragment: &str,
    explanation: &str,
    extras: &[(&str, String)],
) -> String {
    let names: Vec<String> = definitions
        .iter()
        .map(|n| format!("\"{}\"", escape(n)))
        .collect();
    let mut fields = vec![
        ("ok", "true".to_string()),
        ("definitions", format!("[{}]", names.join(", "))),
        ("fragment", format!("\"{}\"", escape(fragment))),
        ("explanation", format!("\"{}\"", escape(explanation))),
    ];
    fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    versioned(&fields)
}

/// Collapses a pretty-rendered body onto one line for the line protocol:
/// newlines and the indentation after them are dropped, everything inside
/// string literals is preserved verbatim (rendered strings never contain a
/// raw newline — [`escape`] guarantees it — so this is exact).
pub fn compact(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut in_str = false;
    let mut escaped = false;
    let mut skipping = false;
    for c in json.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '\n' => skipping = true,
            ' ' if skipping => {}
            c => {
                skipping = false;
                if c == '"' {
                    in_str = true;
                }
                out.push(c);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

/// Maximum nesting depth [`Json::parse`] accepts — requests come from the
/// network, so a bracket bomb must fail structurally, not by stack overflow.
const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value. Objects keep their field order (the wire contract
/// is order-sensitive on output; on input the order is merely preserved for
/// error messages).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53, ample for the wire).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Scan a run of plain (non-escape, non-quote) bytes at once so
            // multi-byte UTF-8 passes through untouched.
            let run_start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // A high surrogate must be followed by
                                // `\uDCxx`; combine the pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(format!("raw control byte 0x{b:02x} in string")),
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// What a request asks the server to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// Compile (through the per-tenant cache) and evaluate.
    Run,
    /// Parse, validate and classify a program.
    Check,
    /// The per-fold classification report.
    Analyze,
    /// Bind an input name to a value in the tenant environment.
    Bind,
    /// Tenant/server statistics (cache counters, shed count, …).
    Stats,
}

impl RequestKind {
    /// The wire name of the kind.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Run => "run",
            RequestKind::Check => "check",
            RequestKind::Analyze => "analyze",
            RequestKind::Bind => "bind",
            RequestKind::Stats => "stats",
        }
    }
}

/// One parsed line-protocol request.
///
/// ```json
/// {"v": 1, "kind": "run", "tenant": "alice", "id": 7,
///  "program": "main() = …", "call": "main", "args": ["{d1, d2}"]}
/// {"v": 1, "kind": "run", "expr": "union(S, {d9})"}
/// {"v": 1, "kind": "bind", "name": "S", "value": "{d1, d2}"}
/// {"v": 1, "kind": "stats"}
/// ```
///
/// `program`, `args` elements, `expr` and `value` carry SRL surface syntax
/// (the same value-literal grammar `srl run --arg` accepts); the JSON layer
/// never interprets them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Request {
    /// What to do.
    pub kind: Option<RequestKind>,
    /// Request id, echoed verbatim into the response when present.
    pub id: Option<u64>,
    /// Tenant name; the server's default tenant when absent.
    pub tenant: Option<String>,
    /// SRL program text (definitions), for `run`/`check`/`analyze`.
    pub program: Option<String>,
    /// Definition to call (`run`); defaults to a zero-parameter `main`.
    pub call: Option<String>,
    /// Value-literal arguments for `call`.
    pub args: Vec<String>,
    /// Expression to evaluate against the tenant environment (`run`);
    /// mutually exclusive with `call`.
    pub expr: Option<String>,
    /// Input name to bind (`bind`).
    pub name: Option<String>,
    /// Value literal to bind (`bind`).
    pub value: Option<String>,
}

impl Request {
    /// The request kind, defaulted for error paths.
    fn kind_field(kind: &Json) -> Result<RequestKind, String> {
        match kind.as_str() {
            Some("run") => Ok(RequestKind::Run),
            Some("check") => Ok(RequestKind::Check),
            Some("analyze") => Ok(RequestKind::Analyze),
            Some("bind") => Ok(RequestKind::Bind),
            Some("stats") => Ok(RequestKind::Stats),
            Some(other) => Err(format!(
                "unknown kind `{other}` (expected run|check|analyze|bind|stats)"
            )),
            None => Err("\"kind\" must be a string".to_string()),
        }
    }

    /// Parses one request line. Rejects unknown versions, unknown kinds and
    /// unknown fields (a typo like `"porgram"` should fail loudly, not run
    /// an empty program).
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line)?;
        let Some(fields) = json.as_object() else {
            return Err("a request is a JSON object".to_string());
        };
        match json.get("v").and_then(Json::as_u64) {
            Some(v) if v as u32 == PROTOCOL_VERSION => {}
            Some(v) => return Err(format!("unsupported protocol version {v} (this is v1)")),
            None => return Err("missing protocol version (\"v\": 1)".to_string()),
        }
        let mut request = Request::default();
        for (key, value) in fields {
            match key.as_str() {
                "v" => {}
                "kind" => request.kind = Some(Self::kind_field(value)?),
                "id" => {
                    request.id = Some(
                        value
                            .as_u64()
                            .ok_or("\"id\" must be a non-negative integer")?,
                    )
                }
                "tenant" => {
                    request.tenant = Some(
                        value
                            .as_str()
                            .ok_or("\"tenant\" must be a string")?
                            .to_string(),
                    )
                }
                "program" => {
                    request.program = Some(
                        value
                            .as_str()
                            .ok_or("\"program\" must be a string")?
                            .to_string(),
                    )
                }
                "call" => {
                    request.call = Some(
                        value
                            .as_str()
                            .ok_or("\"call\" must be a string")?
                            .to_string(),
                    )
                }
                "expr" => {
                    request.expr = Some(
                        value
                            .as_str()
                            .ok_or("\"expr\" must be a string")?
                            .to_string(),
                    )
                }
                "name" => {
                    request.name = Some(
                        value
                            .as_str()
                            .ok_or("\"name\" must be a string")?
                            .to_string(),
                    )
                }
                "value" => {
                    request.value = Some(
                        value
                            .as_str()
                            .ok_or("\"value\" must be a string")?
                            .to_string(),
                    )
                }
                "args" => {
                    let items = value.as_array().ok_or("\"args\" must be an array")?;
                    for item in items {
                        request.args.push(
                            item.as_str()
                                .ok_or("\"args\" elements must be strings")?
                                .to_string(),
                        );
                    }
                }
                other => return Err(format!("unknown request field \"{other}\"")),
            }
        }
        if request.kind.is_none() {
            return Err("missing \"kind\"".to_string());
        }
        Ok(request)
    }
}

// ---------------------------------------------------------------------------
// PipelineConfig deserialization
// ---------------------------------------------------------------------------

/// Parses a [`PipelineConfig`] from its JSON object form — the per-tenant
/// configuration unit of a serving deployment:
///
/// ```json
/// { "dialect": "srl", "type_policy": "require", "limits": "small",
///   "max_steps": 100000, "deadline_ms": 250, "threads": 2,
///   "backend": "vm", "tiers": true }
/// ```
///
/// Every field is optional (the default is [`PipelineConfig::default`]);
/// unknown fields are rejected.
pub fn pipeline_config_from_json(json: &Json) -> Result<PipelineConfig, String> {
    let Some(fields) = json.as_object() else {
        return Err("a pipeline config is a JSON object".to_string());
    };
    let mut config = PipelineConfig::default();
    for (key, value) in fields {
        match key.as_str() {
            "dialect" => {
                config.dialect = Some(match value.as_str() {
                    Some("srl") => Dialect::srl(),
                    Some("basrl") => Dialect::basrl(),
                    Some("lrl") => Dialect::lrl(),
                    Some("srl+new") => Dialect::srl_new(),
                    Some("srl+add") => Dialect::srl_with_addition(),
                    Some("srl+arith") => Dialect::srl_with_arithmetic(),
                    Some("unrestricted") => Dialect::unrestricted(),
                    Some("full") => Dialect::full(),
                    other => {
                        return Err(format!(
                            "unknown dialect {other:?} (expected srl|basrl|lrl|srl+new|srl+add|srl+arith|unrestricted|full)"
                        ))
                    }
                });
            }
            "type_policy" => {
                config.type_policy = match value.as_str() {
                    Some("require") => TypePolicy::Require,
                    Some("if-typed") => TypePolicy::IfTyped,
                    Some("skip") => TypePolicy::Skip,
                    other => {
                        return Err(format!(
                            "unknown type_policy {other:?} (expected require|if-typed|skip)"
                        ))
                    }
                };
            }
            "limits" => {
                let deadline = config.limits.deadline;
                config.limits = match value.as_str() {
                    Some("default") => EvalLimits::default(),
                    Some("small") => EvalLimits::small(),
                    Some("benchmark") => EvalLimits::benchmark(),
                    other => {
                        return Err(format!(
                            "unknown limits preset {other:?} (expected default|small|benchmark)"
                        ))
                    }
                }
                .with_deadline(deadline);
            }
            "max_steps" => {
                let steps = value.as_u64().ok_or("\"max_steps\" must be an integer")?;
                config.limits = config.limits.with_max_steps(steps);
            }
            "deadline_ms" => {
                let ms = value.as_u64().ok_or("\"deadline_ms\" must be an integer")?;
                config.limits = if ms == 0 {
                    config.limits.with_deadline(None)
                } else {
                    config.limits.with_deadline_ms(ms)
                };
            }
            "threads" => {
                let n = value.as_u64().ok_or("\"threads\" must be an integer")?;
                if n == 0 {
                    return Err("\"threads\" must be at least 1".to_string());
                }
                config = config.threads(n as usize);
            }
            "backend" => {
                config.backend = match value.as_str() {
                    Some("vm") => crate::ExecBackend::vm_with_threads(config.backend.threads()),
                    Some("tree") | Some("tree-walk") => crate::ExecBackend::TreeWalk,
                    other => return Err(format!("unknown backend {other:?} (expected vm|tree)")),
                };
            }
            "tiers" => {
                config.tiers = value.as_bool().ok_or("\"tiers\" must be a boolean")?;
            }
            other => return Err(format!("unknown pipeline-config field \"{other}\"")),
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioned_bodies_open_with_the_protocol_version() {
        let body = versioned(&[("ok", "true".to_string())]);
        assert!(body.starts_with("{\n  \"v\": 1,\n  \"ok\": true"), "{body}");
        assert!(body.ends_with("\n}"), "{body}");
    }

    #[test]
    fn stats_fields_keep_the_pinned_order() {
        let json = stats_json(&EvalStats::default());
        let steps = json.find("\"steps\"").unwrap();
        let iters = json.find("\"reduce_iterations\"").unwrap();
        let new_values = json.find("\"new_values\"").unwrap();
        assert!(steps < iters && iters < new_values);
    }

    #[test]
    fn run_bodies_order_result_stats_tiers_then_extras() {
        let body = run_json(
            &Value::atom(3),
            &EvalStats::default(),
            &TierEngagements::default(),
            &[("cache", "{ \"hit\": true }".to_string())],
        );
        let v = body.find("\"v\"").unwrap();
        let result = body.find("\"result\"").unwrap();
        let stats = body.find("\"stats\"").unwrap();
        let tiers = body.find("\"tiers\"").unwrap();
        let cache = body.find("\"cache\"").unwrap();
        assert!(v < result && result < stats && stats < tiers && tiers < cache);
    }

    #[test]
    fn error_bodies_carry_kind_exit_and_optional_partial_stats() {
        let body = error_json("deadline_exceeded", "too slow", EXIT_TIMEOUT, None, &[]);
        assert!(body.contains("\"kind\": \"deadline_exceeded\""));
        assert!(body.contains("\"exit\": 7"));
        assert!(!body.contains("\"stats\""));
        let stats = EvalStats {
            steps: 9,
            ..EvalStats::default()
        };
        let body = error_json("cancelled", "stop", EXIT_TIMEOUT, Some(&stats), &[]);
        assert!(body.contains("\"steps\": 9"));
        assert!(body.find("\"error\"").unwrap() < body.find("\"stats\"").unwrap());
    }

    #[test]
    fn exit_codes_follow_the_documented_contract() {
        assert_eq!(exit_code(&EvalError::Cancelled), EXIT_TIMEOUT);
        assert_eq!(
            exit_code(&EvalError::DeadlineExceeded { limit_ms: 10 }),
            EXIT_TIMEOUT
        );
        assert_eq!(
            exit_code(&EvalError::Internal {
                detail: "boom".into()
            }),
            EXIT_INTERNAL
        );
        assert_eq!(
            exit_code(&EvalError::StepLimitExceeded { limit: 1 }),
            EXIT_LIMIT
        );
        assert_eq!(
            exit_code(&EvalError::UnboundVariable("x".into())),
            EXIT_RUNTIME
        );
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_control_bytes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn compact_collapses_rendered_bodies_onto_one_line() {
        let body = run_json(
            &Value::atom(3),
            &EvalStats::default(),
            &TierEngagements::default(),
            &[],
        );
        let line = compact(&body);
        assert!(!line.contains('\n'));
        // Round-trips through the parser as the same structure.
        assert_eq!(Json::parse(&line), Json::parse(&body));
        // Inline spacing inside objects survives; indentation does not.
        assert!(line.starts_with("{\"v\": 1,\"result\""), "{line}");
    }

    #[test]
    fn compact_preserves_string_contents_exactly() {
        let tricky = "with \\n escape, \\\" quote, and   spaces";
        let body = versioned(&[("s", format!("\"{tricky}\""))]);
        assert!(compact(&body).contains(tricky));
    }

    #[test]
    fn json_parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("\"a\\u0041\\n\"").unwrap(),
            Json::Str("aA\n".to_string())
        );
        assert_eq!(
            Json::parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(vec![])
            ])
        );
        let obj = Json::parse("{\"a\": 1, \"b\": \"x\"}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(obj.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn json_surrogate_pairs_combine() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
        // A bracket bomb fails structurally, not by stack overflow.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn requests_parse_with_every_field() {
        let line = "{\"v\": 1, \"kind\": \"run\", \"id\": 7, \"tenant\": \"alice\", \
                    \"program\": \"main() = choose({d1})\", \"call\": \"main\", \
                    \"args\": [\"d3\", \"{d1, d2}\"]}";
        let request = Request::parse(line).unwrap();
        assert_eq!(request.kind, Some(RequestKind::Run));
        assert_eq!(request.id, Some(7));
        assert_eq!(request.tenant.as_deref(), Some("alice"));
        assert_eq!(request.call.as_deref(), Some("main"));
        assert_eq!(request.args, vec!["d3", "{d1, d2}"]);
    }

    #[test]
    fn requests_reject_bad_versions_kinds_and_unknown_fields() {
        let err = Request::parse("{\"kind\": \"run\"}").unwrap_err();
        assert!(err.contains("version"), "{err}");
        let err = Request::parse("{\"v\": 2, \"kind\": \"run\"}").unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
        let err = Request::parse("{\"v\": 1, \"kind\": \"destroy\"}").unwrap_err();
        assert!(err.contains("destroy"), "{err}");
        let err = Request::parse("{\"v\": 1}").unwrap_err();
        assert!(err.contains("kind"), "{err}");
        let err = Request::parse("{\"v\": 1, \"kind\": \"run\", \"porgram\": \"x\"}").unwrap_err();
        assert!(err.contains("porgram"), "{err}");
        assert!(Request::parse("[]").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn pipeline_config_parses_every_field() {
        let json = Json::parse(
            "{\"dialect\": \"basrl\", \"type_policy\": \"skip\", \"limits\": \"small\", \
             \"max_steps\": 1234, \"deadline_ms\": 250, \"threads\": 2, \"tiers\": false}",
        )
        .unwrap();
        let config = pipeline_config_from_json(&json).unwrap();
        assert_eq!(config.dialect, Some(Dialect::basrl()));
        assert_eq!(config.type_policy, TypePolicy::Skip);
        assert_eq!(config.limits.max_steps, 1234);
        assert_eq!(
            config.limits.deadline,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(config.backend, crate::ExecBackend::vm_with_threads(2));
        assert!(!config.tiers);
    }

    #[test]
    fn pipeline_config_deadline_survives_a_later_limits_preset() {
        let json = Json::parse("{\"deadline_ms\": 99, \"limits\": \"benchmark\"}").unwrap();
        let config = pipeline_config_from_json(&json).unwrap();
        assert_eq!(
            config.limits,
            EvalLimits::benchmark().with_deadline_ms(99),
            "field order in the config file must not matter"
        );
    }

    #[test]
    fn pipeline_config_rejects_unknown_fields_and_values() {
        for bad in [
            "{\"dialect\": \"klingon\"}",
            "{\"type_policy\": \"maybe\"}",
            "{\"limits\": \"huge\"}",
            "{\"threads\": 0}",
            "{\"wat\": 1}",
            "[]",
        ] {
            let json = Json::parse(bad).unwrap();
            assert!(pipeline_config_from_json(&json).is_err(), "{bad}");
        }
    }

    #[test]
    fn empty_config_is_the_default() {
        let json = Json::parse("{}").unwrap();
        let config = pipeline_config_from_json(&json).unwrap();
        assert_eq!(config.type_policy, PipelineConfig::default().type_policy);
        assert_eq!(config.limits, PipelineConfig::default().limits);
        assert!(config.tiers);
    }
}
