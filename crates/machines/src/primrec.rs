//! Primitive recursive function terms.
//!
//! Section 5 of the paper (Theorem 5.2) shows that unrestricted SRL with an
//! unbounded successor — `SRL + new` — expresses exactly the primitive
//! recursive functions, and Corollary 5.5 does the same for the list variant
//! LRL. To test that reproduction we need an independent, executable notion
//! of "primitive recursive function": this module provides PR terms built
//! from the initial functions (zero, successor, projections) by composition
//! and primitive recursion (Definition 5.1), together with an evaluator over
//! [`BigNat`] and a library of standard functions (addition, multiplication,
//! exponentiation, predecessor, monus, the paper's `Bit`/`Div`/`Mod`/`Log`/
//! `Rlog`/`Cond` of Fact 5.4).

use std::fmt;

use srl_core::bignat::BigNat;

/// A primitive recursive function term of a fixed arity.
///
/// Arity discipline follows Definition 5.1 generalised to k-ary functions in
/// the standard way:
///
/// * `Zero(k)` is the k-ary constant-zero function;
/// * `Succ` is unary;
/// * `Proj(k, i)` is the k-ary projection onto argument `i` (0-based);
/// * `Compose(f, gs)` where `f` is m-ary and every `g ∈ gs` is k-ary is the
///   k-ary function `f(g₁(x̄), …, g_m(x̄))`;
/// * `PrimRec(g, h)` where `g` is k-ary and `h` is (k+2)-ary is the (k+1)-ary
///   function defined by
///   `f(0, ȳ) = g(ȳ)` and `f(s+1, ȳ) = h(s, ȳ, f(s, ȳ))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrTerm {
    /// The k-ary constant zero.
    Zero(usize),
    /// The unary successor.
    Succ,
    /// The k-ary projection onto argument `i` (0-based).
    Proj(usize, usize),
    /// Composition `f ∘ (g₁, …, g_m)`.
    Compose(Box<PrTerm>, Vec<PrTerm>),
    /// Primitive recursion from `g` (base) and `h` (step).
    PrimRec(Box<PrTerm>, Box<PrTerm>),
}

/// Errors raised when a term is ill-formed or evaluation exceeds a budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrError {
    /// The term's arity does not match the supplied arguments (or the arity
    /// discipline is internally violated).
    ArityMismatch {
        /// What the term expected.
        expected: usize,
        /// What it received.
        found: usize,
    },
    /// A projection index was out of range.
    BadProjection {
        /// Declared arity.
        arity: usize,
        /// Offending index.
        index: usize,
    },
    /// Evaluation exceeded the step budget (primitive recursion on large
    /// arguments can be astronomically slow; the budget keeps tests finite).
    BudgetExceeded,
}

impl fmt::Display for PrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            PrError::BadProjection { arity, index } => {
                write!(f, "projection index {index} out of range for arity {arity}")
            }
            PrError::BudgetExceeded => write!(f, "primitive recursion budget exceeded"),
        }
    }
}

impl std::error::Error for PrError {}

impl PrTerm {
    /// The arity of the function denoted by this term, if the term is
    /// well-formed.
    pub fn arity(&self) -> Result<usize, PrError> {
        match self {
            PrTerm::Zero(k) => Ok(*k),
            PrTerm::Succ => Ok(1),
            PrTerm::Proj(k, i) => {
                if i < k {
                    Ok(*k)
                } else {
                    Err(PrError::BadProjection {
                        arity: *k,
                        index: *i,
                    })
                }
            }
            PrTerm::Compose(f, gs) => {
                let m = f.arity()?;
                if m != gs.len() {
                    return Err(PrError::ArityMismatch {
                        expected: m,
                        found: gs.len(),
                    });
                }
                let mut k = None;
                for g in gs {
                    let gk = g.arity()?;
                    match k {
                        None => k = Some(gk),
                        Some(prev) if prev == gk => {}
                        Some(prev) => {
                            return Err(PrError::ArityMismatch {
                                expected: prev,
                                found: gk,
                            })
                        }
                    }
                }
                // A composition with no inner functions is the 0-ary use of f.
                Ok(k.unwrap_or(0))
            }
            PrTerm::PrimRec(g, h) => {
                let gk = g.arity()?;
                let hk = h.arity()?;
                if hk != gk + 2 {
                    return Err(PrError::ArityMismatch {
                        expected: gk + 2,
                        found: hk,
                    });
                }
                Ok(gk + 1)
            }
        }
    }

    /// Structural size of the term (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            PrTerm::Zero(_) | PrTerm::Succ | PrTerm::Proj(..) => 1,
            PrTerm::Compose(f, gs) => 1 + f.size() + gs.iter().map(PrTerm::size).sum::<usize>(),
            PrTerm::PrimRec(g, h) => 1 + g.size() + h.size(),
        }
    }

    /// Evaluates the term on `args` with a step budget (each constructor
    /// application and each recursion step costs one unit).
    pub fn eval(&self, args: &[BigNat], budget: u64) -> Result<BigNat, PrError> {
        let mut fuel = budget;
        self.eval_inner(args, &mut fuel)
    }

    /// Evaluates with the default budget of 10 million steps.
    pub fn eval_default(&self, args: &[BigNat]) -> Result<BigNat, PrError> {
        self.eval(args, 10_000_000)
    }

    /// Convenience: evaluate on machine-word arguments.
    pub fn eval_u64(&self, args: &[u64]) -> Result<BigNat, PrError> {
        let nats: Vec<BigNat> = args.iter().map(|&a| BigNat::from_u64(a)).collect();
        self.eval_default(&nats)
    }

    fn eval_inner(&self, args: &[BigNat], fuel: &mut u64) -> Result<BigNat, PrError> {
        if *fuel == 0 {
            return Err(PrError::BudgetExceeded);
        }
        *fuel -= 1;
        match self {
            PrTerm::Zero(k) => {
                if args.len() != *k {
                    return Err(PrError::ArityMismatch {
                        expected: *k,
                        found: args.len(),
                    });
                }
                Ok(BigNat::zero())
            }
            PrTerm::Succ => {
                if args.len() != 1 {
                    return Err(PrError::ArityMismatch {
                        expected: 1,
                        found: args.len(),
                    });
                }
                Ok(args[0].succ())
            }
            PrTerm::Proj(k, i) => {
                if args.len() != *k {
                    return Err(PrError::ArityMismatch {
                        expected: *k,
                        found: args.len(),
                    });
                }
                args.get(*i).cloned().ok_or(PrError::BadProjection {
                    arity: *k,
                    index: *i,
                })
            }
            PrTerm::Compose(f, gs) => {
                let mut inner = Vec::with_capacity(gs.len());
                for g in gs {
                    inner.push(g.eval_inner(args, fuel)?);
                }
                f.eval_inner(&inner, fuel)
            }
            PrTerm::PrimRec(g, h) => {
                if args.is_empty() {
                    return Err(PrError::ArityMismatch {
                        expected: 1,
                        found: 0,
                    });
                }
                let s = &args[0];
                let rest = &args[1..];
                let mut acc = g.eval_inner(rest, fuel)?;
                // f(s, ȳ) computed bottom-up: f(0), f(1), …, f(s).
                let total = s.to_u64().ok_or(PrError::BudgetExceeded)?;
                let mut h_args: Vec<BigNat> = Vec::with_capacity(rest.len() + 2);
                for i in 0..total {
                    if *fuel == 0 {
                        return Err(PrError::BudgetExceeded);
                    }
                    *fuel -= 1;
                    h_args.clear();
                    h_args.push(BigNat::from_u64(i));
                    h_args.extend(rest.iter().cloned());
                    h_args.push(acc);
                    acc = h.eval_inner(&h_args, fuel)?;
                }
                Ok(acc)
            }
        }
    }
}

/// A library of standard primitive recursive functions, used as ground truth
/// by the Theorem 5.2 experiments.
pub mod library {
    use super::*;

    /// The unary identity.
    pub fn identity() -> PrTerm {
        PrTerm::Proj(1, 0)
    }

    /// The unary constant-`c` function, built from `Zero` and `Succ`.
    pub fn constant(c: u64) -> PrTerm {
        // succ(succ(… zero(x) …)) as a 1-ary function of a dummy argument.
        let mut t = PrTerm::Zero(1);
        for _ in 0..c {
            t = PrTerm::Compose(Box::new(PrTerm::Succ), vec![t]);
        }
        t
    }

    /// Binary addition: `add(x, y) = x + y`, by recursion on the first
    /// argument.
    pub fn add() -> PrTerm {
        // add(0, y) = y;  add(s+1, y) = succ(add(s, y)).
        PrTerm::PrimRec(
            Box::new(PrTerm::Proj(1, 0)),
            Box::new(PrTerm::Compose(
                Box::new(PrTerm::Succ),
                vec![PrTerm::Proj(3, 2)],
            )),
        )
    }

    /// Binary multiplication by iterated addition.
    pub fn mul() -> PrTerm {
        // mul(0, y) = 0;  mul(s+1, y) = add(y, mul(s, y)).
        PrTerm::PrimRec(
            Box::new(PrTerm::Zero(1)),
            Box::new(PrTerm::Compose(
                Box::new(add()),
                vec![PrTerm::Proj(3, 1), PrTerm::Proj(3, 2)],
            )),
        )
    }

    /// Exponentiation `exp(x, y) = y^x` by iterated multiplication (recursion
    /// on the first argument, matching the paper's convention that recursion
    /// is always on the first slot).
    pub fn exp() -> PrTerm {
        // exp(0, y) = 1;  exp(s+1, y) = mul(y, exp(s, y)).
        PrTerm::PrimRec(
            Box::new(PrTerm::Compose(
                Box::new(PrTerm::Succ),
                vec![PrTerm::Zero(1)],
            )),
            Box::new(PrTerm::Compose(
                Box::new(mul()),
                vec![PrTerm::Proj(3, 1), PrTerm::Proj(3, 2)],
            )),
        )
    }

    /// Predecessor (saturating at zero).
    pub fn pred() -> PrTerm {
        // pred(0) = 0; pred(s+1) = s.
        // As a unary function: primrec over the single argument with a dummy
        // parameter vector ȳ of length 0.
        PrTerm::PrimRec(Box::new(PrTerm::Zero(0)), Box::new(PrTerm::Proj(2, 0)))
    }

    /// Truncated subtraction (monus): `monus(x, y) = max(x - y, 0)`,
    /// by recursion on the *first* argument: monus(0,y) = y ∸ 0? No —
    /// this recursion is on the subtrahend: `monus(s, y)` computes `y ∸ s`.
    /// The exported convention is therefore `monus().eval([k, y]) = y ∸ k`.
    pub fn monus() -> PrTerm {
        // m(0, y) = y;  m(s+1, y) = pred(m(s, y)).
        PrTerm::PrimRec(
            Box::new(PrTerm::Proj(1, 0)),
            Box::new(PrTerm::Compose(Box::new(pred()), vec![PrTerm::Proj(3, 2)])),
        )
    }

    /// Sign: `sign(0) = 0`, `sign(x) = 1` for `x > 0`.
    pub fn sign() -> PrTerm {
        PrTerm::PrimRec(
            Box::new(PrTerm::Zero(0)),
            Box::new(PrTerm::Compose(
                Box::new(PrTerm::Succ),
                vec![PrTerm::Zero(2)],
            )),
        )
    }

    /// The paper's `Cond(b, i, j)`: `i` if `b ≥ 1`, else `j`
    /// (Fact 5.4). Implemented as `cond(b, i, j) = sign(b)·i + (1∸sign(b))·j`.
    pub fn cond() -> PrTerm {
        let sign_b = PrTerm::Compose(Box::new(sign()), vec![PrTerm::Proj(3, 0)]);
        let not_sign_b = PrTerm::Compose(
            Box::new(monus()),
            vec![
                sign_b.clone(),
                PrTerm::Compose(Box::new(constant(1)), vec![PrTerm::Proj(3, 0)]),
            ],
        );
        PrTerm::Compose(
            Box::new(add()),
            vec![
                PrTerm::Compose(Box::new(mul()), vec![sign_b, PrTerm::Proj(3, 1)]),
                PrTerm::Compose(Box::new(mul()), vec![not_sign_b, PrTerm::Proj(3, 2)]),
            ],
        )
    }

    /// Factorial, a convenient "grows fast but stays PR" example.
    pub fn factorial() -> PrTerm {
        // fact(0) = 1; fact(s+1) = mul(s+1, fact(s)).
        PrTerm::PrimRec(
            Box::new(PrTerm::Compose(
                Box::new(PrTerm::Succ),
                vec![PrTerm::Zero(0)],
            )),
            Box::new(PrTerm::Compose(
                Box::new(mul()),
                vec![
                    PrTerm::Compose(Box::new(PrTerm::Succ), vec![PrTerm::Proj(2, 0)]),
                    PrTerm::Proj(2, 1),
                ],
            )),
        )
    }
}

/// Native (non-term) implementations of the paper's Fact 5.4 helpers, used by
/// the Gödel-coding module and as test oracles: `Bit`, `Div`, `Mod`, `Log`,
/// `Rlog`, `Cond`.
pub mod fact_5_4 {
    use srl_core::bignat::BigNat;

    /// `Bit(n, i)`: the i-th bit of n.
    pub fn bit(n: &BigNat, i: usize) -> bool {
        n.bit(i)
    }

    /// `Div(n, j) = ⌊n / 2^j⌋`.
    pub fn div(n: &BigNat, j: usize) -> BigNat {
        n.shr(j)
    }

    /// `Mod(n, j) = n mod 2^j`.
    pub fn modulo(n: &BigNat, j: usize) -> BigNat {
        n.mod_pow2(j)
    }

    /// `Log(n)`: largest k with Bit(n, k) = 1 (0 for n = 0, by convention).
    pub fn log(n: &BigNat) -> usize {
        n.highest_set_bit().unwrap_or(0)
    }

    /// `Rlog(n)`: smallest k with Bit(n, k) = 1 (0 for n = 0, by convention).
    pub fn rlog(n: &BigNat) -> usize {
        n.lowest_set_bit().unwrap_or(0)
    }

    /// `Cond(b, i, j)`: `i` if b, else `j`.
    pub fn cond(b: bool, i: BigNat, j: BigNat) -> BigNat {
        if b {
            i
        } else {
            j
        }
    }

    /// `Exp(n, i) = n^i`.
    pub fn exp(n: &BigNat, i: u64) -> BigNat {
        n.pow(i)
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    fn n(v: u64) -> BigNat {
        BigNat::from_u64(v)
    }

    #[test]
    fn arities() {
        assert_eq!(PrTerm::Succ.arity(), Ok(1));
        assert_eq!(PrTerm::Zero(3).arity(), Ok(3));
        assert_eq!(PrTerm::Proj(2, 1).arity(), Ok(2));
        assert!(PrTerm::Proj(2, 2).arity().is_err());
        assert_eq!(add().arity(), Ok(2));
        assert_eq!(mul().arity(), Ok(2));
        assert_eq!(exp().arity(), Ok(2));
        assert_eq!(pred().arity(), Ok(1));
        assert_eq!(monus().arity(), Ok(2));
        assert_eq!(factorial().arity(), Ok(1));
        assert_eq!(cond().arity(), Ok(3));
    }

    #[test]
    fn ill_formed_composition_rejected() {
        // add is binary but only one inner function is supplied.
        let bad = PrTerm::Compose(Box::new(add()), vec![PrTerm::Proj(1, 0)]);
        assert!(bad.arity().is_err());
        // Mixed inner arities.
        let bad = PrTerm::Compose(
            Box::new(add()),
            vec![PrTerm::Proj(1, 0), PrTerm::Proj(2, 0)],
        );
        assert!(bad.arity().is_err());
        // PrimRec with wrong step arity.
        let bad = PrTerm::PrimRec(Box::new(PrTerm::Zero(1)), Box::new(PrTerm::Zero(1)));
        assert!(bad.arity().is_err());
    }

    #[test]
    fn initial_functions() {
        assert_eq!(PrTerm::Succ.eval_u64(&[4]), Ok(n(5)));
        assert_eq!(PrTerm::Zero(2).eval_u64(&[4, 7]), Ok(n(0)));
        assert_eq!(PrTerm::Proj(3, 1).eval_u64(&[4, 7, 9]), Ok(n(7)));
        assert_eq!(constant(5).eval_u64(&[99]), Ok(n(5)));
        assert_eq!(identity().eval_u64(&[42]), Ok(n(42)));
    }

    #[test]
    fn arity_mismatch_at_eval() {
        assert!(PrTerm::Succ.eval_u64(&[1, 2]).is_err());
        assert!(PrTerm::Zero(2).eval_u64(&[1]).is_err());
    }

    #[test]
    fn addition_matches_native() {
        let f = add();
        for (a, b) in [(0u64, 0u64), (0, 5), (5, 0), (3, 4), (17, 25)] {
            assert_eq!(f.eval_u64(&[a, b]), Ok(n(a + b)), "{a} + {b}");
        }
    }

    #[test]
    fn multiplication_matches_native() {
        let f = mul();
        for (a, b) in [(0u64, 0u64), (0, 5), (5, 0), (3, 4), (7, 8), (12, 12)] {
            assert_eq!(f.eval_u64(&[a, b]), Ok(n(a * b)), "{a} * {b}");
        }
    }

    #[test]
    fn exponentiation_matches_native() {
        let f = exp();
        // exp(x, y) = y^x.
        for (x, y) in [(0u64, 3u64), (1, 3), (4, 2), (5, 3), (3, 10)] {
            assert_eq!(f.eval_u64(&[x, y]), Ok(n(y.pow(x as u32))), "{y}^{x}");
        }
    }

    #[test]
    fn pred_and_monus() {
        assert_eq!(pred().eval_u64(&[0]), Ok(n(0)));
        assert_eq!(pred().eval_u64(&[7]), Ok(n(6)));
        // monus(k, y) = y ∸ k.
        assert_eq!(monus().eval_u64(&[3, 10]), Ok(n(7)));
        assert_eq!(monus().eval_u64(&[10, 3]), Ok(n(0)));
        assert_eq!(monus().eval_u64(&[0, 5]), Ok(n(5)));
    }

    #[test]
    fn sign_and_cond() {
        assert_eq!(sign().eval_u64(&[0]), Ok(n(0)));
        assert_eq!(sign().eval_u64(&[9]), Ok(n(1)));
        assert_eq!(cond().eval_u64(&[1, 10, 20]), Ok(n(10)));
        assert_eq!(cond().eval_u64(&[0, 10, 20]), Ok(n(20)));
        assert_eq!(cond().eval_u64(&[7, 10, 20]), Ok(n(10)));
    }

    #[test]
    fn factorial_values() {
        let f = factorial();
        assert_eq!(f.eval_u64(&[0]), Ok(n(1)));
        assert_eq!(f.eval_u64(&[1]), Ok(n(1)));
        assert_eq!(f.eval_u64(&[5]), Ok(n(120)));
        assert_eq!(f.eval_u64(&[7]), Ok(n(5040)));
    }

    #[test]
    fn budget_is_respected() {
        let f = mul();
        assert_eq!(
            f.eval(&[n(1000), n(1000)], 10),
            Err(PrError::BudgetExceeded)
        );
    }

    #[test]
    fn term_size() {
        assert_eq!(PrTerm::Succ.size(), 1);
        assert!(add().size() >= 3);
        assert!(exp().size() > mul().size());
    }

    #[test]
    fn fact_5_4_helpers() {
        use super::fact_5_4::*;
        let x = n(0b1011000);
        assert!(bit(&x, 3));
        assert!(!bit(&x, 0));
        assert_eq!(div(&x, 3), n(0b1011));
        assert_eq!(modulo(&x, 4), n(0b1000));
        assert_eq!(log(&x), 6);
        assert_eq!(rlog(&x), 3);
        assert_eq!(log(&n(0)), 0);
        assert_eq!(rlog(&n(0)), 0);
        assert_eq!(cond(true, n(1), n(2)), n(1));
        assert_eq!(cond(false, n(1), n(2)), n(2));
        assert_eq!(exp(&n(2), 10), n(1024));
    }

    #[test]
    fn display_errors() {
        assert!(PrError::BudgetExceeded.to_string().contains("budget"));
        assert!(PrError::ArityMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("arity"));
    }
}
