//! Reading complexity off the syntax (Section 6).
//!
//! "Given a program in set-reduce language, … a scan of its syntax allows us
//! to make certain conclusions regarding its complexity":
//!
//! * sets of set-height greater than 1 ⇒ possibly exponential;
//! * set-height at most 1 ⇒ polynomial in the input size (Theorem 3.10);
//! * additionally, accumulators that never return a set ⇒ logspace
//!   (Theorem 4.13);
//! * the `new` operator / lists / `set of ℕ` ⇒ all the way up to primitive
//!   recursive (Section 5);
//! * and quantitatively, an expression of width `a` and depth `d` runs in
//!   `DTIME(n^{a·d} · T_ins)` (Proposition 6.1).
//!
//! [`analyze_expr`] / [`analyze_program`] compute the measures;
//! [`classify`] maps them onto the paper's fragments and complexity classes.

use std::collections::HashMap;
use std::fmt;

use srl_core::ast::Expr;
use srl_core::program::Program;

/// The syntactic measures of an expression or program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measures {
    /// The paper's `depth` (Lemma 3.9): nesting depth of `set-reduce` /
    /// `list-reduce`, with calls expanded.
    pub depth: usize,
    /// The paper's width `a`: the maximum tuple arity constructed anywhere in
    /// the expression (at least 1).
    pub width: usize,
    /// Maximum *syntactic* set-construction height: how deeply `insert` /
    /// `emptyset` results are themselves inserted into sets. This
    /// under-approximates the type-level set-height for programs whose inputs
    /// are already nested, so the classifier also accepts declared input
    /// heights.
    pub construction_set_height: usize,
    /// Does the expression use the `new` operator?
    pub uses_new: bool,
    /// Does it use lists (`cons`, `list-reduce`, …)?
    pub uses_lists: bool,
    /// Does it use natural-number operators?
    pub uses_nat: bool,
    /// Does it use natural-number multiplication inside an accumulator
    /// (the combination Section 3 singles out as unsafe for P)?
    pub nat_mul_in_accumulator: bool,
    /// Does any accumulator (`acc` of a reduce) syntactically construct a
    /// set (via `insert` / `emptyset` at its result position or anywhere in
    /// its body)?
    pub set_valued_accumulator: bool,
    /// Total number of AST nodes.
    pub nodes: usize,
}

/// The paper's fragments, ordered by expressive power.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fragment {
    /// Accumulators are bounded tuples: BASRL, captures L (Theorem 4.13).
    Basrl,
    /// Set-height ≤ 1: SRL, captures P (Theorem 3.10).
    Srl,
    /// Set-height ≥ 2 but no invented values/lists: unrestricted SRL
    /// (elementary but super-polynomial; Corollary 6.4's hierarchy).
    UnrestrictedSrl,
    /// Uses `new`, lists, or `set of ℕ`: primitive recursive power
    /// (Theorem 5.2, Corollary 5.5).
    PrimitiveRecursive,
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Fragment::Basrl => "BASRL (⊆ LOGSPACE)",
            Fragment::Srl => "SRL (⊆ P)",
            Fragment::UnrestrictedSrl => "unrestricted SRL (⊆ DTIME(2_h#n))",
            Fragment::PrimitiveRecursive => "SRL+new / LRL (⊆ PrimRec)",
        };
        write!(f, "{name}")
    }
}

/// A complexity verdict derived from the syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// The smallest fragment the measures allow.
    pub fragment: Fragment,
    /// Proposition 6.1's exponent: evaluation time is `O(n^{a·d} · T_ins)`
    /// (only meaningful for the SRL/BASRL fragments).
    pub time_exponent: usize,
    /// Human-readable explanation.
    pub explanation: String,
}

/// Analyses a stand-alone expression (call-free or with calls resolved in
/// `program`).
pub fn analyze_expr(program: &Program, expr: &Expr) -> Measures {
    let mut m = Measures {
        depth: expanded_depth(program, expr),
        width: max_tuple_width(program, expr),
        construction_set_height: construction_height(program, expr),
        uses_new: false,
        uses_lists: false,
        uses_nat: false,
        nat_mul_in_accumulator: false,
        set_valued_accumulator: false,
        nodes: expr.node_count(),
    };
    scan_flags(program, expr, &mut m, false, &mut Vec::new());
    m
}

/// Analyses every definition of a program and takes the worst case.
pub fn analyze_program(program: &Program) -> Measures {
    let mut worst: Option<Measures> = None;
    for def in &program.defs {
        let m = analyze_expr(program, &def.body);
        worst = Some(match worst {
            None => m,
            Some(w) => Measures {
                depth: w.depth.max(m.depth),
                width: w.width.max(m.width),
                construction_set_height: w.construction_set_height.max(m.construction_set_height),
                uses_new: w.uses_new || m.uses_new,
                uses_lists: w.uses_lists || m.uses_lists,
                uses_nat: w.uses_nat || m.uses_nat,
                nat_mul_in_accumulator: w.nat_mul_in_accumulator || m.nat_mul_in_accumulator,
                set_valued_accumulator: w.set_valued_accumulator || m.set_valued_accumulator,
                nodes: w.nodes + m.nodes,
            },
        });
    }
    worst.unwrap_or(Measures {
        depth: 0,
        width: 1,
        construction_set_height: 0,
        uses_new: false,
        uses_lists: false,
        uses_nat: false,
        nat_mul_in_accumulator: false,
        set_valued_accumulator: false,
        nodes: 0,
    })
}

/// Classifies measures (optionally taking into account the declared
/// set-height of the inputs, which the purely syntactic scan cannot see).
pub fn classify(measures: &Measures, input_set_height: usize) -> Classification {
    let effective_height = measures.construction_set_height.max(input_set_height);
    let fragment = if measures.uses_new
        || measures.uses_lists
        || (measures.uses_nat && effective_height >= 1 && measures.nat_mul_in_accumulator)
    {
        Fragment::PrimitiveRecursive
    } else if effective_height > 1 {
        Fragment::UnrestrictedSrl
    } else if !measures.set_valued_accumulator {
        Fragment::Basrl
    } else {
        Fragment::Srl
    };
    // Saturating: a recursive (invalid) program reports `usize::MAX` depth.
    let time_exponent = measures.width.saturating_mul(measures.depth);
    let explanation = match fragment {
        Fragment::Basrl => format!(
            "accumulators never build sets and set-height ≤ 1: BASRL, so the query is in LOGSPACE (Theorem 4.13); Proposition 6.1 additionally bounds time by O(n^{time_exponent}·T_ins)"
        ),
        Fragment::Srl => format!(
            "set-height ≤ 1 with width {} and depth {}: SRL, so the query is in P with time O(n^{time_exponent}·T_ins) (Theorem 3.10, Proposition 6.1)",
            measures.width, measures.depth
        ),
        Fragment::UnrestrictedSrl => format!(
            "set-height {} exceeds 1: outside P in general; Corollary 6.4 places set-height h in DTIME(2_h#n)",
            effective_height
        ),
        Fragment::PrimitiveRecursive => "uses invented values, lists, or unbounded arithmetic in accumulators: the full primitive recursive power of Section 5".to_string(),
    };
    Classification {
        fragment,
        time_exponent,
        explanation,
    }
}

/// One-call convenience: analyse and classify a whole program.
pub fn classify_program(program: &Program, input_set_height: usize) -> Classification {
    classify(&analyze_program(program), input_set_height)
}

fn resolve<'p>(program: &'p Program, name: &str) -> Option<&'p Expr> {
    program.lookup(name).map(|d| &d.body)
}

/// Reduce-depth with `Call`s expanded. Non-recursion (`Program::validate`)
/// makes the expansion finite, so the result is **exact for any chain
/// length** — the old implementation burned one unit of fuel per call edge
/// and silently returned 0 past 64, under-reporting the depth of deep call
/// chains. Per-definition depths are context-independent, so a memo keeps
/// the walk linear even on diamond-shaped call graphs. A call cycle (only
/// constructible through the non-validating `Program::define`) makes the
/// expansion unbounded: the depth **saturates** to `usize::MAX` instead of
/// zeroing out, and every arithmetic step above it is saturating.
fn expanded_depth(program: &Program, expr: &Expr) -> usize {
    fn walk(
        program: &Program,
        expr: &Expr,
        path: &mut Vec<String>,
        memo: &mut HashMap<String, usize>,
    ) -> usize {
        let mut child_max = 0usize;
        for c in expr.children() {
            child_max = child_max.max(walk(program, c, path, memo));
        }
        for l in expr.lambdas() {
            child_max = child_max.max(walk(program, &l.body, path, memo));
        }
        match expr {
            Expr::SetReduce { .. } | Expr::ListReduce { .. } => child_max.saturating_add(1),
            Expr::Call(name, _) => {
                let callee = if let Some(&d) = memo.get(name) {
                    d
                } else if path.iter().any(|n| n == name) {
                    // On a cycle every def involved has unbounded
                    // expansion; the callers below memoize that verdict.
                    usize::MAX
                } else if let Some(body) = resolve(program, name) {
                    path.push(name.clone());
                    let d = walk(program, body, path, memo);
                    path.pop();
                    memo.insert(name.clone(), d);
                    d
                } else {
                    0
                };
                child_max.max(callee)
            }
            _ => child_max,
        }
    }
    walk(program, expr, &mut Vec::new(), &mut HashMap::new())
}

fn max_tuple_width(program: &Program, expr: &Expr) -> usize {
    let mut width = 1;
    let mut stack = vec![expr];
    let mut visited_defs: Vec<&str> = Vec::new();
    while let Some(e) = stack.pop() {
        if let Expr::Tuple(items) = e {
            width = width.max(items.len());
        }
        if let Expr::Call(name, _) = e {
            if !visited_defs.contains(&name.as_str()) {
                visited_defs.push(name);
                if let Some(body) = resolve(program, name) {
                    stack.push(body);
                }
            }
        }
        stack.extend(e.children());
        for l in e.lambdas() {
            stack.push(&l.body);
        }
    }
    width
}

/// How deeply set constructions nest: `insert(x, s)` where `x` itself
/// constructs a set counts as height 2, etc.
fn construction_height(program: &Program, expr: &Expr) -> usize {
    fn height(program: &Program, e: &Expr, seen: &mut Vec<String>) -> usize {
        match e {
            Expr::EmptySet => 1,
            Expr::Insert(elem, set) => {
                let elem_h = height(program, elem, seen);
                let set_h = height(program, set, seen);
                set_h.max(elem_h + 1).max(1)
            }
            Expr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            } => {
                let mut h = 0;
                for c in [set.as_ref(), base.as_ref(), extra.as_ref()] {
                    h = h.max(height(program, c, seen));
                }
                for l in [app, acc] {
                    h = h.max(height(program, &l.body, seen));
                }
                h
            }
            Expr::Call(name, args) => {
                let mut h = args
                    .iter()
                    .map(|a| height(program, a, seen))
                    .max()
                    .unwrap_or(0);
                if !seen.contains(name) {
                    seen.push(name.clone());
                    if let Some(body) = resolve(program, name) {
                        h = h.max(height(program, body, seen));
                    }
                }
                h
            }
            _ => {
                let mut h = 0;
                for c in e.children() {
                    h = h.max(height(program, c, seen));
                }
                for l in e.lambdas() {
                    h = h.max(height(program, &l.body, seen));
                }
                h
            }
        }
    }
    height(program, expr, &mut Vec::new())
}

fn scan_flags(
    program: &Program,
    expr: &Expr,
    m: &mut Measures,
    inside_acc: bool,
    seen: &mut Vec<(String, bool)>,
) {
    match expr {
        Expr::New(_) => m.uses_new = true,
        Expr::EmptyList
        | Expr::Cons(..)
        | Expr::Head(_)
        | Expr::Tail(_)
        | Expr::ListReduce { .. } => m.uses_lists = true,
        Expr::NatConst(_) | Expr::Succ(_) | Expr::NatAdd(..) => m.uses_nat = true,
        Expr::NatMul(..) => {
            m.uses_nat = true;
            if inside_acc {
                m.nat_mul_in_accumulator = true;
            }
        }
        Expr::Call(name, _) => {
            // Treat the callee as inlined at this position. The flags are
            // monotone, so each definition needs scanning at most once per
            // accumulator context — which also terminates the walk on
            // recursive (non-validated) programs.
            let key = (name.clone(), inside_acc);
            if !seen.contains(&key) {
                seen.push(key);
                if let Some(body) = resolve(program, name) {
                    scan_flags(program, body, m, inside_acc, seen);
                }
            }
        }
        _ => {}
    }
    for c in expr.children() {
        scan_flags(program, c, m, inside_acc, seen);
    }
    match expr {
        Expr::SetReduce { app, acc, .. } | Expr::ListReduce { app, acc, .. } => {
            scan_flags(program, &app.body, m, inside_acc, seen);
            scan_flags(program, &acc.body, m, true, seen);
            if result_builds_set(program, &acc.body, &mut Vec::new()) {
                m.set_valued_accumulator = true;
            }
        }
        _ => {}
    }
}

/// Does the *result position* of an expression construct a set? This is the
/// BASRL-relevant question: an accumulator whose result is (or contains) a
/// set grows with the input, one that returns a bounded tuple of scalars does
/// not. Conservative in the BASRL direction: variables are assumed scalar, so
/// a program that merely passes an input set through unchanged may be
/// classified one fragment too low — the type-level check in `srl-core`
/// catches those when parameter types are declared.
fn result_builds_set(program: &Program, expr: &Expr, seen: &mut Vec<String>) -> bool {
    match expr {
        Expr::EmptySet | Expr::Insert(..) | Expr::Rest(_) => true,
        Expr::If(_, t, e) => {
            result_builds_set(program, t, seen) || result_builds_set(program, e, seen)
        }
        Expr::Let { body, .. } => result_builds_set(program, body, seen),
        Expr::Tuple(items) => items.iter().any(|i| result_builds_set(program, i, seen)),
        Expr::SetReduce { acc, base, .. } => {
            result_builds_set(program, &acc.body, seen) || result_builds_set(program, base, seen)
        }
        Expr::Call(name, _) => {
            if seen.contains(name) {
                false
            } else {
                seen.push(name.clone());
                program
                    .lookup(name)
                    .is_some_and(|def| result_builds_set(program, &def.body, seen))
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::ast::Lambda;
    use srl_core::dsl::*;
    use srl_stdlib::{agap, arith, blowup, perm, tc};

    #[test]
    fn base_expressions_have_depth_zero() {
        let p = Program::srl();
        let m = analyze_expr(&p, &insert(atom(1), empty_set()));
        assert_eq!(m.depth, 0);
        assert_eq!(m.construction_set_height, 1);
        assert!(!m.uses_new);
    }

    #[test]
    fn width_and_depth_of_nested_reduces() {
        let p = Program::srl();
        let inner = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "a", insert(var("x"), var("a"))),
            empty_set(),
            empty_set(),
        );
        let outer = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "a", inner),
            empty_set(),
            empty_set(),
        );
        let m = analyze_expr(&p, &outer);
        assert_eq!(m.depth, 2);
        assert!(m.set_valued_accumulator);
        let m = analyze_expr(&p, &tuple([atom(0), atom(1), atom(2)]));
        assert_eq!(m.width, 3);
    }

    #[test]
    fn call_expansion_counts_callee_depth() {
        let p = Program::srl().define(
            "collect",
            ["S"],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "a", insert(var("x"), var("a"))),
                empty_set(),
                empty_set(),
            ),
        );
        let m = analyze_expr(&p, &call("collect", [var("T")]));
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn deep_call_chains_report_exact_depth() {
        // Regression for the fuel cutoff: a 70-deep chain of defs, each
        // wrapping one more reduce around a call of the previous one, used
        // to zero out past 64 call expansions and under-report the depth.
        let mut p = Program::srl().define(
            "f0",
            ["S"],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "a", insert(var("x"), var("a"))),
                empty_set(),
                empty_set(),
            ),
        );
        for i in 1..=69usize {
            p = p.define(
                format!("f{i}"),
                ["S"],
                set_reduce(
                    var("S"),
                    Lambda::identity(),
                    lam("x", "a", call(format!("f{}", i - 1), [var("a")])),
                    empty_set(),
                    empty_set(),
                ),
            );
        }
        let m = analyze_expr(&p, &call("f69", [var("T")]));
        assert_eq!(m.depth, 70);
        let c = classify(&m, 1);
        assert_eq!(c.time_exponent, 70);
    }

    #[test]
    fn recursive_programs_saturate_instead_of_zeroing() {
        // `Program::define` does not validate, so a recursive program is
        // constructible; its expansion is unbounded and the depth (and the
        // Proposition 6.1 exponent) must saturate, not silently drop to 0
        // or overflow.
        let p = Program::srl().define(
            "spin",
            ["S"],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "a", call("spin", [var("a")])),
                empty_set(),
                empty_set(),
            ),
        );
        let m = analyze_expr(&p, &call("spin", [var("T")]));
        assert_eq!(m.depth, usize::MAX);
        let c = classify(&m, 1);
        assert_eq!(c.time_exponent, usize::MAX);
    }

    #[test]
    fn basrl_programs_classify_as_logspace() {
        let arith = arith::arithmetic_program();
        let c = classify_program(&arith, 1);
        assert_eq!(c.fragment, Fragment::Basrl);
        assert!(c.explanation.contains("LOGSPACE"));

        let perm = perm::perm_program();
        assert_eq!(classify_program(&perm, 1).fragment, Fragment::Basrl);
    }

    #[test]
    fn srl_programs_classify_as_polynomial() {
        let agap = agap::apath_program();
        let c = classify_program(&agap, 1);
        assert_eq!(c.fragment, Fragment::Srl);
        assert!(c.explanation.contains("P"));
        assert!(c.time_exponent >= 1);

        let p = Program::srl();
        let tc_expr = tc::transitive_closure(var("D"), var("E"));
        let c = classify(&analyze_expr(&p, &tc_expr), 1);
        assert_eq!(c.fragment, Fragment::Srl);
    }

    #[test]
    fn powerset_classifies_beyond_p() {
        let p = blowup::powerset_program();
        let c = classify_program(&p, 1);
        assert_eq!(c.fragment, Fragment::UnrestrictedSrl);
        assert!(c.explanation.contains("set-height"));
    }

    #[test]
    fn lrl_and_new_classify_as_primitive_recursive() {
        let p = blowup::lrl_doubling_program();
        assert_eq!(
            classify_program(&p, 0).fragment,
            Fragment::PrimitiveRecursive
        );
        let p = Program::new(srl_core::dialect::Dialect::srl_new());
        let m = analyze_expr(&p, &insert(new_value(var("S")), var("S")));
        assert!(m.uses_new);
        assert_eq!(classify(&m, 1).fragment, Fragment::PrimitiveRecursive);
    }

    #[test]
    fn nat_multiplication_in_accumulator_is_flagged() {
        let p = Program::new(srl_core::dialect::Dialect::full());
        // Repeated squaring: acc = acc * acc — the paper's example of what
        // must be forbidden to stay inside P.
        let squaring = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", nat_mul(var("acc"), var("acc"))),
            nat(2),
            empty_set(),
        );
        let m = analyze_expr(&p, &squaring);
        assert!(m.nat_mul_in_accumulator);
        assert_eq!(classify(&m, 1).fragment, Fragment::PrimitiveRecursive);
        // Multiplication outside the accumulator is fine.
        let outside = nat_mul(nat(3), nat(4));
        let m = analyze_expr(&p, &outside);
        assert!(!m.nat_mul_in_accumulator);
        assert!(m.uses_nat);
    }

    #[test]
    fn proposition_6_1_exponent() {
        let p = Program::srl();
        let expr = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "a", tuple([var("x"), var("x")])),
            tuple([atom(0), atom(0)]),
            empty_set(),
        );
        let m = analyze_expr(&p, &expr);
        let c = classify(&m, 1);
        assert_eq!(c.time_exponent, m.width * m.depth);
        assert_eq!(c.time_exponent, 2);
    }

    #[test]
    fn fragment_ordering_and_display() {
        assert!(Fragment::Basrl < Fragment::Srl);
        assert!(Fragment::Srl < Fragment::UnrestrictedSrl);
        assert!(Fragment::UnrestrictedSrl < Fragment::PrimitiveRecursive);
        assert!(Fragment::Srl.to_string().contains("P"));
        assert!(Fragment::Basrl.to_string().contains("LOGSPACE"));
    }

    #[test]
    fn empty_program_measures() {
        let m = analyze_program(&Program::srl());
        assert_eq!(m.depth, 0);
        assert_eq!(m.nodes, 0);
        assert_eq!(classify(&m, 0).fragment, Fragment::Basrl);
    }
}
