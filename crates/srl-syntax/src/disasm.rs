//! Disassembler for the bytecode VM's chunks (`srl_core::bytecode`).
//!
//! The third member of the printer family: [`crate::printer`] shows the
//! paper's surface notation, [`crate::compiled`] shows the slot-indexed
//! lowered form, and this module shows what the **VM backend** actually
//! executes — register instructions with their static depth offsets, the
//! fused superinstructions a fold compiled to, and the block structure of
//! the reduce lambdas. Read it when auditing which folds fused (a `reduce`
//! line names its kind: `member`, `union/merge`, `insert-app`, `filter`,
//! `bool-acc`, `scan`, `monotone`, or `generic`) or when debugging codegen.
//!
//! Registers print as `r<n>`; frame slots and temporaries share one
//! register space (slots below each frame's lexical height, temporaries
//! above). Jump targets are instruction indices within the block. Every
//! reduce line also names its [`FoldClass`](srl_core::bytecode::FoldClass)
//! (`class=proper-hom` — shard-splittable across the worker pool — or
//! `class=ordered`), the statically proved storage tier of the traversed
//! set and of the fold's accumulator (`tier=<set>/<acc>`, where `atom`
//! means shape inference proved `set(atom)`, `tuple(k)` means it proved
//! `set(tuple(atom^k))` — an arity-k atom-tuple relation — and the
//! columnar fast path pre-engages either way; see
//! `srl_core::bytecode::SetTier`), and its static per-element cost
//! estimate, so the compile-time decisions of both the parallel executor
//! and the columnar tiers are auditable here.

use srl_core::bytecode::{Block, Chunk, FoldOrigin, Insn, Operand, ReduceKind};
use srl_core::lower::{CompiledProgram, LoweredExpr};
use srl_core::SpineBlock;

/// Disassembles a whole program's chunk: every definition with its entry
/// block, frame size, and all blocks it references. Forces bytecode
/// generation if it has not happened yet.
pub fn disasm_program(program: &CompiledProgram) -> String {
    let chunk = program.code();
    let mut out = String::new();
    for (i, (def, code)) in program.defs().iter().zip(chunk.defs()).enumerate() {
        out.push_str(&format!(
            "def {}#{i}/{} = block {} (frame {})\n",
            program.def_name(def),
            def.params.len(),
            code.block,
            code.frame_size,
        ));
    }
    out.push_str(&disasm_blocks(chunk));
    out
}

/// Disassembles the chunk of a stand-alone lowered expression (generating
/// it if needed): the main block, its frame size, and every lambda block.
pub fn disasm_lowered(program: &CompiledProgram, lowered: &LoweredExpr) -> String {
    let chunk = lowered.code(program);
    let mut out = format!(
        "main = block {} (frame {}, scope [{}])\n",
        chunk.main(),
        chunk.main_frame(),
        lowered.scope_names().join(", "),
    );
    out.push_str(&disasm_blocks(chunk));
    out
}

/// Disassembles every block of an already-generated chunk.
pub fn disasm_chunk(chunk: &Chunk) -> String {
    disasm_blocks(chunk)
}

fn disasm_blocks(chunk: &Chunk) -> String {
    let mut out = String::new();
    for (id, block) in chunk.blocks().iter().enumerate() {
        out.push_str(&format!("block {id} (result r{}):\n", block.result()));
        out.push_str(&disasm_block(chunk, block));
    }
    out
}

fn disasm_block(chunk: &Chunk, block: &Block) -> String {
    let mut out = String::new();
    for (pc, insn) in block.code().iter().enumerate() {
        out.push_str(&format!("  {pc:>3}  {}\n", render_insn(chunk, insn)));
    }
    out
}

fn operand(chunk: &Chunk, op: &Operand) -> String {
    match op {
        Operand::Temp(r) => format!("r{r}"),
        Operand::Slot(r) => format!("slot r{r}"),
        Operand::SlotSel(r, i) => format!("slot r{r}.{i}"),
        Operand::Const(i) => format!("const {}", chunk.consts()[*i as usize]),
    }
}

fn render_insn(chunk: &Chunk, insn: &Insn) -> String {
    match insn {
        Insn::LoadBool { dst, value, depth } => format!("r{dst} <- {value}  @{depth}"),
        Insn::LoadConst { dst, index, depth } => {
            format!(
                "r{dst} <- const {}  @{depth}",
                chunk.consts()[*index as usize]
            )
        }
        Insn::LoadEmptySet { dst, depth } => format!("r{dst} <- emptyset  @{depth}"),
        Insn::LoadEmptyList { dst, depth } => format!("r{dst} <- emptylist  @{depth}"),
        Insn::LoadNat { dst, index, depth } => {
            format!("r{dst} <- nat {}  @{depth}", chunk.nats()[*index as usize])
        }
        Insn::Copy { dst, src, depth } => format!("r{dst} <- copy r{src}  @{depth}"),
        Insn::Take { dst, src, depth } => format!("r{dst} <- take r{src}  @{depth}"),
        Insn::FailUnbound { name, depth } => {
            format!("fail unbound ?{}  @{depth}", chunk.names()[*name as usize])
        }
        Insn::FailUnknownCall { name, depth } => {
            format!(
                "fail unknown-call ?{}  @{depth}",
                chunk.names()[*name as usize]
            )
        }
        Insn::FailArity { def, nargs, depth } => {
            format!("fail arity def#{def} with {nargs} arg(s)  @{depth}")
        }
        Insn::Bump { depth } => format!("bump  @{depth}"),
        Insn::Guard { name, depth, .. } => format!("guard dialect[{name}]  @{depth}"),
        Insn::Branch {
            cond,
            else_to,
            depth,
        } => format!("branch r{cond} else -> {else_to}  @{depth}"),
        Insn::Jump { to } => format!("jump -> {to}"),
        Insn::MakeTuple {
            dst,
            start,
            len,
            depth,
        } => format!("r{dst} <- tuple r{start}..r{}  @{depth}", start + len - 1),
        Insn::Sel {
            dst,
            index,
            op,
            depth,
        } => format!("r{dst} <- sel.{index} {}  @{depth}", operand(chunk, op)),
        Insn::Cmp {
            dst,
            a,
            b,
            leq,
            depth,
        } => format!(
            "r{dst} <- {} {} {}  @{depth}",
            operand(chunk, a),
            if *leq { "<=" } else { "=" },
            operand(chunk, b),
        ),
        Insn::Insert {
            dst,
            elem,
            set,
            spine,
            depth,
        } => format!(
            "r{dst} <- insert r{elem} into r{set}{}  @{depth}",
            if *spine { " [spine]" } else { "" },
        ),
        Insn::Choose { dst, op, depth } => {
            format!("r{dst} <- choose {}  @{depth}", operand(chunk, op))
        }
        Insn::Rest { dst, src, depth } => format!("r{dst} <- rest r{src}  @{depth}"),
        Insn::Cons { dst, elem, list } => format!("r{dst} <- cons r{elem} onto r{list}"),
        Insn::Head { dst, src } => format!("r{dst} <- head r{src}"),
        Insn::Tail { dst, src } => format!("r{dst} <- tail r{src}"),
        Insn::New { dst, src } => format!("r{dst} <- new r{src}"),
        Insn::Succ { dst, src } => format!("r{dst} <- succ r{src}"),
        Insn::CheckNat { src, op } => format!("check-nat r{src} for {op}"),
        Insn::NatAdd { dst, a, b } => format!("r{dst} <- r{a} + r{b}"),
        Insn::NatMul { dst, a, b } => format!("r{dst} <- r{a} * r{b}"),
        Insn::Call {
            dst,
            def,
            args,
            nargs,
            depth,
        } => {
            if *nargs == 0 {
                format!("r{dst} <- call def#{def}()  @{depth}")
            } else {
                format!(
                    "r{dst} <- call def#{def}(r{args}..r{})  @{depth}",
                    args + nargs - 1
                )
            }
        }
        Insn::Reduce(r) => {
            let kind = match &r.kind {
                ReduceKind::Generic { app, acc } => format!("generic app=b{app} acc=b{acc}"),
                ReduceKind::Member => "member [fused: binary search]".to_string(),
                ReduceKind::Union => "union [fused: SetMerge]".to_string(),
                ReduceKind::InsertApp { app } => format!("insert-app app=b{app}"),
                ReduceKind::Filter {
                    app,
                    keep_on_true,
                    cond_index,
                    value_index,
                } => format!(
                    "filter app=b{app} keep-on-{keep_on_true} flag=.{cond_index} value=.{value_index}"
                ),
                ReduceKind::BoolAcc { app, is_or } => {
                    format!("bool-acc app=b{app} {}", if *is_or { "or" } else { "and" })
                }
                ReduceKind::Scan {
                    app,
                    cond_index,
                    value_index,
                } => format!("scan app=b{app} flag=.{cond_index} value=.{value_index}"),
                ReduceKind::Monotone { app, acc } => {
                    format!("monotone app=b{app} acc=b{acc}")
                }
            };
            // The origin says where `class` came from; fused shapes carry
            // no annotation (the kind already names the algebra). Def
            // indices stay numeric here — the chunk alone cannot resolve
            // names; `srl analyze` renders the same provenance with names.
            let origin = match &r.origin {
                FoldOrigin::Shape => String::new(),
                FoldOrigin::SummarySpine { via } => format!(" origin=spine(def#{via})"),
                FoldOrigin::Unproven(SpineBlock::NotThreaded) => {
                    " origin=blocked(not-threaded)".to_string()
                }
                FoldOrigin::Unproven(SpineBlock::Inspected) => {
                    " origin=blocked(acc-inspected)".to_string()
                }
                FoldOrigin::Unproven(SpineBlock::CalleeNoSpine(d)) => {
                    format!(" origin=blocked(no-spine def#{d})")
                }
                FoldOrigin::List => " origin=list".to_string(),
            };
            format!(
                "r{} <- {}reduce[{kind}] class={}{origin} tier={}/{} cost={} set=r{} base=r{} extra=r{} x=r{}  @{}",
                r.dst,
                if r.is_list { "list-" } else { "" },
                r.class.label(),
                r.tier.label(),
                r.acc_tier.label(),
                r.unit_cost,
                r.set,
                r.base,
                r.extra,
                r.x_slot,
                r.depth,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::ast::Lambda;
    use srl_core::dsl::*;
    use srl_core::program::Program;

    #[test]
    fn union_fold_disassembles_to_the_fused_merge() {
        let p = Program::srl();
        let c = p.compile();
        let e = set_reduce(
            var("A"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            var("B"),
            empty_set(),
        );
        let lowered = c.lower_expr(&e, &["A", "B"]);
        let text = disasm_lowered(&c, &lowered);
        assert!(text.contains("union [fused: SetMerge]"), "{text}");
        assert!(text.contains("scope [A, B]"), "{text}");
    }

    #[test]
    fn program_disassembly_names_defs_and_blocks() {
        let p = Program::srl()
            .define("fst", ["t"], sel(var("t"), 1))
            .define("use", ["t"], call("fst", [var("t")]));
        let c = p.compile();
        let text = disasm_program(&c);
        assert!(text.contains("def fst#0/1 = block 0"), "{text}");
        assert!(text.contains("sel.1 slot r0"), "{text}");
        assert!(text.contains("call def#0"), "{text}");
    }

    #[test]
    fn reduce_lines_carry_their_origin() {
        let p = Program::srl();
        let c = p.compile();
        // Keep-left never threads the accumulator: ordered, with the
        // obstacle on the reduce line.
        let keep_left = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "y", var("x")),
            empty_set(),
            empty_set(),
        );
        let lowered = c.lower_expr(&keep_left, &["S"]);
        let text = disasm_lowered(&c, &lowered);
        assert!(
            text.contains("class=ordered origin=blocked(not-threaded)"),
            "{text}"
        );
    }

    #[test]
    fn call_threaded_spines_disassemble_with_their_summary() {
        let p = Program::srl()
            .define("grow", ["x", "T"], insert(var("x"), var("T")))
            .define(
                "collect",
                ["S"],
                set_reduce(
                    var("S"),
                    Lambda::identity(),
                    lam("x", "acc", call("grow", [var("x"), var("acc")])),
                    empty_set(),
                    empty_set(),
                ),
            );
        let c = p.compile();
        let text = disasm_program(&c);
        assert!(
            text.contains("class=proper-hom origin=spine(def#0)"),
            "{text}"
        );
    }

    #[test]
    fn typed_folds_disassemble_with_the_atom_tier() {
        use srl_core::types::Type;
        let p = Program::srl().define_typed(
            "copy",
            [("S", Type::set_of(Type::Atom))],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        );
        let c = p.compile();
        let text = disasm_program(&c);
        assert!(text.contains("tier=atom/atom"), "{text}");

        // Without the declaration, shape inference has nothing to stand on.
        let p = Program::srl().define(
            "copy",
            ["S"],
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        );
        let c = p.compile();
        let text = disasm_program(&c);
        assert!(text.contains("tier=generic/generic"), "{text}");
    }

    #[test]
    fn relation_folds_disassemble_with_the_tuple_tier() {
        use srl_core::types::Type;
        // A declared arity-2 relation: shape inference proves
        // set(tuple(atom, atom)) for both the traversed set and the
        // insert-spine accumulator, and the stamp prints as tuple(2).
        let p = Program::srl().define_typed(
            "copy",
            [("E", Type::relation(2))],
            set_reduce(
                var("E"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        );
        let c = p.compile();
        let text = disasm_program(&c);
        assert!(text.contains("tier=tuple(2)/tuple(2)"), "{text}");
    }

    #[test]
    fn branches_show_targets_and_takes_show_moves() {
        let p = Program::srl();
        let c = p.compile();
        let e = if_(var("b"), rest(var("S")), var("S"));
        let lowered = c.lower_expr(&e, &["b", "S"]);
        let text = disasm_lowered(&c, &lowered);
        assert!(text.contains("branch r"), "{text}");
        assert!(text.contains("take r1"), "{text}");
        assert!(text.contains("jump ->"), "{text}");
    }
}
