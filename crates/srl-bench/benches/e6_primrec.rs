//! E6 — Theorem 5.2 / Corollary 5.5: primitive recursion compiled to SRL+new
//! vs. the PrTerm evaluator; the LRL doubling blow-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machines::primrec::library;
use srl_core::eval::run_program;
use srl_core::limits::EvalLimits;
use srl_core::value::Value;
use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
use srl_stdlib::primrec_compile::{compile, eval_compiled};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_primrec");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    let add = compile(&library::add()).unwrap();
    let mul = compile(&library::mul()).unwrap();
    for n in [4u64, 8, 16] {
        group.bench_with_input(BenchmarkId::new("srl_new_add", n), &n, |b, &n| {
            b.iter(|| eval_compiled(&add, &[n, n / 2], EvalLimits::benchmark()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("primrec_add", n), &n, |b, &n| {
            b.iter(|| library::add().eval_u64(&[n, n / 2]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("srl_new_mul", n), &n, |b, &n| {
            b.iter(|| eval_compiled(&mul, &[n.min(8), 3], EvalLimits::benchmark()).unwrap())
        });
    }
    let doubling = lrl_doubling_program();
    for n in [2u64, 6, 10] {
        let input = Value::list((0..n).map(Value::atom));
        group.bench_with_input(BenchmarkId::new("lrl_doubling", n), &n, |b, _| {
            b.iter(|| {
                run_program(
                    &doubling,
                    blow_names::DOUBLING,
                    &[input.clone()],
                    EvalLimits::benchmark(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
