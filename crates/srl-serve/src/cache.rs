//! The per-tenant compiled-program cache.
//!
//! The serving front end sees the same program text over and over (clients
//! re-send their query library on every request), so each tenant keeps a
//! bounded cache of compiled artifacts, conceptually keyed by
//! [`program_fingerprint`] — the structural FNV hash of the parsed program.
//! Two texts that parse to the same structure (whitespace, comments,
//! definition formatting) share one entry.
//!
//! Lookup is two-level: a text-hash index in front of the fingerprint map
//! means a *byte-identical* resend skips the parser entirely, while a
//! reformatted program still hits the compiled entry after one parse. Both
//! levels count as a **hit** — a hit is "the compile stage was skipped",
//! which is what the `cache` object in every `run` response reports.
//!
//! Each entry owns a pooled [`Evaluator`] minted once from its artifact and
//! reused across queries (statistics are reset per query). This leans on the
//! hardened-execution rollback invariant: an evaluator whose previous query
//! failed — deadline, panicked shard worker, runtime error — answers its
//! next query byte-identically to a freshly minted one, so pooling is
//! observationally free (`reuse_after_error_leaves_the_pooled_evaluator
//! _fresh` in `tests/serve.rs` pins this end to end).
//!
//! Eviction is least-recently-used at a fixed capacity; the eviction count
//! is surfaced alongside hits and misses.

use std::collections::HashMap;

use srl_core::eval::Evaluator;
use srl_core::pipeline::{Compiled, Pipeline, Source};
use srl_core::program_fingerprint;
use srl_syntax::frontend::{FrontendError, TextFrontend};

/// One cached compiled program with its pooled evaluator.
pub struct CacheEntry {
    /// The compiled artifact (program + lowered arena + limits + backend).
    pub artifact: Compiled,
    /// The pooled evaluator, reused across queries of this program.
    pub evaluator: Evaluator,
    last_used: u64,
}

/// A bounded LRU cache of compiled programs, keyed by structural
/// fingerprint with a text-hash fast path.
pub struct ProgramCache {
    cap: usize,
    tick: u64,
    /// FNV(text) → fingerprint: the parse-skipping front level.
    by_text: HashMap<u64, u64>,
    /// fingerprint → entry: the compile-skipping level.
    entries: HashMap<u64, CacheEntry>,
    /// Queries answered from the cache (either level).
    pub hits: u64,
    /// Queries that had to compile.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

impl ProgramCache {
    /// An empty cache holding at most `cap` compiled programs (min 1).
    pub fn new(cap: usize) -> Self {
        ProgramCache {
            cap: cap.max(1),
            tick: 0,
            by_text: HashMap::new(),
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of compiled programs currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FNV-1a over the raw text — the front-level key.
    fn text_hash(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Resolves `text` to a resident compiled entry, compiling through
    /// `pipeline` on a miss. Returns the entry's fingerprint and whether
    /// the compile stage was skipped (a cache hit).
    ///
    /// Frontend (parse/check) errors are **not** cached: a tenant fixing a
    /// typo should not need to outwait a negative entry, and an attacker
    /// cannot fill the cache with garbage programs that never compiled.
    pub fn lookup_or_compile(
        &mut self,
        pipeline: &Pipeline,
        text: &str,
    ) -> Result<(u64, bool), FrontendError> {
        self.tick += 1;
        let th = Self::text_hash(text);
        if let Some(&fp) = self.by_text.get(&th) {
            if let Some(entry) = self.entries.get_mut(&fp) {
                entry.last_used = self.tick;
                self.hits += 1;
                return Ok((fp, true));
            }
            // The text mapping survived its entry's eviction; fall through
            // and recompile.
        }
        let source = Source::new("<request>", text.to_string());
        let artifact = pipeline.compile_source(&source)?;
        let fp = program_fingerprint(artifact.program());
        self.by_text.insert(th, fp);
        if let Some(entry) = self.entries.get_mut(&fp) {
            // Same structure under different formatting: still a hit (the
            // compile above was wasted once; the text index now remembers).
            entry.last_used = self.tick;
            self.hits += 1;
            return Ok((fp, true));
        }
        self.misses += 1;
        let evaluator = artifact.evaluator();
        self.entries.insert(
            fp,
            CacheEntry {
                artifact,
                evaluator,
                last_used: self.tick,
            },
        );
        if self.entries.len() > self.cap {
            self.evict_lru();
        }
        Ok((fp, false))
    }

    /// The entry for a fingerprint returned by [`lookup_or_compile`]
    /// (`Self::lookup_or_compile`) this query — present by construction.
    pub fn entry_mut(&mut self, fingerprint: u64) -> &mut CacheEntry {
        self.entries
            .get_mut(&fingerprint)
            .expect("entry_mut is only called with a fingerprint lookup_or_compile returned")
    }

    fn evict_lru(&mut self) {
        if let Some((&fp, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
            self.entries.remove(&fp);
            self.by_text.retain(|_, v| *v != fp);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::pipeline::Pipeline;

    const SINGLETON: &str = "singleton(x) = insert(x, emptyset)";

    #[test]
    fn byte_identical_resends_hit_without_reparsing() {
        let pipeline = Pipeline::new();
        let mut cache = ProgramCache::new(4);
        let (fp1, hit1) = cache.lookup_or_compile(&pipeline, SINGLETON).unwrap();
        let (fp2, hit2) = cache.lookup_or_compile(&pipeline, SINGLETON).unwrap();
        assert_eq!(fp1, fp2);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!((cache.hits, cache.misses, cache.evictions), (1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reformatted_programs_share_one_entry_by_fingerprint() {
        let pipeline = Pipeline::new();
        let mut cache = ProgramCache::new(4);
        let (fp1, _) = cache.lookup_or_compile(&pipeline, SINGLETON).unwrap();
        // Different bytes, same structure: second level catches it.
        let (fp2, hit2) = cache
            .lookup_or_compile(&pipeline, "singleton(x) =\n  insert(x, emptyset)")
            .unwrap();
        assert_eq!(fp1, fp2, "fingerprint is structural");
        assert!(hit2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let pipeline = Pipeline::new();
        let mut cache = ProgramCache::new(2);
        cache.lookup_or_compile(&pipeline, "a(x) = x").unwrap();
        cache.lookup_or_compile(&pipeline, "b(x) = [x, x]").unwrap();
        // Touch `a` so `b` is the least recently used…
        cache.lookup_or_compile(&pipeline, "a(x) = x").unwrap();
        cache
            .lookup_or_compile(&pipeline, "c(x) = insert(x, emptyset)")
            .unwrap();
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.len(), 2);
        // …so `a` is still a hit and `b` recompiles.
        let (_, hit_a) = cache.lookup_or_compile(&pipeline, "a(x) = x").unwrap();
        assert!(hit_a);
        let (_, hit_b) = cache.lookup_or_compile(&pipeline, "b(x) = [x, x]").unwrap();
        assert!(!hit_b, "the evicted entry must recompile");
    }

    #[test]
    fn frontend_errors_are_not_cached() {
        let pipeline = Pipeline::new();
        let mut cache = ProgramCache::new(4);
        assert!(cache.lookup_or_compile(&pipeline, "f(x = ").is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.hits, cache.misses), (0, 0));
    }
}
