//! Round-trip identity of the text front end.
//!
//! For every stdlib / workload program used by experiments E1–E9, and for
//! every stand-alone query expression the bench harness evaluates:
//!
//! * `parse(print(p))` is **structurally equal** to `p`;
//! * re-printing the parsed program reproduces the text byte-for-byte
//!   (the printer is a fixpoint of print ∘ parse);
//! * running the text-built program produces `EvalStats` byte-identical to
//!   the DSL-built program, on both execution backends.
//!
//! Also here: golden tests for the parse diagnostics (bad token, unbalanced
//! parenthesis, operator arity), asserting the span position and the
//! caret-rendered excerpt, and goldens pinning the committed
//! `examples/srl/*.srl` files to the printer's output for the programs they
//! mirror (regenerate with `SRL_REGEN=1 cargo test -p srl-integration-tests
//! --test parser_roundtrip`).

use srl_core::ast::Expr;
use srl_core::pipeline::Pipeline;
use srl_core::program::Program;
use srl_core::{EvalLimits, ExecBackend, Value};
use srl_syntax::parser::{parse_expr, parse_program_in, ParseErrorKind};
use srl_syntax::printer::{print_expr, print_program};
use srl_syntax::Span;

/// Every whole program the E1–E9 experiments evaluate.
fn experiment_programs() -> Vec<(&'static str, Program)> {
    use machines::primrec::library;
    use machines::tm::library::even_parity;
    vec![
        ("E1 apath", srl_stdlib::agap::apath_program()),
        ("E2 powerset", srl_stdlib::blowup::powerset_program()),
        ("E3 arithmetic", srl_stdlib::arith::arithmetic_program()),
        ("E4 permutations", srl_stdlib::perm::perm_program()),
        (
            "E6 primrec add",
            srl_stdlib::primrec_compile::compile(&library::add())
                .unwrap()
                .program,
        ),
        (
            "E6 primrec mul",
            srl_stdlib::primrec_compile::compile(&library::mul())
                .unwrap()
                .program,
        ),
        (
            "E6 lrl doubling",
            srl_stdlib::blowup::lrl_doubling_program(),
        ),
        (
            "E7 tm simulation",
            srl_stdlib::tm_sim::compile(&even_parity()),
        ),
    ]
}

/// Every stand-alone query expression the harness evaluates (E5, E8, E9).
fn experiment_queries() -> Vec<(&'static str, Expr)> {
    use srl_core::dsl::var;
    vec![
        ("E5 tc", srl_bench::queries::tc_query()),
        ("E5 dtc", srl_bench::queries::dtc_query()),
        (
            "E8 purple-first",
            srl_stdlib::hom::purple_first(var("S"), var("P")),
        ),
        ("E8 even", srl_stdlib::hom::even(var("S"))),
        ("E8 count", srl_stdlib::hom::count(var("S"))),
        ("E9 join", srl_bench::queries::company_join()),
        (
            "E9 select-project",
            srl_bench::queries::employees_in_department(3),
        ),
    ]
}

#[test]
fn every_experiment_program_roundtrips() {
    for (name, program) in experiment_programs() {
        let text = print_program(&program);
        let parsed = parse_program_in(&text, program.dialect)
            .unwrap_or_else(|e| panic!("{name}: {e}\n--- text ---\n{text}"));
        assert_eq!(parsed, program, "{name}: parse(print(p)) must equal p");
        assert_eq!(
            print_program(&parsed),
            text,
            "{name}: print must be a fixpoint"
        );
    }
}

#[test]
fn every_experiment_query_roundtrips() {
    for (name, expr) in experiment_queries() {
        let text = print_expr(&expr);
        let parsed =
            parse_expr(&text).unwrap_or_else(|e| panic!("{name}: {e}\n--- text ---\n{text}"));
        assert_eq!(parsed, expr, "{name}: parse(print(e)) must equal e");
        assert_eq!(
            print_expr(&parsed),
            text,
            "{name}: print must be a fixpoint"
        );
    }
}

#[test]
fn derived_operator_library_roundtrips() {
    use srl_core::dsl::{lam, sel, var};
    use srl_stdlib::derived;
    let exprs = vec![
        derived::union(var("A"), var("B")),
        derived::intersection(var("A"), var("B")),
        derived::difference(var("A"), var("B")),
        derived::member(var("x"), var("S")),
        derived::project(var("R"), 1),
        derived::select(
            var("R"),
            lam("t", "e", srl_core::dsl::eq(sel(var("t"), 1), var("e"))),
            var("k"),
        ),
    ];
    for expr in exprs {
        let text = print_expr(&expr);
        let parsed = parse_expr(&text).unwrap_or_else(|e| panic!("{e}\n--- text ---\n{text}"));
        assert_eq!(parsed, expr, "round trip of `{text}`");
    }
}

/// The acceptance gate: a program that flows in as *text* evaluates with
/// `EvalStats` byte-identical to the same program built from the DSL, on
/// both backends.
#[test]
fn text_programs_match_dsl_stats_on_both_backends() {
    let program = srl_stdlib::blowup::powerset_program();
    let text = print_program(&program);
    let input = Value::set((0..6).map(Value::atom));
    for backend in [ExecBackend::TreeWalk, ExecBackend::vm()] {
        let pipeline = Pipeline::new()
            .with_limits(EvalLimits::default())
            .with_backend(backend);
        let from_dsl = pipeline.prepare(program.clone()).unwrap();
        let from_text = pipeline
            .prepare(parse_program_in(&text, program.dialect).unwrap())
            .unwrap();
        let (dsl_value, dsl_stats) = from_dsl
            .call(
                srl_stdlib::blowup::names::POWERSET,
                std::slice::from_ref(&input),
            )
            .unwrap();
        let (text_value, text_stats) = from_text
            .call(
                srl_stdlib::blowup::names::POWERSET,
                std::slice::from_ref(&input),
            )
            .unwrap();
        assert_eq!(dsl_value, text_value, "{backend:?}");
        assert_eq!(
            dsl_stats, text_stats,
            "{backend:?}: EvalStats must be byte-identical between text and DSL"
        );
    }
}

// ---------------------------------------------------------------------
// Diagnostics goldens
// ---------------------------------------------------------------------

#[test]
fn golden_bad_token_diagnostic() {
    let src = "f(x) =\n  insert(x, $)\n";
    let err = srl_syntax::parse_program(src).unwrap_err();
    assert!(matches!(
        err.kind,
        ParseErrorKind::UnexpectedChar { found: '$' }
    ));
    assert_eq!(err.span, Span::new(19, 20));
    let rendered = err.to_diagnostic("bad.srl", src).to_string();
    assert!(
        rendered.contains("error: unexpected character `$`"),
        "{rendered}"
    );
    assert!(rendered.contains("bad.srl:2:13"), "{rendered}");
    assert!(rendered.contains("2 |   insert(x, $)"), "{rendered}");
    // The caret sits under the `$` (column 13 → 12 spaces into the line).
    assert!(
        rendered.contains(&format!(" | {}^", " ".repeat(12))),
        "{rendered}"
    );
}

#[test]
fn golden_unbalanced_paren_diagnostic() {
    let src = "f(x) =\n  insert(x, emptyset\n";
    let err = srl_syntax::parse_program(src).unwrap_err();
    assert_eq!(
        err.kind,
        ParseErrorKind::UnclosedDelimiter { delimiter: "(" }
    );
    // The span points at the `(` that was never closed, not at end of input.
    assert_eq!(err.span, Span::new(15, 16));
    let rendered = err.to_diagnostic("open.srl", src).to_string();
    assert!(
        rendered.contains("error: this `(` is never closed"),
        "{rendered}"
    );
    assert!(rendered.contains("open.srl:2:9"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}

#[test]
fn golden_arity_diagnostic() {
    let src = "f(x) = insert(x)";
    let err = srl_syntax::parse_program(src).unwrap_err();
    assert_eq!(
        err.kind,
        ParseErrorKind::OperatorArity {
            operator: "insert",
            expected: 2,
            found: 1
        }
    );
    // The span covers the whole application, head through closing paren.
    assert_eq!(err.span, Span::new(7, 16));
    let rendered = err.to_diagnostic("arity.srl", src).to_string();
    assert!(
        rendered.contains("error: `insert` expects 2 argument(s) but was given 1"),
        "{rendered}"
    );
    assert!(rendered.contains("arity.srl:1:8"), "{rendered}");
    assert!(rendered.contains("^^^^^^^^^"), "{rendered}");
}

// ---------------------------------------------------------------------
// Committed .srl example files
// ---------------------------------------------------------------------

/// The committed text examples that mirror DSL-built programs must be
/// byte-identical to what the printer emits for those programs (so `srl run`
/// on the file evaluates exactly the program the experiments measure).
/// `SRL_REGEN=1` rewrites them from the current printer output.
#[test]
fn example_srl_files_are_in_sync_with_the_printer() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/srl");
    let cases: Vec<(&str, Program)> = vec![
        ("powerset.srl", srl_stdlib::blowup::powerset_program()),
        ("arith.srl", srl_stdlib::arith::arithmetic_program()),
        ("apath.srl", srl_stdlib::agap::apath_program()),
    ];
    for (file, program) in cases {
        let path = format!("{dir}/{file}");
        let expected = format!(
            "// {file} — generated from the DSL construction by the printer;\n\
             // regenerate with: SRL_REGEN=1 cargo test -p srl-integration-tests --test parser_roundtrip\n{}",
            print_program(&program)
        );
        if std::env::var_os("SRL_REGEN").is_some() {
            std::fs::write(&path, &expected).unwrap();
            continue;
        }
        let actual = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run with SRL_REGEN=1 to generate)"));
        assert_eq!(
            actual, expected,
            "{file} is stale; regenerate with SRL_REGEN=1"
        );
    }
}

#[test]
fn example_srl_files_parse_and_run() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/srl");
    for entry in std::fs::read_dir(dir).expect("examples/srl exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("srl") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let program =
            srl_syntax::parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        Pipeline::new()
            .prepare(program)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    // The handwritten membership example actually runs.
    let text = std::fs::read_to_string(format!("{dir}/membership.srl")).unwrap();
    let artifact = Pipeline::new()
        .prepare(srl_syntax::parse_program(&text).unwrap())
        .unwrap();
    let (value, _) = artifact.call("main", &[]).unwrap();
    assert_eq!(value, Value::bool(true));
}
