//! Differential test: the bytecode VM against the tree-walking evaluator.
//!
//! The VM backend (`srl_core::ExecBackend::Vm`) promises **identical
//! `Value` results and byte-identical `EvalStats`** on every successful
//! evaluation — superinstruction fusion, batched accounting and last-use
//! register moves are pure machine-level changes. This suite drives both
//! backends over every srl-bench query workload (E1–E9), the derived-operator
//! library, deterministic property-style random programs, and the error
//! paths, comparing results and statistics field-for-field (and, for error
//! cases, the error kind).

use std::sync::Arc;

use srl_core::dsl::*;
use srl_core::{
    Dialect, Env, EvalError, EvalLimits, EvalStats, Evaluator, ExecBackend, Expr, Lambda, Program,
    Value,
};
use srl_integration_tests::atom_set;

/// Runs `f` under both backends over one shared compiled program and
/// returns the two `(result, stats)` outcomes.
#[allow(clippy::type_complexity)]
fn both<R>(
    program: &Program,
    limits: EvalLimits,
    mut f: impl FnMut(&mut Evaluator) -> Result<R, EvalError>,
) -> (
    Result<(R, EvalStats), EvalError>,
    Result<(R, EvalStats), EvalError>,
) {
    let compiled = Arc::new(program.compile());
    let mut run = |backend: ExecBackend| {
        let mut ev = Evaluator::with_compiled(program, Arc::clone(&compiled), limits)
            .expect("compiled from this program")
            .with_backend(backend);
        let value = f(&mut ev)?;
        Ok((value, *ev.stats()))
    };
    (run(ExecBackend::TreeWalk), run(ExecBackend::vm()))
}

/// Asserts both backends succeed with the same value and byte-identical
/// statistics; returns the value.
fn assert_identical<R: PartialEq + std::fmt::Debug>(
    program: &Program,
    limits: EvalLimits,
    label: &str,
    f: impl FnMut(&mut Evaluator) -> Result<R, EvalError>,
) -> R {
    let (tree, vm) = both(program, limits, f);
    let (tree_value, tree_stats) =
        tree.unwrap_or_else(|e| panic!("{label}: tree-walk failed: {e}"));
    let (vm_value, vm_stats) = vm.unwrap_or_else(|e| panic!("{label}: VM failed: {e}"));
    assert_eq!(tree_value, vm_value, "{label}: values differ");
    assert_eq!(tree_stats, vm_stats, "{label}: EvalStats differ");
    tree_value
}

/// Asserts both backends fail with the same error kind.
fn assert_same_error(
    program: &Program,
    limits: EvalLimits,
    label: &str,
    f: impl FnMut(&mut Evaluator) -> Result<Value, EvalError>,
) -> EvalError {
    let (tree, vm) = both(program, limits, f);
    let tree_err = match tree {
        Err(e) => e,
        Ok((v, _)) => panic!("{label}: tree-walk unexpectedly succeeded with {v}"),
    };
    let vm_err = match vm {
        Err(e) => e,
        Ok((v, _)) => panic!("{label}: VM unexpectedly succeeded with {v}"),
    };
    assert_eq!(
        std::mem::discriminant(&tree_err),
        std::mem::discriminant(&vm_err),
        "{label}: error kinds differ (tree: {tree_err:?}, vm: {vm_err:?})"
    );
    tree_err
}

fn assert_expr_identical(program: &Program, expr: &Expr, env: &Env, label: &str) -> Value {
    assert_identical(program, EvalLimits::benchmark(), label, |ev| {
        ev.eval(expr, env)
    })
}

// ---------------------------------------------------------------------------
// The srl-bench query workloads, E1–E9.
// ---------------------------------------------------------------------------

#[test]
fn e1_apath_agrees() {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    let program = apath_program();
    for n in [4usize, 6] {
        let graph = AlternatingGraph::random(n, 0.25, 7 + n as u64);
        let args = [graph.nodes_value(), graph.edges_value(), graph.ands_value()];
        assert_identical(&program, EvalLimits::benchmark(), "E1 APATH", |ev| {
            ev.call(names::APATH, &args)
        });
    }
}

#[test]
fn e2_powerset_agrees() {
    use srl_stdlib::blowup::{names, powerset_program};

    let program = powerset_program();
    for n in [0u64, 1, 3, 6, 8] {
        let input = atom_set(0..n);
        let v = assert_identical(&program, EvalLimits::default(), "E2 powerset", |ev| {
            ev.call(names::POWERSET, std::slice::from_ref(&input))
        });
        assert_eq!(v.len(), Some(1 << n));
    }
}

#[test]
fn e3_basrl_arithmetic_agrees() {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let program = arithmetic_program();
    let n = 16u64;
    let d = domain(n);
    for (name, extra) in [
        (names::ADD, vec![5u64, 4]),
        (names::MULT, vec![3, 4]),
        (names::BIT, vec![1, 5]),
    ] {
        let mut args = vec![d.clone()];
        args.extend(extra.iter().map(|&x| Value::atom(x)));
        assert_identical(&program, EvalLimits::benchmark(), name, |ev| {
            ev.call(name, &args)
        });
    }
}

#[test]
fn e4_permutation_product_agrees() {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    let program = perm_program();
    let n = 6usize;
    let instance = IteratedProductInstance::random(n, n, 11 + n as u64);
    let args = [
        padded_domain(&instance),
        instance.to_srl_value(),
        Value::atom(2),
    ];
    assert_identical(&program, EvalLimits::benchmark(), "E4 IP", |ev| {
        ev.call(names::IP, &args)
    });
}

#[test]
fn e5_tc_dtc_agree_lowered_and_direct() {
    use srl_bench::queries;
    use workloads::digraph::Digraph;

    let program = Program::new(Dialect::full());
    for n in [6usize, 10] {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        for (label, expr) in [
            ("E5 TC", queries::tc_query()),
            ("E5 DTC", queries::dtc_query()),
        ] {
            // The lower-once / evaluate-many path both times.
            assert_identical(&program, EvalLimits::benchmark(), label, |ev| {
                let lowered = ev.lower(&expr, &env);
                ev.eval_lowered(&lowered, &env)
            });
        }
    }
}

#[test]
fn e6_primrec_and_lrl_doubling_agree() {
    use machines::primrec::library;
    use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
    use srl_stdlib::primrec_compile::{compile, encode_nat};

    let add = compile(&library::add()).expect("add compiles");
    let args = [encode_nat(5), encode_nat(3)];
    let entry = add.entry.clone();
    assert_identical(&add.program, EvalLimits::benchmark(), "E6 PR add", |ev| {
        ev.call(&entry, &args)
    });

    let doubling = lrl_doubling_program();
    let input = Value::list((0..5u64).map(Value::atom));
    assert_identical(&doubling, EvalLimits::default(), "E6 LRL doubling", |ev| {
        ev.call(blow_names::DOUBLING, std::slice::from_ref(&input))
    });
}

#[test]
fn e7_tm_simulation_agrees() {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    let program = compile(&even_parity());
    for n in [4usize, 9, 16] {
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let args = [position_domain(n), encode_input(&input)];
        assert_identical(&program, EvalLimits::benchmark(), "E7 accepts", |ev| {
            ev.call(names::ACCEPTS, &args)
        });
    }
}

#[test]
fn e9_relational_queries_agree() {
    use srl_bench::queries;
    use workloads::tables::CompanyDatabase;

    let program = Program::new(Dialect::full());
    let db = CompanyDatabase::generate(16, 4, 4, 47);
    let env = Env::new()
        .bind("EMP", db.employees_value())
        .bind("DEPT", db.departments_value());
    assert_expr_identical(&program, &queries::company_join(), &env, "E9 join");
    assert_expr_identical(
        &program,
        &queries::employees_in_department(db.departments[0].id),
        &env,
        "E9 select/project",
    );
}

#[test]
fn e8_order_dependence_probes_agree() {
    use srl_stdlib::hom;

    let program = Program::srl();
    let env = Env::new()
        .bind("S", atom_set([0, 2, 4, 6]))
        .bind("P", atom_set([6]));
    assert_expr_identical(
        &program,
        &hom::purple_first(var("S"), var("P")),
        &env,
        "E8 purple_first",
    );
    assert_expr_identical(&program, &hom::even(var("S")), &env, "E8 even");
}

// ---------------------------------------------------------------------------
// The derived-operator library (which the fused folds target directly).
// ---------------------------------------------------------------------------

/// SplitMix64, as in `property_tests.rs`.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn small_set(&mut self) -> Value {
        let len = self.next_u64() % 10;
        atom_set((0..len).map(|_| self.next_u64() % 24).collect::<Vec<_>>())
    }
}

#[test]
fn derived_operators_agree_on_random_sets() {
    use srl_stdlib::derived::{
        big_union, cartesian, difference, intersection, is_empty, member, set_eq, subset, union,
    };

    let program = Program::srl();
    let mut g = Gen(42);
    for case in 0..24 {
        let env = Env::new()
            .bind("A", g.small_set())
            .bind("B", g.small_set())
            .bind("x", Value::atom(g.next_u64() % 24));
        for (label, expr) in [
            ("union", union(var("A"), var("B"))),
            ("intersection", intersection(var("A"), var("B"))),
            ("difference", difference(var("A"), var("B"))),
            ("member", member(var("x"), var("A"))),
            ("subset", subset(var("A"), var("B"))),
            ("set_eq", set_eq(var("A"), var("B"))),
            ("is_empty", is_empty(var("A"))),
            ("cartesian", cartesian(var("A"), var("B"))),
        ] {
            let v = assert_expr_identical(&program, &expr, &env, &format!("{label} (case {case})"));
            // The bulk SetRepr merges must stay in semantic lock-step with
            // the evaluated Fact 2.4 operators (the VM's fused union fold
            // runs on merge_union; merge_sorted_difference is the bulk form
            // native callers get instead of driving member() per element).
            let (a, b) = (
                env.get("A").unwrap().as_set().unwrap(),
                env.get("B").unwrap().as_set().unwrap(),
            );
            match label {
                "union" => assert_eq!(
                    v,
                    Value::Set(Arc::new(b.merge_union(a))),
                    "merge_union drifted from the evaluated union (case {case})"
                ),
                "difference" => assert_eq!(
                    v,
                    Value::Set(Arc::new(a.merge_sorted_difference(b))),
                    "merge_sorted_difference drifted from the evaluated difference (case {case})"
                ),
                _ => {}
            }
        }
        let nested = Env::new().bind(
            "SS",
            Value::set([g.small_set(), g.small_set(), g.small_set()]),
        );
        assert_expr_identical(
            &program,
            &big_union(var("SS")),
            &nested,
            &format!("big_union (case {case})"),
        );
    }
}

#[test]
fn first_wins_deduplication_survives_the_merge_fold() {
    use srl_stdlib::derived::union;

    // Equal atoms that differ in display: the union fold must keep the
    // accumulator's copy, under both the per-element and merge paths.
    let program = Program::srl();
    let env = Env::new()
        .bind("A", Value::set([Value::atom(1), Value::atom(2)]))
        .bind(
            "B",
            Value::set([Value::named_atom(2, "kept"), Value::named_atom(3, "b")]),
        );
    let v = assert_expr_identical(&program, &union(var("A"), var("B")), &env, "named union");
    let shown = format!("{v}");
    assert!(shown.contains("kept#2"), "{shown}");
}

// ---------------------------------------------------------------------------
// Core-form coverage: folds, takes, shadowing, lists, nats, new.
// ---------------------------------------------------------------------------

#[test]
fn accumulator_through_calls_stays_correct() {
    // The powerset shape in miniature: the accumulator is threaded through a
    // Call in the acc lambda (the VM moves it; the tree-walk clones it).
    let program = Program::srl().define(
        "grow",
        ["x", "T"],
        insert(var("x"), insert(tuple([var("x"), var("x")]), var("T"))),
    );
    let fold = set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "T", call("grow", [var("x"), var("T")])),
        empty_set(),
        empty_set(),
    );
    let env = Env::new().bind("S", atom_set([3, 1, 4, 1, 5]));
    let v = assert_expr_identical(&program, &fold, &env, "call-threaded fold");
    assert_eq!(v.len(), Some(8));
}

#[test]
fn folds_reading_enclosing_state_agree() {
    // The acc lambda ignores its accumulator and reads/builds from the
    // *enclosing* S — the take optimization must not steal outer slots.
    let program = Program::srl();
    let fold = set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "acc", insert(var("x"), var("S"))),
        empty_set(),
        empty_set(),
    );
    let env = Env::new().bind("S", atom_set([1, 2, 3]));
    let v = assert_expr_identical(&program, &fold, &env, "outer-state fold");
    assert_eq!(v, atom_set([1, 2, 3]));
}

#[test]
fn call_with_duplicate_argument_slots_agrees() {
    // call(pair, acc, acc): only the last use may be moved.
    let program = Program::srl().define("pair", ["a", "b"], tuple([var("a"), var("b")]));
    let fold = set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "acc", sel(call("pair", [var("acc"), var("acc")]), 1)),
        const_v(Value::atom(9)),
        empty_set(),
    );
    let env = Env::new().bind("S", atom_set([1, 2]));
    let v = assert_expr_identical(&program, &fold, &env, "duplicate call args");
    assert_eq!(v, Value::atom(9));
}

#[test]
fn choose_rest_worklist_agrees() {
    let program = Program::srl();
    // Two steps of a worklist: pull the minimum twice via let-bound rests.
    let expr = let_in(
        "m1",
        choose(var("S")),
        let_in(
            "R",
            rest(var("S")),
            let_in(
                "m2",
                choose(var("R")),
                tuple([var("m1"), var("m2"), rest(var("R"))]),
            ),
        ),
    );
    let env = Env::new().bind("S", atom_set([7, 3, 9, 5]));
    let v = assert_expr_identical(&program, &expr, &env, "choose/rest worklist");
    assert_eq!(
        v,
        Value::tuple([Value::atom(3), Value::atom(5), atom_set([7, 9])])
    );
}

#[test]
fn shadowed_lets_and_reused_slots_agree() {
    let program = Program::srl();
    let expr = tuple([
        let_in("a", atom(1), insert(var("a"), empty_set())),
        let_in("a", atom(2), insert(var("a"), empty_set())),
        let_in("a", atom(3), let_in("a", atom(4), var("a"))),
    ]);
    let v = assert_expr_identical(&program, &expr, &Env::new(), "slot reuse");
    assert_eq!(
        v,
        Value::tuple([atom_set([1]), atom_set([2]), Value::atom(4)])
    );
}

#[test]
fn nat_arithmetic_and_new_agree() {
    let program = Program::new(Dialect::full());
    let env = Env::new().bind("S", atom_set([3, 7]));
    for (label, expr) in [
        ("nat add", nat_add(nat(2), nat(3))),
        ("nat mul", nat_mul(nat(6), nat(7))),
        ("succ", succ(nat(41))),
        ("new", new_value(var("S"))),
        ("succ-set", insert(new_value(var("S")), var("S"))),
    ] {
        assert_expr_identical(&program, &expr, &env, label);
    }
}

#[test]
fn lists_agree() {
    let program = Program::new(Dialect::lrl());
    let l = cons(atom(1), cons(atom(2), cons(atom(1), empty_list())));
    let rebuild = list_reduce(
        l.clone(),
        Lambda::identity(),
        lam("x", "acc", cons(var("x"), var("acc"))),
        empty_list(),
        empty_set(),
    );
    let env = Env::new();
    for (label, expr) in [
        ("list literal", l.clone()),
        ("head", head(l.clone())),
        ("tail", tail(l)),
        ("list rebuild", rebuild),
    ] {
        assert_expr_identical(&program, &expr, &env, label);
    }
}

#[test]
fn scan_fold_keeps_last_match() {
    // read_cell's shape: [value, flag] pairs, keep the flagged value.
    let program = Program::srl();
    let fold = set_reduce(
        var("T"),
        lam(
            "c",
            "p",
            tuple([sel(var("c"), 2), eq(sel(var("c"), 1), var("p"))]),
        ),
        lam(
            "pr",
            "acc",
            if_(sel(var("pr"), 2), sel(var("pr"), 1), var("acc")),
        ),
        atom(99),
        var("p"),
    );
    let env = Env::new()
        .bind(
            "T",
            Value::set([
                Value::tuple([Value::atom(0), Value::atom(10)]),
                Value::tuple([Value::atom(1), Value::atom(11)]),
                Value::tuple([Value::atom(2), Value::atom(12)]),
            ]),
        )
        .bind("p", Value::atom(1));
    let v = assert_expr_identical(&program, &fold, &env, "scan fold");
    assert_eq!(v, Value::atom(11));
}

// ---------------------------------------------------------------------------
// Error-path parity (kinds must match; partial stats may differ).
// ---------------------------------------------------------------------------

#[test]
fn error_kinds_agree() {
    let srl = Program::srl();
    let full = Program::new(Dialect::full());
    let env_s = Env::new().bind("S", atom_set(0..64));

    let cases: Vec<(&str, &Program, Expr, Env, EvalLimits)> = vec![
        (
            "choose empty",
            &srl,
            choose(empty_set()),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "unbound variable",
            &srl,
            var("nope"),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "unknown call",
            &srl,
            call("nope", [atom(1)]),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "dialect violation",
            &srl,
            new_value(empty_set()),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "if non-boolean",
            &srl,
            if_(atom(1), atom(1), atom(2)),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "selector out of range",
            &srl,
            sel(tuple([atom(1)]), 3),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "insert into non-set",
            &srl,
            insert(atom(1), atom(2)),
            Env::new(),
            EvalLimits::default(),
        ),
        (
            "step limit",
            &srl,
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
            env_s.clone(),
            EvalLimits::default().with_max_steps(50),
        ),
        (
            "size limit",
            &srl,
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
            env_s,
            EvalLimits::default().with_max_value_weight(10),
        ),
        (
            "nat width limit",
            &full,
            nat_mul(nat(1 << 7), nat(1 << 7)),
            Env::new(),
            EvalLimits::default().with_max_nat_bits(8),
        ),
        (
            "union fold into non-set base",
            &srl,
            set_reduce(
                var("S"),
                Lambda::identity(),
                lam("x", "acc", insert(var("x"), var("acc"))),
                atom(1),
                empty_set(),
            ),
            Env::new().bind("S", atom_set([1, 2])),
            EvalLimits::default(),
        ),
    ];
    for (label, program, expr, env, limits) in cases {
        assert_same_error(program, limits, label, |ev| ev.eval(&expr, &env));
    }

    // Arity mismatch through the compiled call path.
    let program = Program::srl().define("pair", ["a", "b"], tuple([var("a"), var("b")]));
    assert_same_error(&program, EvalLimits::default(), "arity mismatch", |ev| {
        ev.eval(&call("pair", [atom(1)]), &Env::new())
    });
}

#[test]
fn depth_limit_kind_agrees() {
    let program = Program::srl();
    let mut e = atom(0);
    for _ in 0..100 {
        e = tuple([e]);
    }
    assert_same_error(
        &program,
        EvalLimits::default().with_max_depth(10),
        "depth limit",
        |ev| ev.eval(&e, &Env::new()),
    );
}
