//! # Interprocedural fold-classification report
//!
//! The compiled-artifact counterpart of [`crate::order`]: where that module
//! proves order-independence on the *surface syntax*, this one reads the
//! verdicts the compiler already committed to — every lowered reduce
//! instruction carries its [`FoldClass`] (what gates sharding), its
//! [`FoldOrigin`] (where the verdict came from: a fused shape, the
//! interprocedural spine summary of [`srl_core::analysis`], a named
//! obstacle, or list semantics), and its static unit cost. This module
//! walks a chunk, attributes each reduce to its enclosing definition, and
//! renders the origin as a human-readable reason with definition names
//! resolved — the data behind `srl analyze` and the REPL's `:classify`.
//!
//! Two entry points mirror the two chunk forms:
//!
//! * [`analyze_compiled`] — a whole program: per-definition spine-summary
//!   rows plus one [`FoldRow`] per reduce instruction, in block order.
//! * [`analyze_expression`] — a stand-alone query lowered against a
//!   program (expression chunks have no definitions; rows carry no
//!   definition name).
//!
//! The report is *descriptive*, not a re-analysis: it prints exactly the
//! classification the VM and the worker pool will act on, so what
//! `srl analyze` says is by construction what `srl run --threads N` does.

use srl_core::bytecode::{Chunk, Insn, ReduceInsn};
use srl_core::lower::LoweredExpr;
use srl_core::{CompiledProgram, DefSummaries, FoldClass, FoldOrigin, SpineBlock};

/// One reduce instruction's verdict: the fold strategy, the class that
/// gates sharding, the provenance of that class, and a rendered reason.
#[derive(Clone, Debug)]
pub struct FoldRow {
    /// Enclosing definition name; `None` inside an expression chunk.
    pub def: Option<String>,
    /// Block id holding the reduce instruction.
    pub block: u32,
    /// `true` for a `list-reduce`.
    pub is_list: bool,
    /// Fold strategy label (see `ReduceKind::label`): `generic`, `member`,
    /// `union`, `insert-app`, `filter`, `bool-acc`, `scan`, `monotone`.
    pub kind: &'static str,
    /// The compile-time algebraic class — [`FoldClass::ProperHom`] folds
    /// may be sharded across the worker pool.
    pub class: FoldClass,
    /// Where the class came from (kept for programmatic consumers; the
    /// rendered form is [`FoldRow::reason`]).
    pub origin: FoldOrigin,
    /// Static per-element cost estimate (the parallel executor multiplies
    /// it by input cardinality to decide whether sharding pays).
    pub unit_cost: u32,
    /// Storage-tier label of the traversed set (`"atom"` when shape
    /// inference proved `set(atom)`, `"tuple(k)"` when it proved an
    /// arity-k atom-tuple set — the columnar tier pre-engages either way;
    /// `"generic"` otherwise — see `srl_core::bytecode::SetTier`).
    pub tier: String,
    /// Storage-tier label of the fold's accumulator, same vocabulary as
    /// [`FoldRow::tier`]; `"generic"` for list folds.
    pub acc_tier: String,
    /// Human-readable reason for the verdict, definition names resolved.
    pub reason: String,
}

impl FoldRow {
    /// Whether the combiner was proved order-independent — exactly the
    /// sharding eligibility the executor uses.
    pub fn order_independent(&self) -> bool {
        self.class == FoldClass::ProperHom
    }
}

/// One definition's interprocedural spine summary: the parameter (if any)
/// through which every call threads into a pure insert spine.
#[derive(Clone, Debug)]
pub struct SpineRow {
    /// Definition name.
    pub def: String,
    /// Name of the spine parameter, or `None` when the definition has no
    /// provable spine (it inspects every set parameter, or is recursive).
    pub spine_param: Option<String>,
}

/// A whole program's interprocedural report: per-definition spine
/// summaries plus every reduce instruction's verdict row.
#[derive(Clone, Debug)]
pub struct InterprocReport {
    /// One row per definition, in definition order.
    pub spines: Vec<SpineRow>,
    /// One row per reduce instruction, in block order.
    pub folds: Vec<FoldRow>,
}

/// Analyzes a compiled program: recomputes the definition summaries (cheap,
/// and identical to what codegen used) and collects every reduce
/// instruction's committed verdict. Forces bytecode generation if it has
/// not happened yet.
pub fn analyze_compiled(program: &CompiledProgram) -> InterprocReport {
    let summaries = DefSummaries::compute(program);
    let spines = program
        .defs()
        .iter()
        .enumerate()
        .map(|(i, def)| SpineRow {
            def: program.def_name(def).to_string(),
            spine_param: summaries.spine_param(i as u32).map(|p| {
                program
                    .symbols()
                    .resolve(def.params[usize::from(p)])
                    .to_string()
            }),
        })
        .collect();
    InterprocReport {
        spines,
        folds: fold_rows(program, program.code()),
    }
}

/// Analyzes a stand-alone lowered expression against its program. The
/// expression chunk has no definitions of its own, so rows carry no
/// definition name; call-threaded verdicts still name the *program's*
/// definitions (the summaries cross the chunk boundary).
pub fn analyze_expression(program: &CompiledProgram, lowered: &LoweredExpr) -> Vec<FoldRow> {
    fold_rows(program, lowered.code(program))
}

fn fold_rows(program: &CompiledProgram, chunk: &Chunk) -> Vec<FoldRow> {
    let mut rows = Vec::new();
    for (id, block) in chunk.blocks().iter().enumerate() {
        let block = block.code();
        for insn in block {
            let Insn::Reduce(r) = insn else { continue };
            rows.push(FoldRow {
                def: def_of_block(program, chunk, id as u32),
                block: id as u32,
                is_list: r.is_list,
                kind: r.kind.label(),
                class: r.class,
                origin: r.origin,
                unit_cost: r.unit_cost,
                tier: r.tier.label(),
                acc_tier: r.acc_tier.label(),
                reason: render_reason(program, r),
            });
        }
    }
    rows
}

/// Maps a block id back to the definition that owns it. `gen_frame` pushes
/// a definition's nested lambda blocks first and its root block last, so
/// definition `i` owns the contiguous block range ending at
/// `defs[i].block`: the owner is the first definition whose root block id
/// is `>= id`. Expression chunks have no definitions; every block maps to
/// `None`.
fn def_of_block(program: &CompiledProgram, chunk: &Chunk, id: u32) -> Option<String> {
    let owner = chunk.defs().iter().position(|d| id <= d.block)?;
    Some(program.def_name(&program.defs()[owner]).to_string())
}

fn def_name(program: &CompiledProgram, def: u32) -> &str {
    program.def_name(&program.defs()[def as usize])
}

/// Renders a reduce's provenance as one sentence, resolving definition
/// indices to names. Fused shapes describe the algebra the kind named;
/// obstacles say what blocked the spine proof.
fn render_reason(program: &CompiledProgram, r: &ReduceInsn) -> String {
    match &r.origin {
        FoldOrigin::List => {
            "list semantics: duplicates and stored order are observable".to_string()
        }
        FoldOrigin::SummarySpine { via } => format!(
            "call-threaded accumulator spine through `{}` (interprocedural summary)",
            def_name(program, *via)
        ),
        FoldOrigin::Unproven(SpineBlock::NotThreaded) => {
            "combiner result does not thread the accumulator".to_string()
        }
        FoldOrigin::Unproven(SpineBlock::Inspected) => {
            "combiner reads the accumulator outside the insert spine".to_string()
        }
        FoldOrigin::Unproven(SpineBlock::CalleeNoSpine(def)) => format!(
            "calls `{}`, which has no spine-parameter summary",
            def_name(program, *def)
        ),
        FoldOrigin::Shape => match r.kind.label() {
            "member" => "fused shape: membership scan (or-fold of equality)".to_string(),
            "union" => "fused shape: union by insertion (bulk sorted merge)".to_string(),
            "insert-app" => "fused shape: map-style insert fold".to_string(),
            "filter" => "fused shape: conditional-insert filter".to_string(),
            "bool-acc" => "fused shape: boolean quantifier fold".to_string(),
            "scan" => "fused shape: keep-last-match scan observes traversal order".to_string(),
            "monotone" => "fused shape: local monotone insert spine (y ∪ g(x))".to_string(),
            other => format!("fused shape: {other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::ast::Lambda;
    use srl_core::dsl::*;
    use srl_core::program::Program;

    /// Example 3.12's powerset: finsert has a spine parameter, sift's inner
    /// fold is proved through it, and the outer fold is blocked by sift.
    fn powerset_program() -> Program {
        Program::srl()
            .define(
                "finsert",
                ["p", "T"],
                insert(
                    sel(var("p"), 1),
                    insert(insert(sel(var("p"), 2), sel(var("p"), 1)), var("T")),
                ),
            )
            .define(
                "sift",
                ["x", "T"],
                set_reduce(
                    var("T"),
                    lam("y", "e", tuple([var("y"), var("e")])),
                    lam("pair", "acc", call("finsert", [var("pair"), var("acc")])),
                    empty_set(),
                    var("x"),
                ),
            )
            .define(
                "powerset",
                ["S"],
                set_reduce(
                    var("S"),
                    lam("x", "y", var("x")),
                    lam("x", "T", call("sift", [var("x"), var("T")])),
                    insert(empty_set(), empty_set()),
                    empty_set(),
                ),
            )
    }

    #[test]
    fn powerset_report_names_the_spine_and_the_obstacle() {
        let c = powerset_program().compile();
        let report = analyze_compiled(&c);

        let spine: Vec<(&str, Option<&str>)> = report
            .spines
            .iter()
            .map(|s| (s.def.as_str(), s.spine_param.as_deref()))
            .collect();
        assert_eq!(
            spine,
            vec![("finsert", Some("T")), ("sift", None), ("powerset", None),]
        );

        let sift = report
            .folds
            .iter()
            .find(|f| f.def.as_deref() == Some("sift"))
            .unwrap();
        assert_eq!(sift.kind, "generic");
        assert!(sift.order_independent());
        assert!(sift.reason.contains("`finsert`"), "{}", sift.reason);

        let outer = report
            .folds
            .iter()
            .find(|f| f.def.as_deref() == Some("powerset"))
            .unwrap();
        assert_eq!(outer.class, FoldClass::Ordered);
        assert!(!outer.order_independent());
        assert!(outer.reason.contains("`sift`"), "{}", outer.reason);
    }

    #[test]
    fn expression_rows_have_no_definition_and_fused_reasons() {
        let c = Program::srl().compile();
        // member(a, S) fuses to the binary-search scan.
        let member = set_reduce(
            var("S"),
            lam("x", "y", eq(var("x"), var("y"))),
            lam("a", "b", or(var("a"), var("b"))),
            atom(0),
            var("a"),
        );
        let lowered = c.lower_expr(&member, &["a", "S"]);
        let rows = analyze_expression(&c, &lowered);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].def, None);
        assert_eq!(rows[0].kind, "member");
        assert!(rows[0].order_independent());
        assert!(rows[0].reason.contains("membership"), "{}", rows[0].reason);
    }

    #[test]
    fn ordered_folds_report_their_obstacle() {
        let c = Program::srl().compile();
        // Keep-left: the combiner result never threads the accumulator.
        let keep_left = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "y", var("x")),
            empty_set(),
            empty_set(),
        );
        let lowered = c.lower_expr(&keep_left, &["S"]);
        let rows = analyze_expression(&c, &lowered);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].class, FoldClass::Ordered);
        assert!(
            rows[0].reason.contains("does not thread"),
            "{}",
            rows[0].reason
        );
    }
}
