//! Cai–Fürer–Immerman construction.
//!
//! Theorem 7.7 of the paper appeals to the structures of Cai, Fürer and
//! Immerman [11]: a sequence of pairs Gₙ, Hₙ of graphs that (i) are **not**
//! isomorphic, (ii) can be told apart in polynomial (indeed linear) time once
//! an ordering of the vertices is available, but (iii) agree on all sentences
//! of counting logic with a bounded number of variables — equivalently, are
//! indistinguishable by bounded-dimensional Weisfeiler–Leman refinement.
//! This is what separates (FO(wo≤) + LFP + count), and the hom-based language
//! of Proposition 7.6, from order-independent P.
//!
//! This module reconstructs the standard CFI gadget construction over an
//! arbitrary connected base graph:
//!
//! * for every base vertex `v` with incident edges `E(v)`, one *middle*
//!   vertex `m_{v,S}` per even-cardinality subset `S ⊆ E(v)`;
//! * for every incident pair `(v, e)`, two *port* vertices `a_{v,e}` ("1")
//!   and `b_{v,e}` ("0");
//! * gadget edges `m_{v,S} — a_{v,e}` when `e ∈ S` and `m_{v,S} — b_{v,e}`
//!   when `e ∉ S`;
//! * for every base edge `e = {u, v}`: the straight connection
//!   `a_{u,e}—a_{v,e}, b_{u,e}—b_{v,e}`, or the *twisted* connection
//!   `a_{u,e}—b_{v,e}, b_{u,e}—a_{v,e}`.
//!
//! Over a connected base graph, two CFI graphs are isomorphic iff their
//! numbers of twisted edges have the same parity; the canonical pair is
//! therefore (zero twists, one twist). Over a cycle the pair is exactly the
//! classic "one long cycle vs. two shorter cycles" example, non-isomorphic
//! and linear-time distinguishable by counting connected components, yet
//! 1-WL-equivalent; over 3-regular base graphs such as K₄ even 2-WL cannot
//! tell the pair apart.

use std::collections::BTreeMap;

use crate::wl::ColoredGraph;

/// An undirected base graph for the CFI construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseGraph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges, each stored once with u < v.
    pub edges: Vec<(usize, usize)>,
}

impl BaseGraph {
    /// Builds a base graph from an edge list (normalised, deduplicated).
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        es.sort_unstable();
        es.dedup();
        BaseGraph { n, edges: es }
    }

    /// The cycle Cₙ.
    pub fn cycle(n: usize) -> Self {
        BaseGraph::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// The complete graph K₄ (3-regular, treewidth 3) — the smallest base
    /// graph for which the CFI pair defeats 2-WL.
    pub fn k4() -> Self {
        BaseGraph::new(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    /// The 3-regular prism graph (two triangles joined by a matching).
    pub fn prism() -> Self {
        BaseGraph::new(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        )
    }

    /// Incident edge indices of vertex `v`.
    pub fn incident(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == v || b == v)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Names of the vertices of a CFI graph, kept so experiments can relate the
/// built graph back to the construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfiVertex {
    /// A middle vertex `m_{v,S}`: base vertex and the even subset of incident
    /// edge indices.
    Middle {
        /// Base vertex.
        base: usize,
        /// Even-cardinality subset of incident edge indices, sorted.
        subset: Vec<usize>,
    },
    /// A port vertex `a_{v,e}` (polarity true) or `b_{v,e}` (polarity false).
    Port {
        /// Base vertex.
        base: usize,
        /// Base edge index.
        edge: usize,
        /// `true` for the "a" (1) port, `false` for the "b" (0) port.
        polarity: bool,
    },
}

/// A constructed CFI graph together with its provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfiGraph {
    /// The underlying plain graph (for WL refinement and isomorphism tests).
    pub graph: ColoredGraph,
    /// Vertex provenance, indexed like `graph`'s vertices.
    pub vertices: Vec<CfiVertex>,
    /// Indices of the base edges that were twisted.
    pub twisted_edges: Vec<usize>,
}

impl CfiGraph {
    /// Parity of the number of twists — the isomorphism invariant.
    pub fn twist_parity(&self) -> bool {
        self.twisted_edges.len() % 2 == 1
    }

    /// Number of connected components of the CFI graph — a linear-time,
    /// order-using invariant that distinguishes the cycle-based pairs.
    pub fn connected_components(&self) -> usize {
        let n = self.graph.n;
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &v in &self.graph.adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }
}

/// Builds the CFI graph over `base` with the given set of twisted base-edge
/// indices.
pub fn cfi_graph(base: &BaseGraph, twisted_edges: &[usize]) -> CfiGraph {
    let mut vertices: Vec<CfiVertex> = Vec::new();
    let mut port_index: BTreeMap<(usize, usize, bool), usize> = BTreeMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Create ports for every (vertex, incident edge).
    for v in 0..base.n {
        for e in base.incident(v) {
            for polarity in [true, false] {
                let idx = vertices.len();
                vertices.push(CfiVertex::Port {
                    base: v,
                    edge: e,
                    polarity,
                });
                port_index.insert((v, e, polarity), idx);
            }
        }
    }

    // Create middle vertices for every even subset of incident edges and
    // wire them to the ports.
    for v in 0..base.n {
        let inc = base.incident(v);
        let d = inc.len();
        for mask in 0..(1usize << d) {
            if (mask.count_ones() % 2) != 0 {
                continue;
            }
            let subset: Vec<usize> = inc
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let m_idx = vertices.len();
            vertices.push(CfiVertex::Middle {
                base: v,
                subset: subset.clone(),
            });
            for &e in &inc {
                let polarity = subset.contains(&e);
                let p_idx = port_index[&(v, e, polarity)];
                edges.push((m_idx, p_idx));
            }
        }
    }

    // Connect ports across base edges, twisting where requested.
    for (e_idx, &(u, v)) in base.edges.iter().enumerate() {
        let twisted = twisted_edges.contains(&e_idx);
        let a_u = port_index[&(u, e_idx, true)];
        let b_u = port_index[&(u, e_idx, false)];
        let a_v = port_index[&(v, e_idx, true)];
        let b_v = port_index[&(v, e_idx, false)];
        if twisted {
            edges.push((a_u, b_v));
            edges.push((b_u, a_v));
        } else {
            edges.push((a_u, a_v));
            edges.push((b_u, b_v));
        }
    }

    let graph = ColoredGraph::from_edges(vertices.len(), edges);
    CfiGraph {
        graph,
        vertices,
        twisted_edges: twisted_edges.to_vec(),
    }
}

/// The canonical CFI pair over a base graph: the untwisted graph Gₙ and the
/// graph Hₙ with exactly one twisted edge. Over a connected base graph the
/// two are never isomorphic (odd twist-parity difference).
pub fn cfi_pair(base: &BaseGraph) -> (CfiGraph, CfiGraph) {
    let untwisted = cfi_graph(base, &[]);
    let twisted = cfi_graph(base, &[0]);
    (untwisted, twisted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::{isomorphic, wl1_equivalent, wl2_equivalent};

    #[test]
    fn base_graph_helpers() {
        let c4 = BaseGraph::cycle(4);
        assert_eq!(c4.edges.len(), 4);
        assert_eq!(c4.incident(0).len(), 2);
        let k4 = BaseGraph::k4();
        assert_eq!(k4.edges.len(), 6);
        for v in 0..4 {
            assert_eq!(k4.incident(v).len(), 3);
        }
        let prism = BaseGraph::prism();
        assert_eq!(prism.edges.len(), 9);
        for v in 0..6 {
            assert_eq!(prism.incident(v).len(), 3);
        }
    }

    #[test]
    fn gadget_sizes_match_construction() {
        // Over a cycle (degree 2): per vertex, 2 middles + 4 ports = 6.
        let (g, h) = cfi_pair(&BaseGraph::cycle(5));
        assert_eq!(g.graph.n, 5 * 6);
        assert_eq!(h.graph.n, 5 * 6);
        // Over K4 (degree 3): per vertex, 4 middles + 6 ports = 10.
        let (g, _) = cfi_pair(&BaseGraph::k4());
        assert_eq!(g.graph.n, 4 * 10);
        // Edge counts agree between the twisted and untwisted versions.
        let (g, h) = cfi_pair(&BaseGraph::cycle(4));
        assert_eq!(g.graph.edge_count(), h.graph.edge_count());
    }

    #[test]
    fn twist_parity_recorded() {
        let base = BaseGraph::cycle(4);
        assert!(!cfi_graph(&base, &[]).twist_parity());
        assert!(cfi_graph(&base, &[0]).twist_parity());
        assert!(!cfi_graph(&base, &[0, 2]).twist_parity());
    }

    #[test]
    fn cycle_pair_is_wl1_equivalent_but_not_isomorphic() {
        let (g, h) = cfi_pair(&BaseGraph::cycle(4));
        assert!(wl1_equivalent(&g.graph, &h.graph));
        // The order-using linear-time invariant — connected components —
        // tells them apart…
        assert_ne!(g.connected_components(), h.connected_components());
        // …so they cannot be isomorphic.
        assert!(!isomorphic(&g.graph, &h.graph));
    }

    #[test]
    fn even_twists_over_cycle_are_isomorphic_to_untwisted() {
        let base = BaseGraph::cycle(4);
        let g = cfi_graph(&base, &[]);
        let g2 = cfi_graph(&base, &[0, 1]);
        assert_eq!(g.connected_components(), g2.connected_components());
        assert!(isomorphic(&g.graph, &g2.graph));
    }

    #[test]
    fn k4_pair_defeats_wl1_and_wl2() {
        let (g, h) = cfi_pair(&BaseGraph::k4());
        assert!(wl1_equivalent(&g.graph, &h.graph));
        assert!(wl2_equivalent(&g.graph, &h.graph));
        // Non-isomorphism follows from the odd twist parity (CFI theorem);
        // the brute-force check is infeasible here precisely because the
        // colour classes are so large — which is the point of the example.
        assert_ne!(g.twist_parity(), h.twist_parity());
    }

    #[test]
    fn ports_and_middles_counted() {
        let (g, _) = cfi_pair(&BaseGraph::cycle(3));
        let ports = g
            .vertices
            .iter()
            .filter(|v| matches!(v, CfiVertex::Port { .. }))
            .count();
        let middles = g
            .vertices
            .iter()
            .filter(|v| matches!(v, CfiVertex::Middle { .. }))
            .count();
        assert_eq!(ports, 3 * 2 * 2);
        assert_eq!(middles, 3 * 2);
        // Every middle subset has even cardinality.
        for v in &g.vertices {
            if let CfiVertex::Middle { subset, .. } = v {
                assert_eq!(subset.len() % 2, 0);
            }
        }
    }

    #[test]
    fn components_of_cycle_cfi() {
        // The untwisted CFI graph over a cycle splits into two components;
        // the twisted one is a single component (the classic long-cycle
        // example).
        let (g, h) = cfi_pair(&BaseGraph::cycle(5));
        assert_eq!(g.connected_components(), 2);
        assert_eq!(h.connected_components(), 1);
    }
}
