//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live under `tests/`; this library only provides small
//! constructors they share.

use srl_core::value::Value;

/// A set of unnamed atoms.
pub fn atom_set(items: impl IntoIterator<Item = u64>) -> Value {
    Value::set(items.into_iter().map(Value::atom))
}
