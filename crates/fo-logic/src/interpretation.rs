//! First-order interpretations (Definition 3.1) and closure under them.
//!
//! A k-ary first-order interpretation maps structures of a vocabulary σ to
//! structures of a vocabulary τ: the target universe is the set of k-tuples
//! over the source universe, and each target relation `R^b ∈ τ` is defined by
//! a source formula `φ_R` with `b·k` free variables. `S ≤_fo T` when such an
//! interpretation sends members of S to members of T; Proposition 3.3 shows
//! ℒ(SRL) is closed under these reductions, which together with the
//! completeness of AGAP (Fact 3.5) yields `P ⊆ ℒ(SRL)`.

use std::collections::BTreeMap;

use crate::formula::{eval, Assignment, Formula};
use crate::structure::{Structure, Vocabulary};

/// A k-ary first-order interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interpretation {
    /// The tuple width k: each target element is a k-tuple of source
    /// elements.
    pub k: usize,
    /// The target vocabulary.
    pub target: Vocabulary,
    /// For each target relation of arity b, the defining formula together
    /// with its `b·k` free variable names, grouped target-argument-major:
    /// variables `vars[j*k + i]` describe component `i` of target argument
    /// `j`.
    pub definitions: BTreeMap<String, (Vec<String>, Formula)>,
}

impl Interpretation {
    /// Creates an interpretation with no relation definitions yet.
    pub fn new(k: usize, target: Vocabulary) -> Self {
        Interpretation {
            k,
            target,
            definitions: BTreeMap::new(),
        }
    }

    /// Adds the defining formula of one target relation. The number of
    /// variables must equal `arity(name) * k`.
    pub fn define(
        mut self,
        name: impl Into<String>,
        vars: impl IntoIterator<Item = &'static str>,
        formula: Formula,
    ) -> Self {
        let name = name.into();
        let vars: Vec<String> = vars.into_iter().map(str::to_string).collect();
        self.definitions.insert(name, (vars, formula));
        self
    }

    /// Checks arities: every target relation has a definition with the right
    /// number of free-variable slots.
    pub fn is_well_formed(&self) -> bool {
        self.target.iter().all(|(name, arity)| {
            self.definitions
                .get(name)
                .is_some_and(|(vars, _)| vars.len() == arity * self.k)
        })
    }

    /// Applies the interpretation to a source structure, producing the target
    /// structure on universe `n^k`. Target element ids are the ranks of the
    /// k-tuples in lexicographic order (matching the paper's n-ary bit
    /// numbering).
    pub fn apply(&self, source: &Structure) -> Structure {
        let n = source.universe;
        let target_universe = n.pow(self.k as u32);
        let mut out = Structure::new(target_universe, self.target.clone());
        for (name, arity) in self.target.iter() {
            let Some((vars, formula)) = self.definitions.get(name) else {
                continue;
            };
            // Enumerate all b-tuples of target elements, i.e. all (b*k)-tuples
            // of source elements.
            let total_vars = arity * self.k;
            let mut counters = vec![0usize; total_vars];
            loop {
                // Evaluate the formula under this assignment.
                let mut assignment = Assignment::new();
                for (var, &value) in vars.iter().zip(&counters) {
                    assignment.insert(var.clone(), value);
                }
                if eval(source, formula, &assignment) {
                    // Convert each group of k source elements into one target
                    // element id.
                    let tuple: Vec<usize> = (0..arity)
                        .map(|j| {
                            counters[j * self.k..(j + 1) * self.k]
                                .iter()
                                .fold(0usize, |acc, &c| acc * n + c)
                        })
                        .collect();
                    out.add_tuple(name, &tuple);
                }
                // Advance the odometer.
                let mut idx = total_vars;
                loop {
                    if idx == 0 {
                        break;
                    }
                    idx -= 1;
                    counters[idx] += 1;
                    if counters[idx] < n {
                        break;
                    }
                    counters[idx] = 0;
                    if idx == 0 {
                        break;
                    }
                }
                if counters.iter().all(|&c| c == 0) {
                    break;
                }
                if total_vars == 0 {
                    break;
                }
            }
        }
        out
    }
}

/// Library of interpretations used by the experiments and tests.
pub mod library {
    use super::*;
    use crate::formula::tvar;

    /// The identity interpretation on plain graphs (k = 1, `E` defined by
    /// `E(x, y)`).
    pub fn graph_identity() -> Interpretation {
        Interpretation::new(1, Vocabulary::graph()).define(
            "E",
            ["x", "y"],
            Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]),
        )
    }

    /// The interpretation that reverses every edge of a graph (k = 1).
    pub fn graph_reverse() -> Interpretation {
        Interpretation::new(1, Vocabulary::graph()).define(
            "E",
            ["x", "y"],
            Formula::Rel("E".into(), vec![tvar("y"), tvar("x")]),
        )
    }

    /// The square-graph interpretation: `E(x, y)` holds in the image iff
    /// there is a path of length exactly two in the source (k = 1).
    pub fn graph_square() -> Interpretation {
        Interpretation::new(1, Vocabulary::graph()).define(
            "E",
            ["x", "y"],
            Formula::exists(
                "z",
                Formula::and(
                    Formula::Rel("E".into(), vec![tvar("x"), tvar("z")]),
                    Formula::Rel("E".into(), vec![tvar("z"), tvar("y")]),
                ),
            ),
        )
    }

    /// A 2-ary interpretation sending a graph to its "product" graph on
    /// pairs: `E((x₁,x₂), (y₁,y₂))` iff `E(x₁,y₁) ∧ E(x₂,y₂)` — the standard
    /// example of a genuinely k-ary reduction (k = 2).
    pub fn graph_tensor_square() -> Interpretation {
        Interpretation::new(2, Vocabulary::graph()).define(
            "E",
            ["x1", "x2", "y1", "y2"],
            Formula::and(
                Formula::Rel("E".into(), vec![tvar("x1"), tvar("y1")]),
                Formula::Rel("E".into(), vec![tvar("x2"), tvar("y2")]),
            ),
        )
    }

    /// The interpretation reducing plain reachability to alternating
    /// reachability: the output is the same graph viewed as an alternating
    /// graph with *no* universal vertices (so APATH coincides with
    /// reachability). This is the k = 1 reduction used by the closure tests.
    pub fn reachability_to_agap() -> Interpretation {
        Interpretation::new(1, Vocabulary::alternating_graph())
            .define(
                "E",
                ["x", "y"],
                Formula::Rel("E".into(), vec![tvar("x"), tvar("y")]),
            )
            .define("A", ["x"], Formula::False)
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;
    use crate::formula::library::agap_sentence;
    use crate::formula::{eval_sentence, tvar};

    fn path(n: usize) -> Structure {
        Structure::from_digraph(n, &(1..n).map(|i| (i - 1, i)).collect::<Vec<_>>())
    }

    #[test]
    fn well_formedness() {
        assert!(graph_identity().is_well_formed());
        assert!(graph_tensor_square().is_well_formed());
        assert!(reachability_to_agap().is_well_formed());
        // Missing definition.
        let incomplete = Interpretation::new(1, Vocabulary::alternating_graph()).define(
            "E",
            ["x", "y"],
            Formula::True,
        );
        assert!(!incomplete.is_well_formed());
        // Wrong variable count.
        let wrong = Interpretation::new(1, Vocabulary::graph()).define("E", ["x"], Formula::True);
        assert!(!wrong.is_well_formed());
    }

    #[test]
    fn identity_preserves_graph() {
        let g = path(4);
        let h = graph_identity().apply(&g);
        assert_eq!(h.universe, 4);
        assert_eq!(h.relation_size("E"), 3);
        assert!(h.holds("E", &[0, 1]));
        assert!(!h.holds("E", &[1, 0]));
    }

    #[test]
    fn reverse_flips_edges() {
        let g = path(4);
        let h = graph_reverse().apply(&g);
        assert!(h.holds("E", &[1, 0]));
        assert!(!h.holds("E", &[0, 1]));
        assert_eq!(h.relation_size("E"), 3);
    }

    #[test]
    fn square_connects_distance_two() {
        let g = path(5);
        let h = graph_square().apply(&g);
        assert!(h.holds("E", &[0, 2]));
        assert!(h.holds("E", &[1, 3]));
        assert!(!h.holds("E", &[0, 1]));
        assert_eq!(h.relation_size("E"), 3);
    }

    #[test]
    fn tensor_square_has_pair_universe() {
        let g = path(3);
        let h = graph_tensor_square().apply(&g);
        assert_eq!(h.universe, 9);
        // ((0,0), (1,1)) = element ids 0*3+0 = 0 and 1*3+1 = 4.
        assert!(h.holds("E", &[0, 4]));
        // ((0,1), (1,2)) = ids 1 and 5.
        assert!(h.holds("E", &[1, 5]));
        // ((0,2), (1,anything)) requires E(2, ·) which does not exist.
        assert!(!h.holds("E", &[2, 3]));
        assert_eq!(h.relation_size("E"), 4);
    }

    #[test]
    fn reduction_to_agap_preserves_reachability() {
        // On a path, 0 reaches n-1, so the reduced alternating structure is
        // a positive AGAP instance.
        let g = path(5);
        let reduced = reachability_to_agap().apply(&g);
        assert!(eval_sentence(&reduced, &agap_sentence()));
        // Reverse the path: 0 no longer reaches n-1.
        let reversed = graph_reverse().apply(&g);
        let reduced = reachability_to_agap().apply(&reversed);
        assert!(!eval_sentence(&reduced, &agap_sentence()));
    }

    #[test]
    fn empty_universe_is_handled() {
        let g = Structure::from_digraph(0, &[]);
        let h = graph_identity().apply(&g);
        assert_eq!(h.universe, 0);
        assert_eq!(h.relation_size("E"), 0);
    }

    #[test]
    fn definitions_can_use_order_and_constants() {
        // E(x, y) iff x ≤ y: the full "upper triangle" graph.
        let interp = Interpretation::new(1, Vocabulary::graph()).define(
            "E",
            ["x", "y"],
            Formula::Leq(tvar("x"), tvar("y")),
        );
        let g = Structure::from_digraph(3, &[]);
        let h = interp.apply(&g);
        assert_eq!(h.relation_size("E"), 6); // 3 + 2 + 1
        assert!(h.holds("E", &[0, 2]));
        assert!(!h.holds("E", &[2, 0]));
    }
}
